//! Minimal offline stand-in for `rand` 0.8.
//!
//! Provides the exact subset this workspace uses: `rngs::SmallRng`
//! (xoshiro256++ seeded via splitmix64), `SeedableRng::{seed_from_u64,
//! from_seed}`, and `Rng::{gen_range, gen_bool, gen}` over half-open and
//! inclusive integer ranges and half-open float ranges. Deterministic for a
//! given seed, which is all the simulation and tests rely on.

/// A core random number generator yielding raw `u32`/`u64` output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a standard-distribution type.
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard2<Self>,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform-sampling support types (subset of `rand::distributions`).
pub mod distributions {
    /// Range sampling (subset of `rand::distributions::uniform`).
    ///
    /// Mirrors real rand's structure — a single blanket `SampleRange` impl
    /// per range shape tied to a `SampleUniform` element trait — because
    /// that structure is what lets type inference flow from the surrounding
    /// expression into unsuffixed range literals.
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Element types that support uniform sampling between two bounds.
        pub trait SampleUniform: Sized + Copy + PartialOrd {
            /// Samples uniformly from `[start, end)`.
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self)
                -> Self;
            /// Samples uniformly from `[start, end]`.
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self)
                -> Self;
        }

        /// A range from which a single value can be sampled.
        pub trait SampleRange<T> {
            /// Samples one value uniformly from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "empty range in gen_range");
                T::sample_half_open(rng, self.start, self.end)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                T::sample_inclusive(rng, start, end)
            }
        }

        macro_rules! impl_int_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(
                        rng: &mut R,
                        start: Self,
                        end: Self,
                    ) -> Self {
                        let span = (end as i128 - start as i128) as u128;
                        let wide = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
                        (start as i128 + (wide % span) as i128) as $t
                    }

                    fn sample_inclusive<R: RngCore + ?Sized>(
                        rng: &mut R,
                        start: Self,
                        end: Self,
                    ) -> Self {
                        let span = (end as i128 - start as i128 + 1) as u128;
                        let wide = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
                        (start as i128 + (wide % span) as i128) as $t
                    }
                }
            )*};
        }

        impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(
                        rng: &mut R,
                        start: Self,
                        end: Self,
                    ) -> Self {
                        let unit = crate::unit_f64(rng.next_u64()) as $t;
                        start + unit * (end - start)
                    }

                    fn sample_inclusive<R: RngCore + ?Sized>(
                        rng: &mut R,
                        start: Self,
                        end: Self,
                    ) -> Self {
                        let unit = crate::unit_f64(rng.next_u64()) as $t;
                        start + unit * (end - start)
                    }
                }
            )*};
        }

        impl_float_uniform!(f32, f64);
    }

    use crate::RngCore;

    /// Standard-distribution sampling for `Rng::gen`.
    pub trait Standard2<R: RngCore + ?Sized> {
        /// Samples one value.
        fn sample(rng: &mut R) -> Self;
    }

    impl<R: RngCore + ?Sized> Standard2<R> for bool {
        fn sample(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<R: RngCore + ?Sized> Standard2<R> for f64 {
        fn sample(rng: &mut R) -> f64 {
            super::unit_f64(rng.next_u64())
        }
    }

    impl<R: RngCore + ?Sized> Standard2<R> for f32 {
        fn sample(rng: &mut R) -> f32 {
            super::unit_f64(rng.next_u64()) as f32
        }
    }

    impl<R: RngCore + ?Sized> Standard2<R> for u64 {
        fn sample(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl<R: RngCore + ?Sized> Standard2<R> for u32 {
        fn sample(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1usize..=7);
            assert!((1..=7).contains(&w));
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f = rng.gen_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_900..3_100).contains(&hits), "hits={hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
    }

    #[test]
    fn distributions_cover_all_int_widths() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u8 = rng.gen_range(0u8..255);
        let _: u16 = rng.gen_range(0u16..65_000);
        let _: u32 = rng.gen_range(0u32..4_000_000);
        let _: i32 = rng.gen_range(-100i32..100);
        let full: u64 = rng.gen_range(0u64..u64::MAX);
        assert!(full < u64::MAX);
        let b: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let _ = b;
    }
}
