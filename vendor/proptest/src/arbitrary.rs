//! `any::<T>()` support for the primitive types the workspace tests use.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `A`'s whole domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix full-width noise with small values so boundary-ish
                // inputs show up often, mimicking proptest's bias.
                match rng.below(4) {
                    0 => (rng.below(16) as i64 - 8) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Finite floats across many magnitudes (no NaN/inf: the
                // real crate gates those behind strategy flags too).
                match rng.below(8) {
                    0 => 0.0,
                    1 => -0.0,
                    _ => {
                        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                        let exp = rng.below(121) as i32 - 60;
                        let mantissa = rng.unit_f64() + 1.0;
                        (sign * mantissa * (2.0f64).powi(exp)) as $t
                    }
                }
            }
        }
    )*};
}

float_arbitrary!(f32, f64);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII with occasional non-ASCII scalar values.
        if rng.below(8) == 0 {
            char::from_u32(0xA0 + rng.below(0x500) as u32).unwrap_or('\u{FFFD}')
        } else {
            (0x20 + rng.below(0x5F) as u8) as char
        }
    }
}

impl Arbitrary for () {
    fn arbitrary(_rng: &mut TestRng) {}
}
