//! Test-runner plumbing: configuration, the deterministic RNG handed to
//! strategies, and the error type `prop_assert!` produces.

/// Property-test configuration (subset of proptest's `Config`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it is retried, not failed.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Deterministic generator handed to strategies (splitmix64 stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives a stable per-test base seed from its location and name.
pub(crate) fn seed_for(file: &str, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.bytes().chain([0u8]).chain(name.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
