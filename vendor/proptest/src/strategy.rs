//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` wraps the strategy-so-far,
    /// nested at most `depth` levels, with leaves from `self`. The
    /// `_desired_size` / `_expected_branch_size` tuning knobs of real
    /// proptest are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::weighted(vec![(3, leaf.clone()), (1, recurse(strat).boxed())]).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Chooses among several strategies (the `prop_oneof!` backing type).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Equal-weight union.
    pub fn uniform(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted union; weights must not all be zero.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weight bookkeeping is exhaustive")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
