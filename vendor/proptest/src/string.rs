//! String generation from the tiny regex dialect the workspace tests use:
//! a single character class with a bounded repetition, `[chars]{lo,hi}`.
//! Anything else falls back to short alphanumeric strings.

use crate::test_runner::TestRng;

/// Generates a string for `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    match parse(pattern) {
        Some((alphabet, lo, hi)) if !alphabet.is_empty() => {
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
        _ => {
            // Fallback: 0..=16 alphanumeric characters.
            let alphabet: Vec<char> =
                ('a'..='z').chain('A'..='Z').chain('0'..='9').collect();
            let len = rng.below(17) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }
}

/// Parses `[chars]{lo,hi}` into (alphabet, lo, hi).
fn parse(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let class_end = rest.find(']')?;
    let class = &rest[..class_end];
    let reps = rest[class_end + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if a > b {
                return None;
            }
            alphabet.extend(a..=b);
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_class_with_ranges() {
        let (alphabet, lo, hi) = parse("[a-zA-Z0-9 ]{0,24}").unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 24);
        assert_eq!(alphabet.len(), 26 + 26 + 10 + 1);
        assert!(alphabet.contains(&' '));
    }

    #[test]
    fn generated_strings_match_the_class() {
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let s = generate_from_pattern("[ab]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }
}
