//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size band for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `BTreeSet`s whose size falls in `size`. The element domain
/// must be large enough to actually reach the minimum size.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let max_attempts = target * 50 + 200;
        for _ in 0..max_attempts {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        assert!(
            set.len() >= self.size.lo,
            "btree_set strategy could not reach minimum size {} (element \
             domain too small?)",
            self.size.lo
        );
        set
    }
}
