//! Minimal offline stand-in for `proptest` 1.x.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`, range
//! and tuple strategies, `any::<T>()`, `Just`, simple `[class]{lo,hi}`
//! string-pattern strategies, `collection::{vec, btree_set}`, the
//! `proptest!` test macro, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` / `prop_oneof!` macros. Cases are generated from a
//! deterministic per-test seed; there is no shrinking — a failing case
//! reports its case number and seed instead.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary;
pub mod collection;
mod macros;
pub mod option;
pub mod string;

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

/// Re-exports everything the tests conventionally glob-import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Alias so `prop::collection::vec(...)` etc. work from the prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Runs one property test: `cases` iterations of generate-then-check.
///
/// Used by the [`proptest!`] macro expansion; not part of proptest's real
/// public API surface.
#[doc(hidden)]
pub fn run_proptest<F>(config: test_runner::Config, file: &str, name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let base_seed = test_runner::seed_for(file, name);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = config.cases as u64 * 20 + 100;
    while accepted < config.cases {
        attempts += 1;
        if attempts > max_attempts {
            panic!(
                "proptest {name}: gave up after {attempts} attempts \
                 ({accepted}/{} cases accepted; too many prop_assume! rejections)",
                config.cases
            );
        }
        let seed = base_seed ^ (attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = test_runner::TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(test_runner::TestCaseError::Reject(_)) => continue,
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name} failed at case {} (seed {seed:#x}): {msg}",
                    accepted + 1
                );
            }
        }
    }
}
