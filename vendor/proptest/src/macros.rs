//! The user-facing macros: `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, `prop_assume!`, and `prop_oneof!`.

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest($config, file!(), stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left,
                            right
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            left,
                            right
                        ),
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left
                        ),
                    ));
                }
            }
        }
    };
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Chooses uniformly (or by `weight => strategy` arms) among strategies
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::uniform(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
