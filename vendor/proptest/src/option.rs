//! `Option<T>` strategies: `option::of` generates `None` about a quarter
//! of the time, `Some` otherwise (real proptest defaults to 50% `Some`
//! weighted by config; this stub fixes the ratio).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `None` or `Some(inner)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy produced by [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
