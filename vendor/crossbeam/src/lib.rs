//! Minimal offline stand-in for `crossbeam`, providing `crossbeam::thread`
//! scoped threads on top of `std::thread::scope`.

/// Scoped-thread support mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scoped thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope in which threads borrowing local data can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, like crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Unlike crossbeam, a child panic that was not
    /// observed via [`ScopedJoinHandle::join`] propagates as a panic from
    /// this call rather than an `Err` (std scope semantics); joined panics
    /// behave identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn joined_panic_is_an_err() {
        crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
