//! Minimal offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface this workspace consumes is provided: `Mutex` and
//! `RwLock` without lock poisoning. Panicking while holding a lock simply
//! clears the poison flag on the underlying std primitive.

use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard as StdReadGuard};
use std::sync::{RwLockWriteGuard as StdWriteGuard, TryLockError};

/// A mutual-exclusion primitive (no poisoning), API-compatible with the
/// subset of `parking_lot::Mutex` that the workspace uses.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader–writer lock (no poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { inner }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
