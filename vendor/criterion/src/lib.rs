//! Minimal offline stand-in for `criterion` 0.5.
//!
//! Implements enough of the API for the workspace's `harness = false`
//! benches to compile and produce simple wall-clock timings: `Criterion`,
//! `benchmark_group`, `BenchmarkGroup::{sample_size, bench_function,
//! finish}`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. No statistics, plots, or CLI filtering — each
//! benchmark runs `sample_size` timed iterations and prints the mean.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement backends (subset of `criterion::measurement`).
pub mod measurement {
    /// Wall-clock time measurement (the default and only backend here).
    pub struct WallTime;
}

/// Benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Parses CLI arguments. This stub accepts and ignores them (including
    /// `--bench`, which cargo passes to bench harnesses).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one("", &name.into(), sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration. `M` is the
/// measurement backend; only [`measurement::WallTime`] exists here.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
    _marker: std::marker::PhantomData<M>,
}

impl<'a> BenchmarkGroup<'a, measurement::WallTime> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &name.to_string(), self.sample_size, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(group: &str, name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / sample_size.max(1) as f64;
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!("bench {label:<48} {:>12.3} ms/iter", per_iter * 1e3);
}

/// Declares a group of benchmark functions as `pub fn $name()`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main()` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
