//! Example 2.1 from the paper, end to end: spatio-temporal topic patterns
//! from tweets, using three indices at all three placements —
//!
//! 1. a user-profile KV store **before Map** (head),
//! 2. a dynamic knowledge-base topic classifier **between Map and
//!    Reduce** (body) — the "index" whose results are computed, not
//!    stored, so the space of valid keys is infinite,
//! 3. an event database (distributed B-tree) **after Reduce** (tail).
//!
//! ```text
//! cargo run --release --example tweet_topics
//! ```

use efind_repro::core::{Mode, Strategy};
use efind_repro::workloads::harness::run_mode;
use efind_repro::workloads::topics::{scenario, TopicsConfig};

fn main() {
    let config = TopicsConfig {
        num_tweets: 20_000,
        num_users: 1_500,
        num_cities: 40,
        days: 30,
        ..TopicsConfig::default()
    };

    println!(
        "tweets: {}, users: {}, cities: {}, days: {}",
        config.num_tweets, config.num_users, config.num_cities, config.days
    );
    println!("pipeline: profile(head) -> Map -> topic-KB(body) -> Reduce -> events(tail)\n");

    for (label, mode) in [
        ("baseline ", Mode::Uniform(Strategy::Baseline)),
        ("cache    ", Mode::Uniform(Strategy::Cache)),
        ("dynamic  ", Mode::Dynamic),
    ] {
        let mut s = scenario(&config);
        let m = run_mode(&mut s, label, mode).expect("job runs");
        println!(
            "{label}  {:>8.3}s virtual{}",
            m.secs,
            if m.replanned {
                "  (re-planned mid-job)"
            } else {
                ""
            }
        );
    }

    // Show a slice of the final enriched output.
    let mut s = scenario(&config);
    run_mode(&mut s, "cache", Mode::Uniform(Strategy::Cache)).expect("job runs");
    let out = s.dfs.read_file("topics.out").expect("output exists");
    println!("\n{} (city, day) groups; first five:", out.len());
    for rec in out.iter().take(5) {
        println!("  {} -> {}", rec.key, rec.value);
    }
}
