//! Quickstart: the smallest complete EFind-enhanced job.
//!
//! A word-enrichment job: the main input is a stream of purchase events,
//! and a *head* index operator joins each event with a product catalog
//! index before the Map — with EFind choosing the access strategy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use efind_repro::cluster::{Cluster, SimDuration};
use efind_repro::common::{Datum, Record};
use efind_repro::core::{
    operator_fn, BoundOperator, EFindRuntime, IndexInput, IndexJobConf, IndexOutput, Mode, Strategy,
};
use efind_repro::dfs::{Dfs, DfsConfig};
use efind_repro::index::MemTable;
use efind_repro::mapreduce::{mapper_fn, reducer_fn, Collector};

fn main() {
    // 1. A simulated 12-node cluster (the paper's testbed) and a DFS.
    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());

    // 2. Main input: purchase events (product_id, quantity).
    let events: Vec<Record> = (0..20_000)
        .map(|i| {
            Record::new(
                i,
                Datum::List(vec![
                    Datum::Int((i * 7919) % 500), // product id, skewed reuse
                    Datum::Int(1 + i % 5),        // quantity
                ]),
            )
        })
        .collect();
    dfs.write_file_with_chunks("events", events, 200);

    // 3. An index: the product catalog (product_id → category).
    let catalog = Arc::new(MemTable::new(
        "catalog",
        (0..500i64).map(|p| {
            (
                Datum::Int(p),
                vec![Datum::Text(format!("category{}", p % 20))],
            )
        }),
        SimDuration::from_micros(800),
    ));

    // 4. The index operator: extract the product id, attach the category.
    let enrich = operator_fn(
        "catalog-join",
        1,
        |rec: &mut Record, keys: &mut IndexInput| {
            if let Some(f) = rec.value.as_list() {
                keys.put(0, f[0].clone());
            }
        },
        |rec: Record, values: &IndexOutput, out: &mut dyn Collector| {
            let category = values.first(0).first().cloned().unwrap_or(Datum::Null);
            let qty = rec
                .value
                .as_list()
                .map(|f| f[1].clone())
                .unwrap_or(Datum::Null);
            out.collect(Record {
                key: category,
                value: qty,
            });
        },
    );

    // 5. The enhanced job: head operator → identity Map → sum Reduce.
    let ijob = IndexJobConf::new("quickstart", "events", "sales-by-category")
        .add_head_index_operator(BoundOperator::new(enrich).add_index(catalog))
        .set_mapper(mapper_fn(|rec, out, _| out.collect(rec)))
        .set_reducer(
            reducer_fn(|key, values, out, _| {
                let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                out.collect(Record::new(key, total));
            }),
            8,
        );

    // 6. Run it under different strategies and compare.
    let mut rt = EFindRuntime::new(&cluster, &mut dfs);
    for (label, mode) in [
        ("baseline ", Mode::Uniform(Strategy::Baseline)),
        ("cache    ", Mode::Uniform(Strategy::Cache)),
        ("repart   ", Mode::Uniform(Strategy::Repartition)),
        ("optimized", Mode::Optimized), // uses statistics from the runs above
        ("dynamic  ", Mode::Dynamic),
    ] {
        let res = rt.run(&ijob, mode).expect("job runs");
        println!(
            "{label}  {:>8.3}s virtual{}",
            res.total_time.as_secs_f64(),
            if res.replanned {
                "  (re-planned mid-job)"
            } else {
                ""
            }
        );
    }

    // 7. Inspect the output.
    let mut out = rt
        .dfs
        .read_file("sales-by-category")
        .expect("output exists");
    out.sort();
    println!("\ntop categories:");
    for rec in out.iter().take(5) {
        println!("  {} -> {}", rec.key, rec.value);
    }
    assert_eq!(out.len(), 20);
}
