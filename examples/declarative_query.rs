//! TPC-H Q3 written declaratively — the paper's Related Work claim that
//! "higher-level query languages can employ EFind to achieve flexible
//! index access", made runnable: a Pig-style pipeline compiles into an
//! EFind-enhanced job, and the whole strategy machinery (cache,
//! re-partitioning, index locality, cost-based optimization) applies to
//! it unchanged.
//!
//! ```text
//! cargo run --release --example declarative_query
//! ```

use std::sync::Arc;

use efind_repro::cluster::Cluster;
use efind_repro::core::{EFindRuntime, Mode, Strategy};
use efind_repro::dfs::{Dfs, DfsConfig};
use efind_repro::index::{KvStore, KvStoreConfig};
use efind_repro::ql::{col, lit, Agg, Query};
use efind_repro::workloads::tpch::{self, TpchConfig, Q3_DATE_CUTOFF, Q3_SEGMENT};

fn main() {
    // Generate the database and load LineItem as the scanned input.
    // LineItem row: [orderkey, partkey, suppkey, qty, extprice, disc, shipdate]
    let config = TpchConfig {
        scale: 0.01,
        chunks: 240,
        ..TpchConfig::default()
    };
    let data = tpch::generate(&config);
    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    dfs.write_file_with_chunks("lineitem", data.lineitem.clone(), config.chunks);

    let orders = Arc::new(KvStore::build(
        "orders",
        &cluster,
        KvStoreConfig::default(),
        data.orders.clone(), // orderkey → [custkey, orderdate, shippriority]
    ));
    let customer = Arc::new(KvStore::build(
        "customer",
        &cluster,
        KvStoreConfig::default(),
        data.customer.clone(), // custkey → [mktsegment, nationkey]
    ));

    // Q3, declaratively. Column positions after each join are appended to
    // the right of the current row.
    let query = Query::scan("lineitem")
        .filter(col(6).gt(lit(Q3_DATE_CUTOFF))) // l_shipdate > date
        .index_join("orders", orders, col(0), [0, 1, 2]) // + custkey(7), orderdate(8), shippriority(9)
        .filter(col(8).lt(lit(Q3_DATE_CUTOFF))) // o_orderdate < date
        .index_join("customer", customer, col(7), [0]) // + mktsegment(10)
        .filter(col(10).eq(lit(Q3_SEGMENT)))
        .group_by([col(0), col(8), col(9)]) // l_orderkey, o_orderdate, o_shippriority
        .aggregate([Agg::Sum(col(4))]); // revenue proxy: sum(extendedprice)

    let job = query.into_job("q3-declarative", "q3.out");

    let mut rt = EFindRuntime::new(&cluster, &mut dfs);
    for (label, mode) in [
        ("baseline ", Mode::Uniform(Strategy::Baseline)),
        ("cache    ", Mode::Uniform(Strategy::Cache)),
        ("optimized", Mode::Optimized),
    ] {
        let res = rt.run(&job, mode).expect("query runs");
        println!("{label}  {:>8.3}s virtual", res.total_time.as_secs_f64());
        if label.trim() == "optimized" {
            let mut plans = res.plans.clone();
            plans.sort_by(|a, b| a.0.cmp(&b.0));
            for (op, plan) in plans {
                let labels: Vec<&str> = plan.choices.iter().map(|c| c.strategy.label()).collect();
                println!("             plan[{op}] = {labels:?}");
            }
        }
    }
    let out = rt.dfs.read_file("q3.out").expect("output exists");
    println!("\nresult groups: {}", out.len());
    for rec in out.iter().take(3) {
        println!("  {} -> {}", rec.key, rec.value);
    }
}
