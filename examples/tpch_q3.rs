//! TPC-H Q3 as an EFind index-nested-loop join (Fig. 11(b)).
//!
//! LineItem is the main input; Orders and Customer are indices accessed by
//! two chained head operators. The run compares all applicable strategies
//! and shows the optimizer's choice, reproducing the paper's observation
//! that the *lookup cache* wins Q3 (clustered `l_orderkey`) while
//! re-partitioning is not worth its extra job here.
//!
//! ```text
//! cargo run --release --example tpch_q3
//! ```

use efind_repro::core::{EFindRuntime, Mode, Strategy};
use efind_repro::workloads::tpch::{q3_scenario, TpchConfig};

fn main() {
    let config = TpchConfig {
        scale: 0.01,
        chunks: 240,
        ..TpchConfig::default()
    };
    let mut scenario = q3_scenario(&config);
    println!(
        "lineitem records: {} (scale factor {})\n",
        scenario.dfs.stat("tpch.lineitem").unwrap().total_records(),
        config.scale
    );

    let mut rt = EFindRuntime::with_config(
        &scenario.cluster,
        &mut scenario.dfs,
        scenario.efind_config.clone(),
    );

    let mut base_secs = f64::NAN;
    for (label, mode) in [
        ("baseline ", Mode::Uniform(Strategy::Baseline)),
        ("cache    ", Mode::Uniform(Strategy::Cache)),
        ("repart   ", Mode::Manual(scenario.repart_overrides.clone())),
        ("idxloc   ", Mode::Uniform(Strategy::IndexLocality)),
        ("optimized", Mode::Optimized),
        ("dynamic  ", Mode::Dynamic),
    ] {
        let res = rt.run(&scenario.ijob, mode).expect("q3 runs");
        let secs = res.total_time.as_secs_f64();
        if label.trim() == "baseline" {
            base_secs = secs;
        }
        println!(
            "{label}  {secs:>8.3}s virtual   ({:>5.2}x vs base){}",
            base_secs / secs,
            if res.replanned { "  (re-planned)" } else { "" }
        );
        if label.trim() == "optimized" {
            for (op, plan) in &res.plans {
                let strategies: Vec<&str> =
                    plan.choices.iter().map(|c| c.strategy.label()).collect();
                println!("             plan[{op}] = {strategies:?}");
            }
        }
    }

    let out = rt.dfs.read_file("tpch.q3").expect("output exists");
    println!("\nQ3 result groups: {}", out.len());
}
