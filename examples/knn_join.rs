//! The spatial k-nearest-neighbor join (Fig. 13): EFind with a grid of
//! R\*-trees versus the hand-tuned H-zkNNJ implementation.
//!
//! EFind expresses the join as *one head operator* ("look each A point up
//! in B's spatial index"); H-zkNNJ is two carefully engineered MapReduce
//! jobs with z-order curves, shifted copies, and sampled partitioning.
//! The paper's point: the 20-line EFind version performs like the
//! hand-tuned one (and is exact, while H-zkNNJ is ε-approximate).
//!
//! ```text
//! cargo run --release --example knn_join
//! ```

use efind_repro::core::{Mode, Strategy};
use efind_repro::workloads::harness::run_mode;
use efind_repro::workloads::osm::{generate_ab, scenario, OsmConfig};
use efind_repro::workloads::zknnj::{run as run_zknnj, ZknnjConfig};

fn main() {
    let config = OsmConfig {
        num_a: 10_000,
        num_b: 10_000,
        chunks: 240,
        ..OsmConfig::default()
    };
    println!(
        "kNN join (k={}) of {} x {} clustered points\n",
        config.k, config.num_a, config.num_b
    );

    // EFind, with the strategies the harness sweeps.
    for (label, mode) in [
        ("efind/baseline", Mode::Uniform(Strategy::Baseline)),
        ("efind/idxloc  ", Mode::Uniform(Strategy::IndexLocality)),
        ("efind/dynamic ", Mode::Dynamic),
    ] {
        let mut s = scenario(&config);
        let m = run_mode(&mut s, label, mode).expect("knnj runs");
        println!(
            "{label}  {:>8.3}s virtual{}",
            m.secs,
            if m.replanned { "  (re-planned)" } else { "" }
        );
    }

    // The hand-tuned comparator on the same data and cluster.
    let mut s = scenario(&config);
    let (a, b) = generate_ab(&config);
    let zconf = ZknnjConfig {
        k: config.k,
        chunks: config.chunks,
        ..ZknnjConfig::default()
    };
    let (dur, results) = run_zknnj(&s.cluster, &mut s.dfs, &zconf, &a, &b).expect("zknnj runs");
    println!(
        "h-zknnj         {:>8.3}s virtual  (α={}, approximate)",
        dur.as_secs_f64(),
        zconf.alpha
    );

    // Sanity: compare one answer against the exact EFind output.
    run_mode(&mut s, "exact", Mode::Uniform(Strategy::Baseline)).expect("exact run");
    let exact = s.dfs.read_file("osm.knnj").expect("output");
    println!(
        "\nresults: h-zknnj answered {} queries, EFind answered {} (EFind is exact)",
        results.len(),
        exact.len()
    );
}
