#![warn(missing_docs)]

//! Umbrella crate for the EFind reproduction workspace.
//!
//! Re-exports every layer so examples and integration tests can use a single
//! dependency. See `README.md` for the architecture overview and `DESIGN.md`
//! for the paper-to-module map.

pub use efind as core;
pub use efind_cluster as cluster;
pub use efind_common as common;
pub use efind_dfs as dfs;
pub use efind_index as index;
pub use efind_mapreduce as mapreduce;
pub use efind_ql as ql;
pub use efind_workloads as workloads;
