//! Integration: the LOG application (top-k URLs per region, Fig. 11(a))
//! expressed as two chained declarative queries — the remote geo-IP index
//! joined through `efind-ql`, grouped counts, then a top-k rollup over the
//! first query's output.

use std::sync::Arc;

use efind_repro::cluster::Cluster;
use efind_repro::common::Record;
use efind_repro::core::{EFindRuntime, Mode, Strategy};
use efind_repro::dfs::{Dfs, DfsConfig};
use efind_repro::ql::{col, Agg, Query};
use efind_repro::workloads::log::{self, LogConfig};

fn config() -> LogConfig {
    LogConfig {
        num_events: 4_000,
        num_ips: 150,
        num_urls: 60,
        num_regions: 12,
        chunks: 30,
        ..LogConfig::default()
    }
}

#[test]
fn declarative_log_topk_matches_operator_pipeline() {
    let config = config();

    // Reference: the hand-written operator pipeline.
    let mut s = log::scenario(&config);
    let mut rt = EFindRuntime::new(&s.cluster, &mut s.dfs);
    rt.run(&s.ijob, Mode::Uniform(Strategy::Cache)).unwrap();
    let mut reference: Vec<(String, Vec<String>)> = rt
        .dfs
        .read_file("log.topk")
        .unwrap()
        .iter()
        .map(|r| {
            let urls: Vec<String> = r
                .value
                .as_list()
                .unwrap()
                .iter()
                .step_by(2) // [url, count, url, count, …]
                .map(|u| u.as_text().unwrap().to_owned())
                .collect();
            (r.key.as_text().unwrap().to_owned(), urls)
        })
        .collect();
    reference.sort();

    // Declarative version. Events become rows [ip, url, ts].
    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    dfs.write_file_with_chunks("events", log::generate(&config), config.chunks);
    let geo: Arc<_> = Arc::new(log::geo_service(&config));

    // Stage 1: region join + (region, url) counts.
    let stage1 = Query::scan("events")
        .index_join("geo", geo, col(0), [0]) // + region(3)
        .group_by([col(3), col(1)])
        .aggregate([Agg::Count])
        .into_job("log-ql-1", "mid");
    // Stage 2: top-k URLs per region from the counted rows
    // [region, url, count].
    let stage2 = Query::scan("mid")
        .group_by([col(0)])
        .aggregate([Agg::TopKBy {
            sort: col(2),
            take: col(1),
            k: config.top_k,
        }])
        .into_job("log-ql-2", "topk");

    let mut rt = EFindRuntime::new(&cluster, &mut dfs);
    rt.run(&stage1, Mode::Uniform(Strategy::Cache)).unwrap();
    rt.run(&stage2, Mode::Uniform(Strategy::Cache)).unwrap();

    let mut got: Vec<(String, Vec<String>)> = rt
        .dfs
        .read_file("topk")
        .unwrap()
        .iter()
        .map(|r: &Record| {
            let row = r.value.as_list().unwrap();
            let urls: Vec<String> = row[1]
                .as_list()
                .unwrap()
                .iter()
                .map(|u| u.as_text().unwrap().to_owned())
                .collect();
            (row[0].as_text().unwrap().to_owned(), urls)
        })
        .collect();
    got.sort();

    // Same regions, same top-k cardinality, same top URL sets (ordering
    // among equal counts may differ between the two tie-breaks, so we
    // compare as sets).
    assert_eq!(got.len(), reference.len());
    for ((region_a, urls_a), (region_b, urls_b)) in got.iter().zip(&reference) {
        assert_eq!(region_a, region_b);
        assert_eq!(urls_a.len(), urls_b.len(), "{region_a}");
        let a: std::collections::BTreeSet<_> = urls_a.iter().collect();
        let b: std::collections::BTreeSet<_> = urls_b.iter().collect();
        // Tie-breaks may swap borderline URLs; the overlap must dominate.
        let overlap = a.intersection(&b).count();
        assert!(
            overlap * 10 >= urls_a.len() * 7,
            "{region_a}: only {overlap}/{} URLs agree",
            urls_a.len()
        );
    }

    // And the stage-1 counts are exact.
    let total: i64 = rt
        .dfs
        .read_file("mid")
        .unwrap()
        .iter()
        .map(|r| r.value.as_list().unwrap()[2].as_int().unwrap())
        .sum();
    assert_eq!(total, config.num_events as i64);
}

#[test]
fn dynamic_mode_optimizes_declarative_pipelines() {
    // The adaptive runtime works on compiled queries too: expensive geo
    // lookups with heavy IP redundancy trigger a mid-job plan change.
    let config = LogConfig {
        extra_delay: efind_repro::cluster::SimDuration::from_millis(5),
        num_events: 8_000,
        chunks: 240,
        ..config()
    };
    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    dfs.write_file_with_chunks("events", log::generate(&config), config.chunks);
    let geo: Arc<_> = Arc::new(log::geo_service(&config));
    let job = Query::scan("events")
        .index_join("geo", geo, col(0), [0])
        .group_by([col(3)])
        .aggregate([Agg::Count])
        .into_job("log-dyn", "out");

    let mut rt = EFindRuntime::new(&cluster, &mut dfs);
    let base = rt.run(&job, Mode::Uniform(Strategy::Baseline)).unwrap();
    let dynamic = rt.run(&job, Mode::Dynamic).unwrap();
    assert!(
        dynamic.replanned,
        "5 ms geo lookups should trigger a re-plan"
    );
    assert!(dynamic.total_time < base.total_time);
}
