#[test]
fn debug_topics_optimized() {
    use efind_repro::core::{EFindRuntime, Mode, Strategy};
    use efind_repro::workloads::topics::*;
    let config = TopicsConfig {
        num_tweets: 20_000,
        ..TopicsConfig::default()
    };
    let mut s = scenario(&config);
    let mut rt = EFindRuntime::new(&s.cluster, &mut s.dfs);
    rt.run(&s.ijob, Mode::Uniform(Strategy::Baseline)).unwrap();
    let res = rt.run(&s.ijob, Mode::Optimized).unwrap();
    for job in &res.jobs {
        eprintln!(
            "job {} makespan {:.3}",
            job.name,
            job.makespan().as_secs_f64()
        );
        if let Some(r) = &job.reduce {
            let mut times: Vec<(usize, f64, i64, u64)> = r
                .tasks
                .iter()
                .zip(&r.schedule.assignments)
                .map(|(t, a)| {
                    (
                        t.task_id,
                        a.end.since(a.start).as_secs_f64(),
                        t.counters.get("efind.topic.0.lookups"),
                        t.input_records,
                    )
                })
                .collect();
            times.sort_by(|x, y| y.1.total_cmp(&x.1));
            for (id, dur, lk, inrec) in times.iter().take(5) {
                eprintln!("  reduce {id}: {dur:.3}s topic-lookups={lk} in={inrec}");
            }
        }
    }
}
