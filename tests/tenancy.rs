//! Multi-tenant serving robustness: the quiet-tenancy golden, schedule
//! determinism (including under chaos kills), starvation-freedom, and
//! cross-tenant isolation.
//!
//! The tenancy layer obeys the PR-7 quiet discipline: a mix run with no
//! tenancy configuration — or with a single unlimited tenant — takes the
//! literal single-job path and must stay byte-identical to the plain
//! runner, which is itself pinned against the seed by
//! `hotpath_golden.rs`. The armed paths must be pure functions of their
//! inputs (double runs bit-identical) and must confine every tenant's
//! injection layers to that tenant's own jobs.

use efind_cluster::{
    ChaosPlan, Cluster, CorruptionPlan, IndexRateLimit, SimDuration, SimTime, TenancyConfig,
    TenantSpec,
};
use efind_common::{fx_hash_bytes, Datum, Record};
use efind_dfs::{Dfs, DfsConfig};
use efind_mapreduce::{mapper_fn, reducer_fn, run_tenant_mix, JobConf, JobStats, TenantJob};

fn testbed() -> (Cluster, Dfs) {
    let cluster = Cluster::builder()
        .nodes(4)
        .map_slots(2)
        .reduce_slots(2)
        .build();
    let dfs = Dfs::new(
        cluster.clone(),
        DfsConfig {
            chunk_size_bytes: 512,
            replication: 2,
            seed: 9,
        },
    );
    (cluster, dfs)
}

fn words(n: usize) -> Vec<Record> {
    let text = ["the", "quick", "fox", "the", "lazy", "dog", "the", "fox"];
    text.iter()
        .cycle()
        .take(n)
        .enumerate()
        .map(|(i, w)| Record::new(i as i64, *w))
        .collect()
}

fn wordcount(name: &str, input: &str, output: &str) -> JobConf {
    JobConf::new(name, input, output)
        .add_mapper(mapper_fn(|rec, out, _| {
            out.collect(Record::new(rec.value.clone(), 1i64));
        }))
        .with_reducer(
            reducer_fn(|key, values, out, _| {
                let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                out.collect(Record::new(key, total));
            }),
            3,
        )
}

fn counter_fingerprint(stats: &JobStats) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (k, v) in stats.counters.iter_sorted() {
        let _ = writeln!(text, "{k}={v}");
    }
    fx_hash_bytes(text.as_bytes())
}

fn file_fingerprint(dfs: &Dfs, name: &str) -> u64 {
    let mut buf = Vec::new();
    for rec in dfs.read_file(name).expect("output file missing") {
        buf.extend_from_slice(&rec.encode());
    }
    fx_hash_bytes(&buf)
}

/// The quiet-tenancy golden, both legs: a mix with *no* tenancy config and
/// a mix with a single unlimited tenant must both take the literal quiet
/// path and reproduce the exact seed observables that `hotpath_golden.rs`
/// pins for the plain runner.
#[test]
fn quiet_tenancy_mix_matches_seed_golden() {
    const GOLDEN_MAKESPAN_NANOS: u64 = 208_274;
    const GOLDEN_SHUFFLE_BYTES: u64 = 3_475;
    const GOLDEN_COUNTER_FP: u64 = 15_743_512_941_036_554_716;
    const GOLDEN_OUTPUT_FP: u64 = 4_377_774_887_622_299_384;

    let quiet_legs: Vec<(&str, TenancyConfig)> = vec![
        ("no tenancy config", TenancyConfig::none()),
        (
            "one unlimited tenant",
            TenancyConfig::none().tenant(TenantSpec::new("solo")),
        ),
    ];
    for (leg, cfg) in quiet_legs {
        assert!(cfg.is_quiet(), "{leg}: config must classify as quiet");
        let (cluster, mut dfs) = testbed();
        dfs.write_file("input", words(200));
        let jobs = vec![TenantJob::new(
            "solo",
            SimTime::ZERO,
            wordcount("wordcount", "input", "out"),
        )];
        let mix = run_tenant_mix(&cluster, &mut dfs, &cfg, jobs).unwrap();

        assert!(
            mix.log.is_empty(),
            "{leg}: quiet mixes keep no schedule log"
        );
        assert!(mix.ledger.is_empty(), "{leg}: quiet ledgers stay all-zero");
        assert!(
            mix.counters.is_empty(),
            "{leg}: quiet mixes mint no counters"
        );

        let res = mix.jobs[0].result.as_ref().unwrap().as_ref().unwrap();
        assert_eq!(
            res.stats.makespan().as_nanos(),
            GOLDEN_MAKESPAN_NANOS,
            "{leg}"
        );
        assert_eq!(res.stats.shuffle_bytes, GOLDEN_SHUFFLE_BYTES, "{leg}");
        assert_eq!(counter_fingerprint(&res.stats), GOLDEN_COUNTER_FP, "{leg}");
        assert_eq!(file_fingerprint(&dfs, "out"), GOLDEN_OUTPUT_FP, "{leg}");
        assert_eq!(mix.makespan.as_nanos(), GOLDEN_MAKESPAN_NANOS, "{leg}");
    }
}

fn contended_config() -> TenancyConfig {
    TenancyConfig::none()
        .tenant(
            TenantSpec::new("alpha")
                .weight(2)
                .max_queued(4)
                .max_running(1),
        )
        .tenant(
            TenantSpec::new("beta")
                .weight(1)
                .max_queued(2)
                .max_running(1),
        )
        .queue_capacity(4)
        .max_concurrent(1)
        .rate_limit(IndexRateLimit::new("idx", 1_000.0, 50.0))
        .degrade_threshold(SimDuration::from_millis(2))
}

/// One contended mix: two tenants, six jobs (one over the admission
/// budget), one job carrying an armed chaos plan, one declaring index
/// demand that saturates the rate limit.
fn contended_mix(cluster: &Cluster, dfs: &mut Dfs) -> efind_mapreduce::TenantMixOutcome {
    dfs.write_file("input", words(200));
    let us = SimDuration::from_micros;
    let jobs = vec![
        TenantJob::new("alpha", SimTime::ZERO, wordcount("a0", "input", "a0.out")),
        TenantJob::new(
            "beta",
            SimTime::ZERO + us(1),
            wordcount("b0", "input", "b0.out"),
        )
        .with_chaos(ChaosPlan::new(0xEF1D_0009).kill(efind_cluster::NodeId(2), SimTime::ZERO))
        .demand("idx", 400),
        TenantJob::new(
            "alpha",
            SimTime::ZERO + us(2),
            wordcount("a1", "input", "a1.out"),
        ),
        TenantJob::new(
            "alpha",
            SimTime::ZERO + us(3),
            wordcount("a2", "input", "a2.out"),
        ),
        TenantJob::new(
            "beta",
            SimTime::ZERO + us(4),
            wordcount("b1", "input", "b1.out"),
        )
        .demand("idx", 400),
        // Arrives while the queue holds 4 entries: rejected by name.
        TenantJob::new(
            "beta",
            SimTime::ZERO + us(5),
            wordcount("b2", "input", "b2.out"),
        ),
    ];
    run_tenant_mix(cluster, dfs, &contended_config(), jobs).unwrap()
}

/// Satellite: same submission order + seed ⇒ identical admit/reject/
/// complete schedule across double runs, including under chaos kills.
#[test]
fn admission_schedule_is_deterministic_across_double_runs() {
    let (c1, mut d1) = testbed();
    let first = contended_mix(&c1, &mut d1);
    let (c2, mut d2) = testbed();
    let second = contended_mix(&c2, &mut d2);

    assert_eq!(first.log, second.log, "schedule logs must be bit-equal");
    assert_eq!(first.ledger, second.ledger);
    assert_eq!(first.makespan, second.makespan);
    let counters = |m: &efind_mapreduce::TenantMixOutcome| {
        m.counters
            .iter_sorted()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<Vec<_>>()
    };
    assert_eq!(counters(&first), counters(&second));
    assert_eq!(first.jobs.len(), second.jobs.len());
    for (a, b) in first.jobs.iter().zip(&second.jobs) {
        assert_eq!(a.started, b.started);
        assert_eq!(a.finished, b.finished);
        assert_eq!(a.rejected.is_some(), b.rejected.is_some());
        assert_eq!(a.qos, b.qos);
        match (&a.result, &b.result) {
            (Some(Ok(ra)), Some(Ok(rb))) => {
                assert_eq!(
                    counter_fingerprint(&ra.stats),
                    counter_fingerprint(&rb.stats)
                );
                assert_eq!(ra.stats.makespan(), rb.stats.makespan());
            }
            (ra, rb) => assert_eq!(ra.is_some(), rb.is_some()),
        }
    }
    for out in ["a0.out", "b0.out", "a1.out", "a2.out", "b1.out"] {
        assert_eq!(
            file_fingerprint(&d1, out),
            file_fingerprint(&d2, out),
            "{out} diverged between identical runs"
        );
    }

    // The mix actually exercised the armed machinery: one named
    // rejection, and the rate limit charged somebody queueing delay.
    let rejected: Vec<usize> = first
        .jobs
        .iter()
        .enumerate()
        .filter(|(_, j)| j.rejected.is_some())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(rejected, vec![5], "exactly the over-budget job is rejected");
    assert!(matches!(
        first.jobs[5].rejected,
        Some(efind_common::Error::AdmissionRejected(_))
    ));
    let beta = first.ledger.row(efind_cluster::TenantId(1));
    assert!(
        beta.throttle_nanos > 0,
        "beta's demand saturates the bucket"
    );
}

/// Tentpole robustness: one tenant's armed chaos/corruption layers and
/// saturating index demand cannot perturb another tenant's per-job
/// observables. Alpha's job runs bit-identically whether beta's job (a
/// virtual-time neighbor in the same mix) injects nothing or kills a
/// node, corrupts its own chunk reads, and saturates the rate limit.
#[test]
fn armed_tenant_injections_cannot_perturb_a_quiet_tenants_job() {
    let run = |armed: bool| {
        let (cluster, mut dfs) = testbed();
        dfs.write_file("a.in", words(200));
        dfs.write_file("b.in", words(160));
        let cfg = TenancyConfig::none()
            // Alpha outweighs beta 4:1, so alpha's t=0 job is granted (and
            // executed) first; beta's injections fire strictly after.
            .tenant(TenantSpec::new("alpha").weight(4))
            .tenant(TenantSpec::new("beta").weight(1))
            .queue_capacity(8)
            .max_concurrent(2)
            .rate_limit(IndexRateLimit::new("idx", 500.0, 10.0))
            .degrade_threshold(SimDuration::from_millis(5));
        let mut beta_job = TenantJob::new("beta", SimTime::ZERO, wordcount("b", "b.in", "b.out"))
            .demand("idx", 300);
        if armed {
            beta_job = beta_job
                .with_chaos(
                    ChaosPlan::new(0xEF1D_0009).kill(efind_cluster::NodeId(1), SimTime::ZERO),
                )
                .with_corruption(CorruptionPlan::new(0xC0FF_EE09).chunks(0.5));
        }
        let jobs = vec![
            TenantJob::new("alpha", SimTime::ZERO, wordcount("a", "a.in", "a.out")),
            beta_job,
        ];
        let mix = run_tenant_mix(&cluster, &mut dfs, &cfg, jobs).unwrap();
        let alpha = &mix.jobs[0];
        let res = alpha.result.as_ref().unwrap().as_ref().unwrap();
        (
            alpha.started,
            alpha.finished,
            alpha.qos,
            counter_fingerprint(&res.stats),
            res.stats.makespan(),
            file_fingerprint(&dfs, "a.out"),
            mix.ledger.clone(),
        )
    };

    let quiet = run(false);
    let armed = run(true);
    // Alpha's observables: everything up to the output bytes is equal.
    assert_eq!(quiet.0, armed.0, "alpha's grant time moved");
    assert_eq!(quiet.1, armed.1, "alpha's completion time moved");
    assert_eq!(quiet.2, armed.2, "alpha was charged someone else's QoS");
    assert_eq!(quiet.3, armed.3, "alpha's counters changed");
    assert_eq!(quiet.4, armed.4, "alpha's makespan changed");
    assert_eq!(quiet.5, armed.5, "alpha's output bytes changed");
    // And beta's armed run genuinely injected: its recovery shows up in
    // its own ledger row or job result, not alpha's.
    let beta_quiet = quiet.6.row(efind_cluster::TenantId(1)).clone();
    let beta_armed = armed.6.row(efind_cluster::TenantId(1)).clone();
    assert_eq!(beta_quiet.granted, 1);
    assert_eq!(beta_armed.granted, 1);
}

/// Regenerates the E19 contention table of EXPERIMENTS.md: the same
/// 12-job two-tenant mix at three weight ratios, reporting per-tenant
/// mean completion latency (submit → finish) and queue wait.
/// `cargo test --release --test tenancy -- --ignored e19 --nocapture`
#[test]
#[ignore]
fn e19() {
    for (wa, wb) in [(1u64, 1u64), (2, 1), (4, 1)] {
        let (cluster, mut dfs) = testbed();
        dfs.write_file("input", words(200));
        let cfg = TenancyConfig::none()
            .tenant(TenantSpec::new("alpha").weight(wa))
            .tenant(TenantSpec::new("beta").weight(wb))
            .queue_capacity(16)
            .max_concurrent(1);
        let jobs: Vec<TenantJob> = (0..12usize)
            .map(|i| {
                let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
                TenantJob::new(
                    tenant,
                    SimTime::ZERO + SimDuration::from_micros(i as u64),
                    wordcount(&format!("j{i}"), "input", &format!("j{i}.out")),
                )
            })
            .collect();
        let mix = run_tenant_mix(&cluster, &mut dfs, &cfg, jobs).unwrap();
        let mut sums = [SimDuration::ZERO; 2];
        let mut counts = [0u32; 2];
        for job in &mix.jobs {
            let t = job.tenant.0 as usize;
            sums[t] +=
                job.finished.unwrap().since(SimTime::ZERO) - job.submitted.since(SimTime::ZERO);
            counts[t] += 1;
        }
        let ledger = &mix.ledger;
        println!(
            "| {wa}:{wb} | {:.3} ms | {:.3} ms | {:.3} ms | {:.3} ms |",
            sums[0].as_secs_f64() * 1e3 / counts[0] as f64,
            ledger.row(efind_cluster::TenantId(0)).wait_nanos as f64 / counts[0] as f64 / 1e6,
            sums[1].as_secs_f64() * 1e3 / counts[1] as f64,
            ledger.row(efind_cluster::TenantId(1)).wait_nanos as f64 / counts[1] as f64 / 1e6,
        );
    }
}

/// Tentpole robustness: deficit-weighted scheduling is starvation-free.
/// Any mix of weights ≥ 1 and submission patterns that fits the admission
/// budget completes every job — nothing hangs, nothing starves.
mod starvation {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn weighted_contention_completes_every_admitted_job(
            weights in proptest::collection::vec(1u64..=6, 3),
            tenant_of in proptest::collection::vec(0usize..3, 6),
            cost_hints in proptest::collection::vec(1u64..=3, 6),
        ) {
            let (cluster, mut dfs) = testbed();
            dfs.write_file("input", words(80));
            let names = ["t0", "t1", "t2"];
            let mut cfg = TenancyConfig::none()
                .queue_capacity(16)
                .max_concurrent(1);
            for (name, w) in names.iter().zip(&weights) {
                cfg = cfg.tenant(TenantSpec::new(*name).weight(*w));
            }
            let jobs: Vec<TenantJob> = tenant_of
                .iter()
                .zip(&cost_hints)
                .enumerate()
                .map(|(i, (&t, &cost))| {
                    TenantJob::new(
                        names[t],
                        SimTime::ZERO + SimDuration::from_micros(i as u64),
                        wordcount(&format!("j{i}"), "input", &format!("j{i}.out")),
                    )
                    .cost_hint(cost)
                })
                .collect();
            let n = jobs.len();
            let mix = run_tenant_mix(&cluster, &mut dfs, &cfg, jobs).unwrap();
            for (i, job) in mix.jobs.iter().enumerate() {
                prop_assert!(job.rejected.is_none(), "job {i} rejected under an ample queue");
                prop_assert!(job.started.is_some(), "job {i} starved without a grant");
                prop_assert!(job.finished.is_some(), "job {i} never completed");
                let ok = matches!(job.result, Some(Ok(_)));
                prop_assert!(ok, "job {i} failed");
            }
            let completed: u64 = mix.ledger.rows().iter().map(|r| r.completed).sum();
            prop_assert_eq!(completed, n as u64);
        }
    }
}
