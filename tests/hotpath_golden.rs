//! Golden output-equivalence tests for the real-time hot path.
//!
//! The hot-path work (interned counters, `Arc`-shared cache results,
//! allocation-free shuffle/reduce, shared DFS chunks) is a *real-time*
//! optimization only: every virtual-time observable — makespans, counter
//! maps, shuffle bytes, and DFS file contents — must stay bit-identical
//! to the seed implementation. The constants below were captured from the
//! seed revision (before the rewrite) and pin that equivalence across a
//! plain MapReduce job, the scan join, and a multi-index EFind workload.

use efind::{EFindRuntime, Mode, Strategy};
use efind_cluster::Cluster;
use efind_common::{fx_hash_bytes, Datum, Record};
use efind_dfs::{Dfs, DfsConfig};
use efind_mapreduce::{mapper_fn, reducer_fn, run_job, JobConf, JobStats};
use efind_workloads::multi::{self, MultiConfig};
use efind_workloads::scanjoin::run_scan_join;
use efind_workloads::tpch::{self, TpchConfig};

/// Labeled golden observables; the whole vector is compared at once so a
/// mismatch prints every captured value next to its expectation.
type Goldens = Vec<(String, u64)>;

fn golden(label: &str, value: u64) -> (String, u64) {
    (label.to_owned(), value)
}

/// Stable fingerprint of a counter map: hash of the sorted
/// `name=value` lines.
fn counter_fingerprint(stats: &JobStats) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (k, v) in stats.counters.iter_sorted() {
        let _ = writeln!(text, "{k}={v}");
    }
    fx_hash_bytes(text.as_bytes())
}

/// Stable fingerprint of a DFS file's full contents, in chunk order.
fn file_fingerprint(dfs: &Dfs, name: &str) -> u64 {
    let mut buf = Vec::new();
    for rec in dfs.read_file(name).expect("golden output file missing") {
        buf.extend_from_slice(&rec.encode());
    }
    fx_hash_bytes(&buf)
}

#[test]
fn wordcount_virtual_results_match_seed() {
    let cluster = Cluster::builder()
        .nodes(4)
        .map_slots(2)
        .reduce_slots(2)
        .build();
    let mut dfs = Dfs::new(
        cluster.clone(),
        DfsConfig {
            chunk_size_bytes: 512,
            replication: 2,
            seed: 9,
        },
    );
    let text = ["the", "quick", "fox", "the", "lazy", "dog", "the", "fox"];
    let records: Vec<Record> = text
        .iter()
        .cycle()
        .take(200)
        .enumerate()
        .map(|(i, w)| Record::new(i as i64, *w))
        .collect();
    dfs.write_file("input", records);
    let conf = JobConf::new("wordcount", "input", "out")
        .add_mapper(mapper_fn(|rec, out, _| {
            out.collect(Record::new(rec.value.clone(), 1i64));
        }))
        .with_reducer(
            reducer_fn(|key, values, out, _| {
                let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                out.collect(Record::new(key, total));
            }),
            3,
        );
    let res = run_job(&cluster, &mut dfs, &conf).unwrap();

    let captured: Goldens = vec![
        golden("makespan.nanos", res.stats.makespan().as_nanos()),
        golden("shuffle.bytes", res.stats.shuffle_bytes),
        golden("counters.fingerprint", counter_fingerprint(&res.stats)),
        golden("output.records", res.output.total_records() as u64),
        golden("output.fingerprint", file_fingerprint(&dfs, "out")),
    ];
    let expected: Goldens = vec![
        golden("makespan.nanos", 208_274),
        golden("shuffle.bytes", 3_475),
        golden("counters.fingerprint", 15_743_512_941_036_554_716),
        golden("output.records", 5),
        golden("output.fingerprint", 4_377_774_887_622_299_384),
    ];
    assert_eq!(captured, expected);
}

#[test]
fn scanjoin_virtual_results_match_seed() {
    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    let data = tpch::generate(&TpchConfig {
        scale: 0.002,
        chunks: 30,
        seed: 3,
        ..TpchConfig::default()
    });
    let (makespan, joined) = run_scan_join(&cluster, &mut dfs, &data, 1_200, 30).unwrap();

    let captured: Goldens = vec![
        golden("makespan.nanos", makespan.as_nanos()),
        golden("joined.rows", joined),
        golden("output.fingerprint", file_fingerprint(&dfs, "scanjoin.out")),
    ];
    let expected: Goldens = vec![
        golden("makespan.nanos", 47_634_460),
        golden("joined.rows", 5_723),
        golden("output.fingerprint", 1_402_658_617_768_828_488),
    ];
    assert_eq!(captured, expected);
}

/// Quiet-profile monomorphization golden: every workload in this file,
/// run with all three injection layers *configured but quiet* (a seeded
/// fault plan with zero rates and no timeout, a seeded chaos plan with
/// zero kills, a seeded corruption plan with zero rates), must produce
/// byte-identical virtual observables to the plain run. Because the
/// plain runs are pinned against the seed above, this transitively pins
/// the quiet-profile runs to the seed too.
#[test]
fn quiet_profile_is_byte_identical_to_plain() {
    use efind::{FaultConfig, FaultPlan};
    use efind_cluster::{ChaosPlan, CorruptionPlan, SimTime};
    use efind_mapreduce::Runner;
    use efind_workloads::scanjoin::run_scan_join_with;

    const SEED: u64 = 0xEF1D_0007;

    // --- wordcount: plain runner vs configured-but-quiet runner.
    let run_wordcount = |quiet: bool| -> Goldens {
        let cluster = Cluster::builder()
            .nodes(4)
            .map_slots(2)
            .reduce_slots(2)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 512,
                replication: 2,
                seed: 9,
            },
        );
        let text = ["the", "quick", "fox", "the", "lazy", "dog", "the", "fox"];
        let records: Vec<Record> = text
            .iter()
            .cycle()
            .take(200)
            .enumerate()
            .map(|(i, w)| Record::new(i as i64, *w))
            .collect();
        dfs.write_file("input", records);
        let conf = JobConf::new("wordcount", "input", "out")
            .add_mapper(mapper_fn(|rec, out, _| {
                out.collect(Record::new(rec.value.clone(), 1i64));
            }))
            .with_reducer(
                reducer_fn(|key, values, out, _| {
                    let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                    out.collect(Record::new(key, total));
                }),
                3,
            );
        let res = if quiet {
            Runner::with_chaos(&cluster, &mut dfs, ChaosPlan::new(SEED))
                .with_corruption(CorruptionPlan::new(SEED))
                .run(&conf, SimTime::ZERO)
        } else {
            run_job(&cluster, &mut dfs, &conf)
        }
        .unwrap();
        vec![
            golden("makespan.nanos", res.stats.makespan().as_nanos()),
            golden("shuffle.bytes", res.stats.shuffle_bytes),
            golden("counters.fingerprint", counter_fingerprint(&res.stats)),
            golden("output.records", res.output.total_records() as u64),
            golden("output.fingerprint", file_fingerprint(&dfs, "out")),
        ]
    };
    assert_eq!(run_wordcount(false), run_wordcount(true), "wordcount");

    // --- scanjoin: plain join vs configured-but-quiet plans on the runner.
    let run_scanjoin = |quiet: bool| -> Goldens {
        let cluster = Cluster::edbt_testbed();
        let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
        let data = tpch::generate(&TpchConfig {
            scale: 0.002,
            chunks: 30,
            seed: 3,
            ..TpchConfig::default()
        });
        let (chaos, corruption) = if quiet {
            (ChaosPlan::new(SEED), CorruptionPlan::new(SEED))
        } else {
            (ChaosPlan::none(), CorruptionPlan::none())
        };
        let (makespan, joined) =
            run_scan_join_with(&cluster, &mut dfs, &data, 1_200, 30, chaos, corruption).unwrap();
        vec![
            golden("makespan.nanos", makespan.as_nanos()),
            golden("joined.rows", joined),
            golden("output.fingerprint", file_fingerprint(&dfs, "scanjoin.out")),
        ]
    };
    assert_eq!(run_scanjoin(false), run_scanjoin(true), "scanjoin");

    // --- multi-index EFind workload: quiet plans on all three layers of
    // the runtime config, including the fault layer on every lookup.
    let run_multi = |quiet: bool| -> Goldens {
        let config = MultiConfig {
            num_events: 3_000,
            num_users: 200,
            num_ads: 500,
            num_sites: 100,
            site_value_bytes: 200,
            chunks: 30,
            ..MultiConfig::default()
        };
        let mut s = multi::scenario(&config);
        let mut efind_config = s.efind_config.clone();
        if quiet {
            efind_config.faults = FaultConfig::disabled().with_plan(FaultPlan::new(SEED));
            efind_config.chaos = ChaosPlan::new(SEED);
            efind_config.corruption = CorruptionPlan::new(SEED);
        }
        let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, efind_config);
        let res = rt.run(&s.ijob, Mode::Uniform(Strategy::Cache)).unwrap();
        vec![
            golden("total.nanos", res.total_time.as_nanos()),
            golden("jobs", res.jobs.len() as u64),
            golden(
                "job0.counters.fingerprint",
                counter_fingerprint(&res.jobs[0]),
            ),
            golden("output.records", res.output.total_records() as u64),
            golden(
                "output.fingerprint",
                file_fingerprint(&s.dfs, "ads.enriched"),
            ),
        ]
    };
    assert_eq!(run_multi(false), run_multi(true), "multi_index");
}

/// One multi-index workload (three independent indices in one operator)
/// under both a chained strategy (cache) and a shuffle strategy
/// (re-partitioning), pinning per-job makespans, shuffle bytes, counter
/// maps, and the output file.
#[test]
fn multi_index_virtual_results_match_seed() {
    let expected_by_mode: [(Strategy, Goldens); 2] = [
        (
            Strategy::Cache,
            vec![
                golden("total.nanos", 117_260_797),
                golden("jobs", 1),
                golden("job0.makespan.nanos", 117_260_797),
                golden("job0.shuffle.bytes", 168_648),
                golden("job0.counters.fingerprint", 3_799_603_285_767_459_785),
                golden("output.records", 961),
                golden("output.fingerprint", 14_711_040_664_649_218_481),
            ],
        ),
        (
            Strategy::Repartition,
            vec![
                golden("total.nanos", 21_230_168),
                golden("jobs", 4),
                golden("job0.makespan.nanos", 7_494_530),
                golden("job0.shuffle.bytes", 330_000),
                golden("job0.counters.fingerprint", 506_267_820_866_738_143),
                golden("output.records", 961),
                golden("output.fingerprint", 14_711_040_664_649_218_481),
            ],
        ),
    ];

    for (strategy, expected) in expected_by_mode {
        let config = MultiConfig {
            num_events: 3_000,
            num_users: 200,
            num_ads: 500,
            num_sites: 100,
            site_value_bytes: 200,
            chunks: 30,
            ..MultiConfig::default()
        };
        let mut s = multi::scenario(&config);
        let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
        let res = rt.run(&s.ijob, Mode::Uniform(strategy)).unwrap();

        let mut captured: Goldens = vec![
            golden("total.nanos", res.total_time.as_nanos()),
            golden("jobs", res.jobs.len() as u64),
            golden("job0.makespan.nanos", res.jobs[0].makespan().as_nanos()),
            golden("job0.shuffle.bytes", res.jobs[0].shuffle_bytes),
            golden(
                "job0.counters.fingerprint",
                counter_fingerprint(&res.jobs[0]),
            ),
        ];
        captured.push(golden("output.records", res.output.total_records() as u64));
        captured.push(golden(
            "output.fingerprint",
            file_fingerprint(&s.dfs, "ads.enriched"),
        ));
        assert_eq!(captured, expected, "strategy {strategy:?}");
    }
}
