//! Property-based pins for the injection layers' core guarantees:
//!
//! 1. **Quiet-plan transparency** — arming the fault layer with a
//!    zero-rate plan changes *nothing*: every virtual observable
//!    (makespans, shuffle bytes, counter maps, output fingerprints) is
//!    bit-identical to a run without the fault layer, whatever the seed
//!    and strategy.
//! 2. **Exactly-once-effective retries** — transient failures never
//!    change the job *output* (only makespan and counters), for any
//!    seed and rate up to 0.2, under each miss policy. The real accessor
//!    is only invoked on attempts the plan lets through, and with 16
//!    retries exhaustion is unreachable at these rates.
//! 3. **Quiet corruption transparency** — a seeded but zero-rate
//!    [`CorruptionPlan`] arms CRC verification at every read boundary
//!    yet changes nothing: the checksum machinery is free until a byte
//!    actually flips, whatever the seed and strategy.
//!
//! Each case spins up a full simulated cluster, so the case counts stay
//! small; the deterministic sweep in `tests/fault_injection.rs` covers
//! the pinned seed matrix densely.

use efind::{EFindRuntime, FaultConfig, FaultPlan, MissPolicy, Mode, RetryPolicy, Strategy};
use efind_cluster::{CorruptionPlan, NodeId, PartitionPlan, SimDuration, SimTime};
use efind_common::{fx_hash_bytes, Datum};
use efind_dfs::Dfs;
use efind_mapreduce::JobStats;
use efind_workloads::multi::{self, MultiConfig};
use proptest::prelude::*;

/// Labeled virtual observables (see `tests/fault_injection.rs`).
type Observables = Vec<(String, u64)>;

fn counter_fingerprint(stats: &JobStats) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (k, v) in stats.counters.iter_sorted() {
        let _ = writeln!(text, "{k}={v}");
    }
    fx_hash_bytes(text.as_bytes())
}

fn file_fingerprint(dfs: &Dfs, name: &str) -> u64 {
    let mut buf = Vec::new();
    for rec in dfs.read_file(name).expect("output file missing") {
        buf.extend_from_slice(&rec.encode());
    }
    fx_hash_bytes(&buf)
}

/// A small multi-index workload: three indices, every strategy viable.
fn tiny_config() -> MultiConfig {
    MultiConfig {
        num_events: 600,
        num_users: 60,
        num_ads: 100,
        num_sites: 40,
        site_value_bytes: 64,
        chunks: 8,
        ..MultiConfig::default()
    }
}

const STRATEGIES: [Strategy; 4] = [
    Strategy::Baseline,
    Strategy::Cache,
    Strategy::Repartition,
    Strategy::IndexLocality,
];

/// Runs the workload and captures every virtual observable.
fn run_observed(strategy: Strategy, faults: FaultConfig) -> Observables {
    let mut s = multi::scenario(&tiny_config());
    s.efind_config.faults = faults;
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
    let res = rt.run(&s.ijob, Mode::Uniform(strategy)).unwrap();
    let mut captured: Observables = vec![
        ("total.nanos".into(), res.total_time.as_nanos()),
        ("jobs".into(), res.jobs.len() as u64),
    ];
    for (i, job) in res.jobs.iter().enumerate() {
        captured.push((format!("job{i}.makespan.nanos"), job.makespan().as_nanos()));
        captured.push((format!("job{i}.shuffle.bytes"), job.shuffle_bytes));
        captured.push((
            format!("job{i}.counters.fingerprint"),
            counter_fingerprint(job),
        ));
    }
    captured.push((
        "output.fingerprint".into(),
        file_fingerprint(&s.dfs, "ads.enriched"),
    ));
    captured
}

/// Runs the workload with a corruption plan armed (fault layer off),
/// capturing the same observables as [`run_observed`].
fn run_observed_corrupt(strategy: Strategy, corruption: CorruptionPlan) -> Observables {
    let mut s = multi::scenario(&tiny_config());
    s.efind_config.corruption = corruption;
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
    let res = rt.run(&s.ijob, Mode::Uniform(strategy)).unwrap();
    let mut captured: Observables = vec![
        ("total.nanos".into(), res.total_time.as_nanos()),
        ("jobs".into(), res.jobs.len() as u64),
    ];
    for (i, job) in res.jobs.iter().enumerate() {
        captured.push((format!("job{i}.makespan.nanos"), job.makespan().as_nanos()));
        captured.push((format!("job{i}.shuffle.bytes"), job.shuffle_bytes));
        captured.push((
            format!("job{i}.counters.fingerprint"),
            counter_fingerprint(job),
        ));
    }
    captured.push((
        "output.fingerprint".into(),
        file_fingerprint(&s.dfs, "ads.enriched"),
    ));
    captured
}

/// Runs the workload with a partition plan armed (everything else off),
/// capturing the same observables as [`run_observed`].
fn run_observed_split(strategy: Strategy, netsplit: PartitionPlan) -> Observables {
    let mut s = multi::scenario(&tiny_config());
    s.efind_config.netsplit = netsplit;
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
    let res = rt.run(&s.ijob, Mode::Uniform(strategy)).unwrap();
    let mut captured: Observables = vec![
        ("total.nanos".into(), res.total_time.as_nanos()),
        ("jobs".into(), res.jobs.len() as u64),
    ];
    for (i, job) in res.jobs.iter().enumerate() {
        captured.push((format!("job{i}.makespan.nanos"), job.makespan().as_nanos()));
        captured.push((format!("job{i}.shuffle.bytes"), job.shuffle_bytes));
        captured.push((
            format!("job{i}.counters.fingerprint"),
            counter_fingerprint(job),
        ));
    }
    captured.push((
        "output.fingerprint".into(),
        file_fingerprint(&s.dfs, "ads.enriched"),
    ));
    captured
}

/// Only the output rows of an observable vector.
fn output_of(observables: &Observables) -> Vec<(String, u64)> {
    observables
        .iter()
        .filter(|(k, _)| k.starts_with("output."))
        .cloned()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite 1: a zero-fault plan is observably absent. All four
    /// strategies run per case so a strategy-specific leak cannot hide.
    #[test]
    fn quiet_fault_plan_changes_no_observable(seed in any::<u64>()) {
        for &strategy in &STRATEGIES {
            let without = run_observed(strategy, FaultConfig::disabled());
            // Armed with a quiet plan: fault state installed everywhere,
            // zero injection probability.
            let mut armed = FaultConfig::disabled().with_plan(FaultPlan::new(seed));
            armed.timeout = Some(SimDuration::from_secs(1));
            let with = run_observed(strategy, armed);
            prop_assert_eq!(
                &with, &without,
                "quiet plan perturbed observables: seed={} strategy={:?}",
                seed, strategy
            );
        }
    }

    /// Satellite 2: transient failures are exactly-once-effective. The
    /// output fingerprint never moves, whatever the seed, rate (≤ 0.2),
    /// strategy, or miss policy; only makespan and counters may change.
    #[test]
    fn transient_failures_never_change_output(
        seed in any::<u64>(),
        rate in 0.0f64..0.2,
        strategy_pick in 0usize..4,
        policy_pick in 0usize..3,
    ) {
        let strategy = STRATEGIES[strategy_pick];
        let clean = run_observed(strategy, FaultConfig::disabled());

        let policy = [
            MissPolicy::Skip,
            MissPolicy::Default(Datum::Text("fallback".into())),
            MissPolicy::FailJob,
        ][policy_pick].clone();
        let mut faults = FaultConfig::disabled().with_plan(
            FaultPlan::new(seed)
                .failures(rate * 0.7)
                .timeouts(rate * 0.3),
        );
        faults.retry = RetryPolicy::bounded(
            16,
            SimDuration::from_micros(20),
            SimDuration::from_millis(2),
        );
        faults.miss_policy = policy;
        let faulty = run_observed(strategy, faults);

        prop_assert_eq!(
            output_of(&faulty),
            output_of(&clean),
            "output moved: seed={} rate={} strategy={:?}",
            seed, rate, strategy
        );
        // At meaningful rates faults were certainly injected (≥ 1 in
        // ~1800 attempts bumps a fault counter), so the equality above
        // is not vacuous: some non-output observable must have moved.
        if rate > 0.05 {
            prop_assert_ne!(faulty, clean);
        }
    }

    /// A partition that heals entirely before the job starts never
    /// existed: jobs start at virtual zero and windows are half-open
    /// `[start, heal)`, so a window closing at-or-before its own start
    /// (the only way to close by time zero) is dropped at insertion, the
    /// plan classifies Quiet, and the run is byte-identical to one with
    /// no plan at all — whatever the seed, node, window, or strategy.
    #[test]
    fn partition_healed_before_job_start_changes_no_observable(
        seed in any::<u64>(),
        node in 0u16..4,
        start_nanos in 0u64..10_000,
        shrink in 0u64..10_000,
        factor in 0.0f64..=1.0,
    ) {
        let start = SimTime::from_nanos(start_nanos + shrink);
        let heal = SimTime::from_nanos(start_nanos); // heal <= start
        let plan = PartitionPlan::new(seed)
            .split(&[NodeId(node)], start, Some(heal))
            .slow_link(NodeId(node), start, Some(heal), 4.0)
            .slow_link(NodeId((node + 1) % 4), SimTime::ZERO, None, factor);
        prop_assert!(plan.is_quiet(), "a pre-start heal must be dropped");
        for &strategy in &STRATEGIES {
            let without = run_observed_split(strategy, PartitionPlan::none());
            let with = run_observed_split(strategy, plan.clone());
            prop_assert_eq!(
                &with, &without,
                "healed-before-start plan perturbed observables: seed={} strategy={:?}",
                seed, strategy
            );
        }
    }

    /// Satellite 3 (PR 5): a *quiet* corruption plan — seeded, zero
    /// rates, checksum verification armed at every read boundary — is
    /// observably absent: neither output nor counter fingerprint nor a
    /// single nanosecond of virtual time moves, under every strategy.
    #[test]
    fn quiet_corruption_plan_changes_no_observable(seed in any::<u64>()) {
        for &strategy in &STRATEGIES {
            let without = run_observed_corrupt(strategy, CorruptionPlan::none());
            let with = run_observed_corrupt(strategy, CorruptionPlan::new(seed));
            prop_assert_eq!(
                &with, &without,
                "quiet corruption plan perturbed observables: seed={} strategy={:?}",
                seed, strategy
            );
        }
    }
}
