//! Deterministic chaos suite for the fault-tolerant index-access path.
//!
//! Every fault the layer injects is a pure function of
//! `(seed, index scope, key, attempt)` on the *virtual* clock — no wall
//! time, no shared RNG. These tests pin that determinism end to end:
//!
//! * Per `(seed, failure rate, strategy)` cell, two complete runs must
//!   produce bit-identical virtual observables (total time, per-job
//!   makespans, shuffle bytes, counter maps, output files).
//! * The zero-fault cell must match the `tests/hotpath_golden.rs`
//!   constants exactly — arming the fault layer with a quiet plan is
//!   byte-for-byte the plain lookup path.
//! * Transient failures with enough retries never change the job
//!   *output*, only its makespan and counters (exactly-once-effective
//!   lookups).
//! * The acceptance workload (`lookup_heavy` at a 5% transient failure
//!   rate) completes with correct output and reports its retries in the
//!   job summary.
//!
//! The seed matrix is pinned but overridable: set `EFIND_FAULT_SEEDS` to
//! a comma-separated list of integers (decimal or 0x-hex) to sweep other
//! seeds, as `scripts/ci.sh` does.

use efind::{EFindRuntime, FaultConfig, FaultPlan, Mode, RetryPolicy, Strategy};
use efind_cluster::SimDuration;
use efind_common::fx_hash_bytes;
use efind_dfs::Dfs;
use efind_mapreduce::JobStats;
use efind_workloads::multi::{self, MultiConfig};
use efind_workloads::synthetic::{self, SyntheticConfig};

/// Labeled virtual observables; whole vectors are compared at once so a
/// mismatch prints every value next to its expectation.
type Observables = Vec<(String, u64)>;

fn obs(label: impl Into<String>, value: u64) -> (String, u64) {
    (label.into(), value)
}

/// Stable fingerprint of a counter map: hash of the sorted
/// `name=value` lines (identical to `tests/hotpath_golden.rs`).
fn counter_fingerprint(stats: &JobStats) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (k, v) in stats.counters.iter_sorted() {
        let _ = writeln!(text, "{k}={v}");
    }
    fx_hash_bytes(text.as_bytes())
}

/// Stable fingerprint of a DFS file's full contents, in chunk order.
fn file_fingerprint(dfs: &Dfs, name: &str) -> u64 {
    let mut buf = Vec::new();
    for rec in dfs.read_file(name).expect("output file missing") {
        buf.extend_from_slice(&rec.encode());
    }
    fx_hash_bytes(&buf)
}

/// The pinned seed matrix, overridable via `EFIND_FAULT_SEEDS`.
fn fault_seeds() -> Vec<u64> {
    let parse = |text: &str| -> Vec<u64> {
        text.split(',')
            .filter_map(|tok| {
                let tok = tok.trim();
                tok.strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| tok.parse())
                    .ok()
            })
            .collect()
    };
    match std::env::var("EFIND_FAULT_SEEDS") {
        Ok(text) if !parse(&text).is_empty() => parse(&text),
        _ => vec![0xEF1D_0001, 0xC0FF_EE42],
    }
}

/// A fault configuration injecting a mixed failure profile at `rate`:
/// 60% outright failures, 20% hangs, 20% slowdowns. Retries are generous
/// enough (16) that exhaustion is unreachable for rates ≤ 0.2, so the
/// output stays byte-identical to a fault-free run.
fn faults_at(seed: u64, rate: f64) -> FaultConfig {
    let mut config = FaultConfig::disabled().with_plan(
        FaultPlan::new(seed)
            .failures(rate * 0.6)
            .timeouts(rate * 0.2)
            .slowdowns(rate * 0.2, 4.0),
    );
    config.retry = RetryPolicy::bounded(
        16,
        SimDuration::from_micros(50),
        SimDuration::from_millis(5),
    );
    config.timeout = Some(SimDuration::from_millis(50));
    config
}

/// Runs the multi-index workload under one strategy and fault config,
/// capturing every virtual observable.
fn run_multi(config: &MultiConfig, strategy: Strategy, faults: FaultConfig) -> Observables {
    let mut s = multi::scenario(config);
    s.efind_config.faults = faults;
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
    let res = rt.run(&s.ijob, Mode::Uniform(strategy)).unwrap();
    let mut captured: Observables = vec![
        obs("total.nanos", res.total_time.as_nanos()),
        obs("jobs", res.jobs.len() as u64),
    ];
    for (i, job) in res.jobs.iter().enumerate() {
        captured.push(obs(
            format!("job{i}.makespan.nanos"),
            job.makespan().as_nanos(),
        ));
        captured.push(obs(format!("job{i}.shuffle.bytes"), job.shuffle_bytes));
        captured.push(obs(
            format!("job{i}.counters.fingerprint"),
            counter_fingerprint(job),
        ));
    }
    captured.push(obs("output.records", res.output.total_records() as u64));
    captured.push(obs(
        "output.fingerprint",
        file_fingerprint(&s.dfs, "ads.enriched"),
    ));
    captured
}

/// The exact configuration `tests/hotpath_golden.rs` pins.
fn golden_config() -> MultiConfig {
    MultiConfig {
        num_events: 3_000,
        num_users: 200,
        num_ads: 500,
        num_sites: 100,
        site_value_bytes: 200,
        chunks: 30,
        ..MultiConfig::default()
    }
}

/// A smaller configuration for the faulty sweep cells (the injected
/// retries multiply virtual work; the sweep covers many cells).
fn sweep_config() -> MultiConfig {
    MultiConfig {
        num_events: 1_200,
        num_users: 120,
        num_ads: 200,
        num_sites: 60,
        site_value_bytes: 128,
        chunks: 12,
        ..MultiConfig::default()
    }
}

const STRATEGIES: [Strategy; 4] = [
    Strategy::Baseline,
    Strategy::Cache,
    Strategy::Repartition,
    Strategy::IndexLocality,
];

/// The headline sweep: per `(seed, failure rate, strategy)` cell, two
/// complete runs must agree on every virtual observable, and the fault
/// counters must actually register injected faults.
#[test]
fn faulty_runs_are_bit_identical_per_seed() {
    let config = sweep_config();
    let fault_free: Vec<Observables> = STRATEGIES
        .iter()
        .map(|&s| run_multi(&config, s, FaultConfig::disabled()))
        .collect();
    for seed in fault_seeds() {
        for rate in [0.05, 0.2] {
            for (si, &strategy) in STRATEGIES.iter().enumerate() {
                let first = run_multi(&config, strategy, faults_at(seed, rate));
                let second = run_multi(&config, strategy, faults_at(seed, rate));
                assert_eq!(
                    first, second,
                    "nondeterminism: seed={seed:#x} rate={rate} strategy={strategy:?}"
                );
                // Transient faults with 16 retries never reach exhaustion
                // at these rates: the job *output* matches the fault-free
                // run exactly (exactly-once-effective lookups).
                let output = |o: &Observables| {
                    o.iter()
                        .filter(|(k, _)| k.starts_with("output."))
                        .cloned()
                        .collect::<Vec<_>>()
                };
                assert_eq!(
                    output(&first),
                    output(&fault_free[si]),
                    "output changed: seed={seed:#x} rate={rate} strategy={strategy:?}"
                );
                // And the injection is real: virtual time moved.
                let total = |o: &Observables| o[0].1;
                assert!(
                    total(&first) > total(&fault_free[si]),
                    "no fault overhead observed: seed={seed:#x} rate={rate} strategy={strategy:?}"
                );
            }
        }
    }
}

/// The zero-fault cell of the sweep matches the `hotpath_golden.rs`
/// constants exactly: arming the fault layer with a quiet plan (or a
/// disabled config) does not move a single bit of any observable.
#[test]
fn zero_fault_cell_matches_hotpath_goldens() {
    let expected_by_mode: [(Strategy, Observables); 2] = [
        (
            Strategy::Cache,
            vec![
                obs("total.nanos", 117_260_797),
                obs("jobs", 1),
                obs("job0.makespan.nanos", 117_260_797),
                obs("job0.shuffle.bytes", 168_648),
                obs("job0.counters.fingerprint", 3_799_603_285_767_459_785),
                obs("output.records", 961),
                obs("output.fingerprint", 14_711_040_664_649_218_481),
            ],
        ),
        (
            Strategy::Repartition,
            vec![
                obs("total.nanos", 21_230_168),
                obs("jobs", 4),
                obs("job0.makespan.nanos", 7_494_530),
                obs("job0.shuffle.bytes", 330_000),
                obs("job0.counters.fingerprint", 506_267_820_866_738_143),
                obs("output.records", 961),
                obs("output.fingerprint", 14_711_040_664_649_218_481),
            ],
        ),
    ];
    for (strategy, expected) in expected_by_mode {
        for (label, faults) in [
            ("disabled", FaultConfig::disabled()),
            // An *armed but quiet* plan: the fault state is installed in
            // every charged lookup, yet nothing may change.
            ("quiet", faults_at(7, 0.0)),
        ] {
            let captured = run_multi(&golden_config(), strategy, faults);
            let kept: Observables = captured
                .into_iter()
                .filter(|(k, _)| expected.iter().any(|(e, _)| e == k))
                .collect();
            assert_eq!(kept, expected, "strategy {strategy:?}, faults {label}");
        }
    }
}

/// Acceptance: the `lookup_heavy` bench workload at a 5% transient
/// failure rate with retries completes with the exact fault-free output
/// and reports its retries and failures in the job report.
#[test]
fn lookup_heavy_survives_five_percent_failures() {
    let config = SyntheticConfig {
        num_records: 24_000,
        key_space: 2_400,
        record_pad: 16,
        index_value_size: 64,
        chunks: 48,
        ..SyntheticConfig::default()
    };

    let run = |faults: FaultConfig| {
        let mut s = synthetic::scenario(&config);
        s.efind_config.faults = faults;
        let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
        let res = rt.run(&s.ijob, Mode::Uniform(Strategy::Cache)).unwrap();
        let fp = file_fingerprint(&s.dfs, "syn.joined");
        (res, fp)
    };

    let (clean, clean_fp) = run(FaultConfig::disabled());
    let (faulty, faulty_fp) = run(faults_at(0xEF1D_0001, 0.05));

    assert_eq!(
        faulty_fp, clean_fp,
        "5% transient failures changed the output"
    );
    assert!(
        faulty.total_time > clean.total_time,
        "retries cost no virtual time?"
    );

    let stats = &faulty.jobs[0];
    let failures = stats.counters.get("efind.synjoin.0.fault.failures");
    let retries = stats.counters.get("efind.synjoin.0.fault.retries");
    let exhausted = stats.counters.get("efind.synjoin.0.fault.exhausted");
    assert!(failures > 0, "no transient failures injected");
    assert!(retries >= failures, "every failed attempt must be retried");
    assert_eq!(exhausted, 0, "no lookup may exhaust its retries at 5%");

    let summary = efind_mapreduce::report::render_summary(stats);
    assert!(
        summary.contains("fault tolerance:"),
        "job report lacks the fault summary line:\n{summary}"
    );
    assert!(
        summary.contains("efind.synjoin.0.fault.retries"),
        "job report lacks the retry counter:\n{summary}"
    );

    // The clean run's report must not mention faults at all.
    let clean_summary = efind_mapreduce::report::render_summary(&clean.jobs[0]);
    assert!(!clean_summary.contains("fault tolerance"));
}

/// Degradation end to end: a black-holed index (100% failures, no
/// retries, hair-trigger breaker) still completes the job under the
/// `Skip` policy — records simply miss — and reports the degradation.
#[test]
fn black_holed_index_degrades_instead_of_failing() {
    let config = sweep_config();
    let mut s = multi::scenario(&config);
    let mut faults = FaultConfig::disabled().with_plan(FaultPlan::new(3).failures(1.0));
    faults.retry = RetryPolicy::none();
    faults.breaker_threshold_x1000 = 500;
    faults.breaker_min_samples = 4;
    s.efind_config.faults = faults;
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
    let res = rt.run(&s.ijob, Mode::Uniform(Strategy::Cache)).unwrap();

    // Every record survives (postProcess sees misses), and the breaker
    // actually opened somewhere.
    assert!(res.output.total_records() > 0);
    let stats = &res.jobs[0];
    let degraded: i64 = (0..3)
        .map(|j| {
            stats
                .counters
                .get(&format!("efind.enrich3.{j}.fault.degraded"))
        })
        .sum();
    assert!(degraded > 0, "breaker never opened under 100% failures");
}

/// Half-open breakers on the virtual clock: with a cooldown configured,
/// a tripped breaker admits deterministic probe lookups once the task's
/// charged time passes the cooldown; a probe success closes the breaker
/// (resetting its counters) and real lookups resume until the ratio
/// trips it again. The whole trip → cooldown → probe → close cycle is
/// bit-identical across runs.
#[test]
fn breaker_cooldown_reprobes_and_recovers_deterministically() {
    let config = sweep_config();
    let faults_with = |cooldown: Option<SimDuration>| {
        let mut f = FaultConfig::disabled().with_plan(FaultPlan::new(11).failures(0.9));
        f.retry = RetryPolicy::none();
        f.breaker_threshold_x1000 = 200;
        f.breaker_min_samples = 4;
        f.breaker_cooldown = cooldown;
        f
    };
    let cooldown = Some(SimDuration::from_micros(200));
    let run = |faults: FaultConfig| {
        let mut s = multi::scenario(&config);
        s.efind_config.faults = faults;
        let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
        rt.run(&s.ijob, Mode::Uniform(Strategy::Cache))
            .unwrap()
            .jobs[0]
            .clone()
    };
    let trip_only = run(faults_with(None));
    let half_open = run(faults_with(cooldown));

    let sum = |stats: &JobStats, leaf: &str| -> i64 {
        (0..3)
            .map(|j| stats.counters.get(&format!("efind.enrich3.{j}.{leaf}")))
            .sum()
    };
    // Trip-only: breakers open early and stay open for the task's life.
    assert!(
        sum(&trip_only, "fault.degraded") > 0,
        "breakers never tripped at 90% failures"
    );
    // Probes convert short-circuited lookups back into real attempts, so
    // fewer lookups degrade and more failures are actually observed.
    assert!(
        sum(&half_open, "fault.degraded") < sum(&trip_only, "fault.degraded"),
        "cooldown probes never fired"
    );
    assert!(
        sum(&half_open, "fault.failures") > sum(&trip_only, "fault.failures"),
        "probes observed no real outcomes"
    );
    // Recovery is real: successful probes close breakers, so completed
    // lookups keep accruing after the first trip.
    assert!(
        sum(&half_open, "lookups") > sum(&trip_only, "lookups"),
        "no probe ever closed a breaker"
    );
    // And the whole cycle is deterministic per seed.
    let first = run_multi(&config, Strategy::Cache, faults_with(cooldown));
    let second = run_multi(&config, Strategy::Cache, faults_with(cooldown));
    assert_eq!(first, second, "half-open breaker cycle is nondeterministic");
}

/// Regenerates the EXPERIMENTS.md "Fig. 11(a) with failures" table: the
/// LOG geo-IP delay sweep with the fault layer armed at a 5% mixed rate.
/// Ignored by default (it is a table printer, not an assertion suite);
/// run with `cargo test --release --test fault_injection -- --ignored
/// fig11a --nocapture`.
#[test]
#[ignore = "table printer for EXPERIMENTS.md"]
fn fig11a_delay_sweep_with_failures() {
    use efind_workloads::harness::run_mode;
    use efind_workloads::log::{self, LogConfig};

    println!("| extra delay | base | cache | repart |");
    println!("|---|---|---|---|");
    for delay_ms in 0..=5u64 {
        let mut row = format!("| {delay_ms} ms |");
        for (label, mode) in [
            ("base", Mode::Uniform(Strategy::Baseline)),
            ("cache", Mode::Uniform(Strategy::Cache)),
            ("repart", Mode::Uniform(Strategy::Repartition)),
        ] {
            let mut s = log::scenario(&LogConfig {
                extra_delay: SimDuration::from_millis(delay_ms),
                ..LogConfig::default()
            });
            s.efind_config.faults = faults_at(0xEF1D_0001, 0.05);
            let m = run_mode(&mut s, label, mode).unwrap();
            row.push_str(&format!(" {:.2} s |", m.secs));
        }
        println!("{row}");
    }
}

/// The `FailJob` miss policy turns exhaustion into a job error instead
/// of silent degradation.
#[test]
fn fail_job_policy_aborts_on_exhaustion() {
    let config = sweep_config();
    let mut s = multi::scenario(&config);
    let mut faults = FaultConfig::disabled().with_plan(FaultPlan::new(3).failures(1.0));
    faults.retry = RetryPolicy::none();
    faults.miss_policy = efind::MissPolicy::FailJob;
    s.efind_config.faults = faults;
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
    let err = rt.run(&s.ijob, Mode::Uniform(Strategy::Cache)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("lookup"), "unexpected error: {msg}");
}
