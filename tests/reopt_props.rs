//! Property pins for the cross-job re-optimization store (ISSUE 8):
//!
//! 1. **Fingerprint stability** — the plan-neutral operator fingerprint
//!    depends only on the job's *shape* (operator names, arity, key
//!    kinds, accessor declarations, placement). Rebuilding the same job,
//!    or perturbing workload knobs that leave the shape alone (data
//!    volume, lookup latency, RNG seed), never moves the fingerprint —
//!    otherwise a store written yesterday could not match today's run.
//! 2. **Plan-fingerprint distinctness** — the four strategies of Table 1
//!    hash to four different plan fingerprints under the same shape, so
//!    store history can attribute observations to the plan that produced
//!    them.
//! 3. **Quiet-store transparency** (PR 7 discipline) — an *empty* or
//!    *absent* store compiles to exactly the pre-store plan: every
//!    virtual observable is bit-identical to a runtime that never heard
//!    of the store, in both uniform and adaptive modes.
//!
//! Each quiet-store case spins up a full simulated cluster, so the case
//! counts stay small; `tests/reopt_persistence.rs` covers the warm path
//! densely.

use efind_repro::cluster::SimDuration;
use efind_repro::common::fx_hash_bytes;
use efind_repro::core::{
    fingerprint_operator, fingerprint_plan, forced_plan, EFindRuntime, Mode, StatStore, Strategy,
};
use efind_repro::dfs::Dfs;
use efind_repro::mapreduce::JobStats;
use efind_repro::workloads::log;
use proptest::prelude::*;

type Observables = Vec<(String, u64)>;

fn counter_fingerprint(stats: &JobStats) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (k, v) in stats.counters.iter_sorted() {
        let _ = writeln!(text, "{k}={v}");
    }
    fx_hash_bytes(text.as_bytes())
}

fn file_fingerprint(dfs: &Dfs, name: &str) -> u64 {
    let mut buf = Vec::new();
    for rec in dfs.read_file(name).expect("output file missing") {
        buf.extend_from_slice(&rec.encode());
    }
    fx_hash_bytes(&buf)
}

/// A small LOG configuration; cheap enough for proptest cases.
fn tiny_config() -> log::LogConfig {
    log::LogConfig {
        num_events: 3_000,
        num_ips: 100,
        num_urls: 50,
        chunks: 24,
        ..log::LogConfig::default()
    }
}

/// The shape fingerprints of every operator of a job, in placement order.
fn shape_fingerprints(ijob: &efind_repro::core::IndexJobConf) -> Vec<u64> {
    ijob.operators()
        .map(|(bound, placement)| fingerprint_operator(bound, placement).0)
        .collect()
}

/// How the store is (not) attached in the quiet-transparency property.
#[derive(Clone, Copy, Debug)]
enum StoreSetup {
    /// Pre-store behavior: the runtime never hears of a store.
    None,
    /// An explicitly attached, empty in-memory store.
    Empty,
    /// A store loaded from a path that does not exist.
    AbsentFile,
}

fn run_observed(mode: Mode, setup: StoreSetup) -> Observables {
    let mut s = log::scenario(&tiny_config());
    let mut rt = EFindRuntime::new(&s.cluster, &mut s.dfs);
    match setup {
        StoreSetup::None => {}
        StoreSetup::Empty => rt.attach_store(StatStore::new(8)),
        StoreSetup::AbsentFile => {
            let missing = std::env::temp_dir()
                .join(format!("efind-reopt-absent-{}", std::process::id()))
                .join("never-written.store");
            rt.attach_store_file(&missing);
        }
    }
    let res = rt.run(&s.ijob, mode).unwrap();
    let mut captured: Observables = vec![
        ("total.nanos".into(), res.total_time.as_nanos()),
        ("jobs".into(), res.jobs.len() as u64),
        ("replanned".into(), res.replanned as u64),
    ];
    for (i, job) in res.jobs.iter().enumerate() {
        captured.push((format!("job{i}.makespan.nanos"), job.makespan().as_nanos()));
        captured.push((format!("job{i}.shuffle.bytes"), job.shuffle_bytes));
        captured.push((
            format!("job{i}.counters.fingerprint"),
            counter_fingerprint(job),
        ));
    }
    captured.push((
        "output.fingerprint".into(),
        file_fingerprint(rt.dfs, "log.topk"),
    ));
    captured
}

const STRATEGIES: [Strategy; 4] = [
    Strategy::Baseline,
    Strategy::Cache,
    Strategy::Repartition,
    Strategy::IndexLocality,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Rebuilding a job — and perturbing every shape-preserving workload
    /// knob — leaves the operator fingerprints untouched.
    #[test]
    fn fingerprints_are_invariant_under_reconstruction(
        num_events in 500usize..5_000,
        num_ips in 50usize..500,
        extra_ms in 0u64..6,
        seed in any::<u64>(),
    ) {
        let reference = shape_fingerprints(&log::scenario(&tiny_config()).ijob);
        let perturbed = log::LogConfig {
            num_events,
            num_ips,
            extra_delay: SimDuration::from_millis(extra_ms),
            seed,
            ..tiny_config()
        };
        let got = shape_fingerprints(&log::scenario(&perturbed).ijob);
        prop_assert_eq!(
            got, reference,
            "shape-preserving knobs must not move the fingerprint"
        );
        // And a literal re-construction of the *same* config matches too.
        let again = shape_fingerprints(&log::scenario(&tiny_config()).ijob);
        prop_assert_eq!(again, shape_fingerprints(&log::scenario(&tiny_config()).ijob));
    }
}

#[test]
fn plan_fingerprints_are_distinct_across_the_four_strategies() {
    let s = log::scenario(&tiny_config());
    for (bound, placement) in s.ijob.operators() {
        let shape = fingerprint_operator(bound, placement);
        // A fully capable accessor (shuffleable, partition scheme) keeps
        // all four strategies representable without degradation.
        let caps = vec![(true, true); bound.indices.len()];
        let mut fps: Vec<u64> = STRATEGIES
            .iter()
            .map(|&st| fingerprint_plan(shape, &forced_plan(&caps, st)))
            .collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), 4, "strategies must hash to distinct plan fps");
    }
}

#[test]
fn empty_or_absent_store_is_observably_absent() {
    // Uniform and adaptive modes, each under all three quiet setups: the
    // store may not perturb a single virtual observable until it has
    // measured history to offer.
    for mode in [
        Mode::Uniform(Strategy::Baseline),
        Mode::Uniform(Strategy::Cache),
        Mode::Dynamic,
    ] {
        let without = run_observed(mode.clone(), StoreSetup::None);
        for setup in [StoreSetup::Empty, StoreSetup::AbsentFile] {
            let with = run_observed(mode.clone(), setup);
            assert_eq!(
                with, without,
                "quiet store perturbed observables: mode={mode:?} setup={setup:?}"
            );
        }
    }
}
