//! Integration: the paper's qualitative results (§5) must hold on the
//! reproduction — who wins, and roughly where the crossovers fall. These
//! assertions encode the *shape* claims, not absolute numbers.

use efind_repro::cluster::SimDuration;
use efind_repro::core::{Mode, Strategy};
use efind_repro::workloads::harness::{run_mode, run_standard, secs_of};
use efind_repro::workloads::{log, osm, synthetic, tpch, zknnj};

fn log_config(extra_ms: u64) -> log::LogConfig {
    log::LogConfig {
        num_events: 12_000,
        chunks: 240,
        extra_delay: SimDuration::from_millis(extra_ms),
        ..log::LogConfig::default()
    }
}

#[test]
fn log_cache_and_repart_beat_baseline_and_grow_with_delay() {
    // Fig. 11(a): cache 1.2–4.7×, repart more, improvements grow with the
    // lookup delay.
    let speedup_at = |ms: u64| {
        let mut s = log::scenario(&log_config(ms));
        let rows = run_standard(&mut s).unwrap();
        (
            secs_of(&rows, "base") / secs_of(&rows, "cache"),
            secs_of(&rows, "base") / secs_of(&rows, "repart"),
        )
    };
    let (cache0, repart0) = speedup_at(0);
    let (cache5, repart5) = speedup_at(5);
    assert!(cache0 > 1.5, "cache speedup at 0ms: {cache0}");
    assert!(repart5 > 2.5, "repart speedup at 5ms: {repart5}");
    assert!(repart5 > repart0, "repart gains should grow with delay");
    assert!(repart5 > cache5, "repart should beat cache at high delay");
}

#[test]
fn q3_cache_wins_and_repartition_is_not_worth_it() {
    // Fig. 11(b): the cache exploits clustered l_orderkey; paying for a
    // shuffle job is slower than caching.
    let config = tpch::TpchConfig {
        scale: 0.0075,
        chunks: 240,
        ..tpch::TpchConfig::default()
    };
    let mut s = tpch::q3_scenario(&config);
    let rows = run_standard(&mut s).unwrap();
    let base = secs_of(&rows, "base");
    let cache = secs_of(&rows, "cache");
    let repart = secs_of(&rows, "repart");
    assert!(base / cache > 2.0, "Q3 cache speedup: {}", base / cache);
    assert!(repart > cache, "Q3: repartitioning must not beat the cache");
    // Optimized is the best or close to it (within 25%).
    let best = cache.min(repart).min(secs_of(&rows, "idxloc"));
    assert!(secs_of(&rows, "optimized") <= best * 1.25);
}

#[test]
fn q9_repartitioning_wins_where_cache_cannot() {
    // Fig. 11(c): no locality in l_suppkey — cache ≈ baseline, the shuffle
    // removes the global redundancy.
    let config = tpch::TpchConfig {
        scale: 0.0075,
        chunks: 240,
        ..tpch::TpchConfig::default()
    };
    let mut s = tpch::q9_scenario(&config);
    let rows = run_standard(&mut s).unwrap();
    let base = secs_of(&rows, "base");
    let cache = secs_of(&rows, "cache");
    let repart = secs_of(&rows, "repart");
    assert!(
        cache / base > 0.85 && cache / base < 1.15,
        "Q9 cache ≈ base, got {}",
        cache / base
    );
    assert!(base / repart > 1.25, "Q9 repart speedup: {}", base / repart);
}

#[test]
fn dup10_amplifies_repartitioning() {
    // Fig. 11(d)/(e): ×10 duplication means ×10 global redundancy.
    let one = tpch::TpchConfig {
        scale: 0.004,
        chunks: 120,
        ..tpch::TpchConfig::default()
    };
    let ten = tpch::TpchConfig {
        dup_lineitem: 10,
        ..one.clone()
    };
    let factor = |config: &tpch::TpchConfig| {
        let mut s = tpch::q9_scenario(config);
        let overrides = s.repart_overrides.clone();
        let base = run_mode(&mut s, "b", Mode::Uniform(Strategy::Baseline))
            .unwrap()
            .secs;
        let repart = run_mode(&mut s, "r", Mode::Manual(overrides)).unwrap().secs;
        base / repart
    };
    let f1 = factor(&one);
    let f10 = factor(&ten);
    assert!(f10 > 2.0 * f1, "DUP10 should amplify: {f1} -> {f10}");
    assert!(f10 > 4.0, "DUP10 repart factor: {f10}");
}

#[test]
fn synthetic_index_locality_crossover() {
    // Fig. 11(f): index locality loses for small results, wins for 30 KB.
    let run = |l: usize| {
        let config = synthetic::SyntheticConfig {
            num_records: 8_000,
            key_space: 4_000,
            index_value_size: l,
            chunks: 240,
            ..synthetic::SyntheticConfig::default()
        };
        let mut s = synthetic::scenario(&config);
        (
            run_mode(&mut s, "r", Mode::Uniform(Strategy::Repartition))
                .unwrap()
                .secs,
            run_mode(&mut s, "i", Mode::Uniform(Strategy::IndexLocality))
                .unwrap()
                .secs,
        )
    };
    let (repart_small, idxloc_small) = run(10);
    let (repart_big, idxloc_big) = run(30_000);
    assert!(
        idxloc_small >= repart_small * 0.95,
        "at 10 B locality should not win clearly: {idxloc_small} vs {repart_small}"
    );
    assert!(
        idxloc_big < repart_big,
        "at 30 KB locality must win: {idxloc_big} vs {repart_big}"
    );
}

#[test]
fn fig12_remote_local_gap_grows() {
    let rows = synthetic::fig12_rows();
    let gap_first = rows.first().map(|r| r.2 - r.1).unwrap();
    let gap_last = rows.last().map(|r| r.2 - r.1).unwrap();
    assert!(gap_last > gap_first * 2.0);
}

#[test]
fn efind_knnj_performs_like_hand_tuned() {
    // Fig. 13: the EFind expression of kNNJ is within a small factor of
    // the hand-tuned H-zkNNJ (the paper reports "similar performance").
    let config = osm::OsmConfig {
        num_a: 3_000,
        num_b: 3_000,
        chunks: 120,
        ..osm::OsmConfig::default()
    };
    let mut s = osm::scenario(&config);
    let efind_best = run_mode(&mut s, "i", Mode::Uniform(Strategy::IndexLocality))
        .unwrap()
        .secs;
    let (a, b) = osm::generate_ab(&config);
    let zconf = zknnj::ZknnjConfig {
        k: config.k,
        chunks: config.chunks,
        ..zknnj::ZknnjConfig::default()
    };
    let (dur, results) = zknnj::run(&s.cluster, &mut s.dfs, &zconf, &a, &b).unwrap();
    let hand = dur.as_secs_f64();
    assert_eq!(results.len(), config.num_a);
    let ratio = efind_best / hand;
    assert!(
        (0.3..=3.0).contains(&ratio),
        "EFind vs hand-tuned ratio out of 'similar' range: {ratio}"
    );
}
