//! Deterministic node-crash recovery suite.
//!
//! A [`ChaosPlan`] kills worker nodes at planned points of the *virtual*
//! clock, mid-job: completed map outputs on the dead node are recomputed
//! on survivors, reducers retry their shuffle fetches with backoff, the
//! DFS re-replicates under-replicated chunks in the background, and the
//! adaptive optimizer's mid-job re-plan reuses exactly the first-wave
//! results that survived. These tests pin the contract end to end:
//!
//! * Per `(seed, crash count, strategy)` cell, two complete runs produce
//!   bit-identical virtual observables (total time, per-job makespans,
//!   shuffle bytes, counter maps, output files).
//! * The zero-crash cell matches the `tests/hotpath_golden.rs` constants
//!   exactly — a quiet chaos plan is byte-for-byte the plain path.
//! * One or two crashes under replication ≥ 2 never change the job
//!   *output*, only its makespan and recovery counters.
//! * Losing the sole replica of an input chunk (replication = 1) is a
//!   diagnosable `DataLoss` error, not a hang.
//! * A crash that lands during an adaptive re-plan loses exactly the dead
//!   node's first-wave results; the ledger proves only survivors were
//!   reused and the re-mapped splits restore the full output.
//!
//! The seed matrix is pinned but overridable: set `EFIND_CRASH_SEEDS` to
//! a comma-separated list of integers (decimal or 0x-hex) to sweep other
//! seeds, as `scripts/ci.sh` does.

use efind::{EFindRuntime, Mode, Strategy};
use efind_cluster::{ChaosPlan, SimDuration, SimTime};
use efind_common::fx_hash_bytes;
use efind_dfs::Dfs;
use efind_mapreduce::JobStats;
use efind_workloads::multi::{self, MultiConfig};

/// Labeled virtual observables; whole vectors are compared at once so a
/// mismatch prints every value next to its expectation.
type Observables = Vec<(String, u64)>;

fn obs(label: impl Into<String>, value: u64) -> (String, u64) {
    (label.into(), value)
}

/// Stable fingerprint of a counter map: hash of the sorted
/// `name=value` lines (identical to `tests/hotpath_golden.rs`).
fn counter_fingerprint(stats: &JobStats) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (k, v) in stats.counters.iter_sorted() {
        let _ = writeln!(text, "{k}={v}");
    }
    fx_hash_bytes(text.as_bytes())
}

/// Stable fingerprint of a DFS file's full contents, in chunk order.
fn file_fingerprint(dfs: &Dfs, name: &str) -> u64 {
    let mut buf = Vec::new();
    for rec in dfs.read_file(name).expect("output file missing") {
        buf.extend_from_slice(&rec.encode());
    }
    fx_hash_bytes(&buf)
}

/// The pinned seed matrix, overridable via `EFIND_CRASH_SEEDS`.
fn crash_seeds() -> Vec<u64> {
    let parse = |text: &str| -> Vec<u64> {
        text.split(',')
            .filter_map(|tok| {
                let tok = tok.trim();
                tok.strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| tok.parse())
                    .ok()
            })
            .collect()
    };
    match std::env::var("EFIND_CRASH_SEEDS") {
        Ok(text) if !parse(&text).is_empty() => parse(&text),
        _ => vec![0xEF1D_0003, 0xDEAD_BEE5],
    }
}

/// Runs the multi-index workload under one strategy and chaos plan,
/// capturing every virtual observable.
fn run_multi_chaos(config: &MultiConfig, strategy: Strategy, chaos: ChaosPlan) -> Observables {
    let mut s = multi::scenario(config);
    s.efind_config.chaos = chaos;
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
    let res = rt.run(&s.ijob, Mode::Uniform(strategy)).unwrap();
    let mut captured: Observables = vec![
        obs("total.nanos", res.total_time.as_nanos()),
        obs("jobs", res.jobs.len() as u64),
    ];
    for (i, job) in res.jobs.iter().enumerate() {
        captured.push(obs(
            format!("job{i}.makespan.nanos"),
            job.makespan().as_nanos(),
        ));
        captured.push(obs(format!("job{i}.shuffle.bytes"), job.shuffle_bytes));
        captured.push(obs(
            format!("job{i}.counters.fingerprint"),
            counter_fingerprint(job),
        ));
        captured.push(obs(
            format!("job{i}.recovery.crashes"),
            job.recovery.crashes.len() as u64,
        ));
        captured.push(obs(
            format!("job{i}.recovery.recomputed"),
            job.recovery.recomputed_map_tasks.len() as u64,
        ));
    }
    captured.push(obs("output.records", res.output.total_records() as u64));
    captured.push(obs(
        "output.fingerprint",
        file_fingerprint(&s.dfs, "ads.enriched"),
    ));
    captured
}

/// The exact configuration `tests/hotpath_golden.rs` pins.
fn golden_config() -> MultiConfig {
    MultiConfig {
        num_events: 3_000,
        num_users: 200,
        num_ads: 500,
        num_sites: 100,
        site_value_bytes: 200,
        chunks: 30,
        ..MultiConfig::default()
    }
}

/// A smaller configuration for the crash sweep cells (recompute waves
/// multiply virtual work; the sweep covers many cells).
fn sweep_config() -> MultiConfig {
    MultiConfig {
        num_events: 1_200,
        num_users: 120,
        num_ads: 200,
        num_sites: 60,
        site_value_bytes: 128,
        chunks: 12,
        ..MultiConfig::default()
    }
}

const STRATEGIES: [Strategy; 4] = [
    Strategy::Baseline,
    Strategy::Cache,
    Strategy::Repartition,
    Strategy::IndexLocality,
];

/// A seeded chaos plan whose crash window sits inside `total_nanos` of
/// virtual job time: deaths start an eighth of the way in and spread over
/// the next half of the run.
fn chaos_in_window(seed: u64, num_nodes: u16, crashes: usize, total_nanos: u64) -> ChaosPlan {
    ChaosPlan::seeded(
        seed,
        num_nodes,
        crashes,
        SimTime::from_nanos(total_nanos / 8),
        SimDuration::from_nanos(total_nanos / 2),
    )
}

/// The headline sweep: per `(seed, crash count, strategy)` cell, two
/// complete runs agree on every virtual observable, recovery only ever
/// *adds* virtual time, and — with replication 3 — the job output stays
/// bit-identical to the crash-free run.
#[test]
fn crashed_runs_are_bit_identical_and_output_preserving() {
    let config = sweep_config();
    let crash_free: Vec<Observables> = STRATEGIES
        .iter()
        .map(|&s| run_multi_chaos(&config, s, ChaosPlan::none()))
        .collect();
    let num_nodes = multi::scenario(&config).cluster.num_nodes();
    let mut crashes_seen = 0u64;
    for seed in crash_seeds() {
        for crashes in [1usize, 2] {
            for (si, &strategy) in STRATEGIES.iter().enumerate() {
                let total = crash_free[si][0].1;
                let plan = chaos_in_window(seed, num_nodes, crashes, total);
                let first = run_multi_chaos(&config, strategy, plan.clone());
                let second = run_multi_chaos(&config, strategy, plan);
                assert_eq!(
                    first, second,
                    "nondeterminism: seed={seed:#x} crashes={crashes} strategy={strategy:?}"
                );
                let output = |o: &Observables| {
                    o.iter()
                        .filter(|(k, _)| k.starts_with("output."))
                        .cloned()
                        .collect::<Vec<_>>()
                };
                assert_eq!(
                    output(&first),
                    output(&crash_free[si]),
                    "output changed: seed={seed:#x} crashes={crashes} strategy={strategy:?}"
                );
                // Recovery can only cost virtual time, never win it.
                assert!(
                    first[0].1 >= crash_free[si][0].1,
                    "crashed run finished early: seed={seed:#x} crashes={crashes} \
                     strategy={strategy:?}"
                );
                crashes_seen += first
                    .iter()
                    .filter(|(k, _)| k.ends_with(".recovery.crashes"))
                    .map(|(_, v)| *v)
                    .sum::<u64>();
            }
        }
    }
    // The matrix must actually exercise the recovery machinery: planned
    // deaths land inside the job windows, not past them.
    assert!(
        crashes_seen > 0,
        "no chaos event registered in any sweep cell"
    );
}

/// The zero-crash cell matches the `hotpath_golden.rs` constants exactly:
/// a quiet plan — `none()` or seeded with zero crashes — does not move a
/// single bit of any observable.
#[test]
fn zero_crash_cells_match_hotpath_goldens() {
    let expected_by_mode: [(Strategy, Observables); 2] = [
        (
            Strategy::Cache,
            vec![
                obs("total.nanos", 117_260_797),
                obs("jobs", 1),
                obs("job0.makespan.nanos", 117_260_797),
                obs("job0.shuffle.bytes", 168_648),
                obs("job0.counters.fingerprint", 3_799_603_285_767_459_785),
                obs("output.records", 961),
                obs("output.fingerprint", 14_711_040_664_649_218_481),
            ],
        ),
        (
            Strategy::Repartition,
            vec![
                obs("total.nanos", 21_230_168),
                obs("jobs", 4),
                obs("job0.makespan.nanos", 7_494_530),
                obs("job0.shuffle.bytes", 330_000),
                obs("job0.counters.fingerprint", 506_267_820_866_738_143),
                obs("output.records", 961),
                obs("output.fingerprint", 14_711_040_664_649_218_481),
            ],
        ),
    ];
    let num_nodes = multi::scenario(&golden_config()).cluster.num_nodes();
    for (strategy, expected) in expected_by_mode {
        for (label, chaos) in [
            ("none", ChaosPlan::none()),
            // A *seeded but empty* plan: the chaos machinery is armed in
            // every schedule and every finish, yet nothing may change.
            (
                "zero-crash",
                ChaosPlan::seeded(
                    7,
                    num_nodes,
                    0,
                    SimTime::ZERO,
                    SimDuration::from_millis(100),
                ),
            ),
        ] {
            let captured = run_multi_chaos(&golden_config(), strategy, chaos);
            let kept: Observables = captured
                .into_iter()
                .filter(|(k, _)| expected.iter().any(|(e, _)| e == k))
                .collect();
            assert_eq!(kept, expected, "strategy {strategy:?}, chaos {label}");
        }
    }
}

/// Replication 1 + the sole replica of an input chunk dying with its node
/// = a diagnosable `DataLoss` error naming the file, not a hang and not a
/// silently truncated output.
#[test]
fn sole_replica_loss_is_a_diagnosable_error() {
    use efind_cluster::Cluster;
    use efind_common::{Error, Record};
    use efind_dfs::DfsConfig;
    use efind_mapreduce::{mapper_fn, reducer_fn, JobConf, Runner};

    let cluster = Cluster::builder()
        .nodes(4)
        .map_slots(2)
        .reduce_slots(2)
        .build();
    let mut dfs = Dfs::new(
        cluster.clone(),
        DfsConfig {
            chunk_size_bytes: 512,
            replication: 1,
            seed: 21,
        },
    );
    let records: Vec<Record> = (0..400i64).map(|i| Record::new(i, i % 7)).collect();
    dfs.write_file("events", records);

    // Kill the single host of chunk 0 before anything can run.
    let victim = dfs.stat("events").unwrap().chunks[0].hosts[0];
    let plan = ChaosPlan::new(13).kill(victim, SimTime::ZERO);

    let conf = JobConf::new("groupby", "events", "grouped")
        .add_mapper(mapper_fn(|rec, out, _| {
            out.collect(Record::new(rec.value.clone(), 1i64));
        }))
        .with_reducer(
            reducer_fn(|key, values, out, _| {
                out.collect(Record::new(key, values.len() as i64));
            }),
            3,
        );
    let err = Runner::with_chaos(&cluster, &mut dfs, plan)
        .run(&conf, SimTime::ZERO)
        .unwrap_err();
    match err {
        Error::DataLoss(msg) => {
            assert!(msg.contains("events"), "error must name the file: {msg}");
            assert!(
                msg.contains("replica"),
                "error must explain the loss: {msg}"
            );
        }
        other => panic!("expected DataLoss, got {other:?}"),
    }
}

/// Prints the EXPERIMENTS.md "adaptive re-plan under node crashes" table
/// (Figs. 8–10 with 0/1/2 deaths): run with
/// `cargo test --release --test node_crash -- --ignored --nocapture fig_adaptive`.
#[test]
#[ignore = "table generator, run with --ignored --nocapture"]
fn fig_adaptive_reuse_under_crashes_table() {
    use efind_workloads::log::{self, LogConfig};
    let config = LogConfig {
        num_events: 8_000,
        num_ips: 300,
        num_urls: 100,
        chunks: 240,
        extra_delay: SimDuration::from_millis(5),
        ..LogConfig::default()
    };
    let probe = {
        let mut s = log::scenario(&config);
        let mut rt = EFindRuntime::new(&s.cluster, &mut s.dfs);
        rt.run(&s.ijob, Mode::Dynamic)
            .unwrap()
            .total_time
            .as_nanos()
    };
    let num_nodes = log::scenario(&config).cluster.num_nodes();
    println!("| crashes | total (virtual) | re-planned | wave-1 reused | wave-1 re-mapped | recompute waves | fetch retries | chunks re-replicated |");
    println!("|---------|-----------------|------------|---------------|------------------|-----------------|---------------|----------------------|");
    for crashes in [0usize, 1, 2] {
        let mut s = log::scenario(&config);
        s.efind_config.chaos = chaos_in_window(0xEF1D_1234, num_nodes, crashes, probe);
        let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
        let res = rt.run(&s.ijob, Mode::Dynamic).unwrap();
        let sum = |f: fn(&JobStats) -> u64| res.jobs.iter().map(f).sum::<u64>();
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            crashes,
            res.total_time,
            if res.replanned { "yes" } else { "no" },
            sum(|j| j.recovery.surviving_tasks.len() as u64),
            sum(|j| j.recovery.lost_tasks.len() as u64),
            sum(|j| j.recovery.recompute_waves as u64),
            sum(|j| j.recovery.fetch_retries),
            sum(|j| j.recovery.rereplicated_chunks as u64),
        );
    }
}

/// Crash-surviving adaptive re-plan (Figs. 8–10 under node loss): with a
/// node death planned mid-job, `Mode::Dynamic` still re-plans, its ledger
/// partitions the first wave into surviving and lost tasks, only the
/// survivors are reused, and the re-mapped lost splits restore an output
/// identical to the crash-free run. Two runs at the same seed are
/// bit-identical.
#[test]
fn adaptive_replan_reuses_only_surviving_results() {
    use efind_workloads::log::{self, LogConfig};

    let config = LogConfig {
        num_events: 8_000,
        num_ips: 300,
        num_urls: 100,
        chunks: 240,
        extra_delay: SimDuration::from_millis(5),
        ..LogConfig::default()
    };

    // Crash-free dynamic run: the reference output and job window.
    let mut s0 = log::scenario(&config);
    let mut rt0 = EFindRuntime::new(&s0.cluster, &mut s0.dfs);
    let clean = rt0.run(&s0.ijob, Mode::Dynamic).unwrap();
    assert!(clean.replanned, "the 5 ms lookups must trigger a re-plan");
    let mut expected = rt0.dfs.read_file("log.topk").unwrap();
    expected.sort();
    let clean_ledgers: usize = clean.jobs.iter().filter(|j| !j.recovery.is_empty()).count();
    assert_eq!(clean_ledgers, 0, "crash-free run must keep empty ledgers");

    let num_nodes = s0.cluster.num_nodes();
    let total = clean.total_time.as_nanos();
    for crashes in [1usize, 2] {
        let run = || {
            let mut s = log::scenario(&config);
            s.efind_config.chaos = chaos_in_window(0xEF1D_1234, num_nodes, crashes, total);
            let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
            let res = rt.run(&s.ijob, Mode::Dynamic).unwrap();
            let mut got = rt.dfs.read_file("log.topk").unwrap();
            got.sort();
            let fp = file_fingerprint(&s.dfs, "log.topk");
            (res, got, fp)
        };
        let (res, got, fp) = run();
        assert!(res.replanned, "crashes must not suppress the re-plan");
        assert_eq!(got, expected, "{crashes} crash(es) changed the answer");

        // The ledger proves the reuse was exact: wave-1 splits are
        // partitioned into disjoint surviving and lost sets, the lost set
        // is non-empty (every node ran wave-1 tasks), and the reuse
        // counter equals the surviving count.
        let ledger = res
            .jobs
            .iter()
            .find(|j| !j.recovery.surviving_tasks.is_empty())
            .expect("no job carries the re-plan ledger");
        let rec = &ledger.recovery;
        assert!(
            !rec.lost_tasks.is_empty(),
            "a planned death must lose that node's wave-1 results"
        );
        assert!(
            rec.surviving_tasks
                .iter()
                .all(|t| !rec.lost_tasks.contains(t)),
            "surviving and lost sets overlap: {rec:?}"
        );
        assert_eq!(
            ledger.counters.get("mr.recovery.reused.tasks"),
            rec.surviving_tasks.len() as i64,
            "reuse counter disagrees with the ledger"
        );

        // Bit-identical double run at the pinned seed.
        let (res2, _, fp2) = run();
        assert_eq!(fp, fp2, "{crashes} crash(es): output fingerprint differs");
        assert_eq!(
            res.total_time, res2.total_time,
            "{crashes} crash(es): virtual time differs"
        );
    }
}
