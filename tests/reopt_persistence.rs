//! Cross-job re-optimization: the persistent statistics store (ISSUE 8).
//!
//! The paper's adaptive runtime (§4) pays a baseline statistics wave and a
//! mid-job replan on *every* execution of a workload, even when the same
//! job ran a minute ago. The `StatStore` removes that tax: a run records
//! observed per-operator statistics keyed by a plan-neutral fingerprint,
//! and the next run over the same shapes plans the measured winner at
//! *compile time* — zero mid-job replans, no baseline wave.
//!
//! These tests drive the LOG workload (Fig. 11(a), the 5 ms lookup point
//! whose winner is the shuffle/re-partitioning plan) through a shared
//! store file and pin the contract:
//!
//! 1. run 1 (cold store) replans mid-job, exactly as without a store;
//! 2. run 2 (warm store) starts on the winning shuffle plan, never
//!    replans, beats the cold run's makespan, and produces the same
//!    answer;
//! 3. run 2's virtual observables are bit-identical across double runs,
//!    and the store file written after run 2 is byte-identical too.

use std::fs;
use std::path::PathBuf;

use efind_repro::cluster::SimDuration;
use efind_repro::common::fx_hash_bytes;
use efind_repro::core::{EFindRuntime, LoadStatus, Mode};
use efind_repro::dfs::Dfs;
use efind_repro::mapreduce::JobStats;
use efind_repro::workloads::log;

/// Labeled virtual observables, compared as a whole vector so a mismatch
/// prints every captured value next to its expectation.
type Observables = Vec<(String, u64)>;

fn counter_fingerprint(stats: &JobStats) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (k, v) in stats.counters.iter_sorted() {
        let _ = writeln!(text, "{k}={v}");
    }
    fx_hash_bytes(text.as_bytes())
}

fn file_fingerprint(dfs: &Dfs, name: &str) -> u64 {
    let mut buf = Vec::new();
    for rec in dfs.read_file(name).expect("output file missing") {
        buf.extend_from_slice(&rec.encode());
    }
    fx_hash_bytes(&buf)
}

/// The Fig. 11(a) 5 ms-lookup configuration: expensive enough that the
/// adaptive runtime replans from baseline to the shuffle plan mid-job.
fn config() -> log::LogConfig {
    log::LogConfig {
        num_events: 8_000,
        num_ips: 300,
        num_urls: 100,
        chunks: 240,
        extra_delay: SimDuration::from_millis(5),
        ..log::LogConfig::default()
    }
}

/// A per-test scratch path under the target-adjacent temp dir; unique per
/// test name so parallel tests never collide.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("efind-reopt-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// E18 table generator (EXPERIMENTS.md): the repeated-workload sweep.
/// Regenerate with
/// `cargo test --release --test reopt_persistence -- --ignored e18 --nocapture`.
#[test]
#[ignore]
fn e18_table() {
    println!("| extra delay | run 1 (cold store) | run 2 (warm store) |");
    println!("|---|---|---|");
    for extra_ms in [0u64, 2, 5] {
        let cfg = log::LogConfig {
            extra_delay: SimDuration::from_millis(extra_ms),
            ..config()
        };
        let store_path = scratch(&format!("e18-{extra_ms}ms.store"));
        let _ = fs::remove_file(&store_path);

        let mut s1 = log::scenario(&cfg);
        let mut rt1 = EFindRuntime::new(&s1.cluster, &mut s1.dfs);
        rt1.attach_store_file(&store_path);
        let cold = rt1.run(&s1.ijob, Mode::Dynamic).unwrap();
        rt1.save_store(&store_path).unwrap();
        let cold_label = if cold.replanned {
            "base→repart"
        } else {
            "base"
        };

        let mut s2 = log::scenario(&cfg);
        let mut rt2 = EFindRuntime::new(&s2.cluster, &mut s2.dfs);
        rt2.attach_store_file(&store_path);
        let warm = rt2.run(&s2.ijob, Mode::Dynamic).unwrap();
        let plans = rt2.plans_for(&s2.ijob, &Mode::Optimized).unwrap();
        let warm_label = plans["geoip"].choices[0].strategy.label();

        println!(
            "| {} ms | {} ({} replan{}), {} | {} ({} replans), {} |",
            extra_ms,
            cold_label,
            cold.replanned as u32,
            if cold.replanned { "" } else { "s" },
            cold.total_time,
            warm_label,
            warm.replanned as u32,
            warm.total_time,
        );
        assert!(!warm.replanned, "warm run must plan up front");
    }
}

#[test]
fn warm_store_plans_the_winner_up_front_without_replanning() {
    let store_path = scratch("persistence.store");
    let _ = fs::remove_file(&store_path);

    // Run 1: cold store. The job behaves exactly like the storeless
    // adaptive runtime — baseline wave, then a mid-job replan to shuffle.
    let mut s1 = log::scenario(&config());
    let mut rt1 = EFindRuntime::new(&s1.cluster, &mut s1.dfs);
    assert_eq!(rt1.attach_store_file(&store_path), LoadStatus::Created);
    let cold = rt1.run(&s1.ijob, Mode::Dynamic).unwrap();
    assert!(cold.replanned, "cold 5 ms lookups must replan mid-job");
    rt1.save_store(&store_path).unwrap();
    let mut expected_answer = rt1.dfs.read_file("log.topk").unwrap();
    expected_answer.sort();

    // Run 2: warm store. The measured statistics match the operator
    // fingerprint, so the winning shuffle plan is compiled up front and
    // the adaptive machinery has nothing left to discover.
    let mut s2 = log::scenario(&config());
    let mut rt2 = EFindRuntime::new(&s2.cluster, &mut s2.dfs);
    assert_eq!(rt2.attach_store_file(&store_path), LoadStatus::Loaded);
    let warm = rt2.run(&s2.ijob, Mode::Dynamic).unwrap();
    assert!(!warm.replanned, "warm run must not replan mid-job");
    assert!(
        warm.jobs.len() > 1,
        "the warm plan is the shuffle pipeline (repartition job + main job), got {} job(s)",
        warm.jobs.len()
    );
    assert!(
        warm.total_time < cold.total_time,
        "warm {} must beat cold {} (no baseline wave, no replan)",
        warm.total_time,
        cold.total_time
    );

    // The compile-time plan the warm store produces is the shuffle winner.
    let plans = rt2.plans_for(&s2.ijob, &Mode::Optimized).unwrap();
    assert!(
        plans["geoip"].has_shuffle(),
        "measured stats must pick the shuffle strategy, got {:?}",
        plans["geoip"]
    );

    // Same answer, replanned or not.
    let mut got = rt2.dfs.read_file("log.topk").unwrap();
    got.sort();
    assert_eq!(got, expected_answer, "warm plan must not alter the answer");
}

#[test]
fn warm_run_observables_and_store_file_are_bit_identical() {
    let seed_path = scratch("identity-seed.store");
    let _ = fs::remove_file(&seed_path);

    // Seed the store with one cold run.
    let mut s = log::scenario(&config());
    let mut rt = EFindRuntime::new(&s.cluster, &mut s.dfs);
    rt.attach_store_file(&seed_path);
    rt.run(&s.ijob, Mode::Dynamic).unwrap();
    rt.save_store(&seed_path).unwrap();

    // Two warm passes from the same seed store: every virtual observable
    // and the re-saved store file must be byte-identical.
    let warm_pass = |out_name: &str| -> (Observables, Vec<u8>) {
        let out_path = scratch(out_name);
        let _ = fs::remove_file(&out_path);
        let mut s = log::scenario(&config());
        let mut rt = EFindRuntime::new(&s.cluster, &mut s.dfs);
        assert_eq!(rt.attach_store_file(&seed_path), LoadStatus::Loaded);
        let res = rt.run(&s.ijob, Mode::Dynamic).unwrap();
        assert!(!res.replanned);
        rt.save_store(&out_path).unwrap();
        let mut obs: Observables = vec![
            ("total.nanos".into(), res.total_time.as_nanos()),
            ("jobs".into(), res.jobs.len() as u64),
            ("replanned".into(), res.replanned as u64),
            (
                "output.fingerprint".into(),
                file_fingerprint(rt.dfs, "log.topk"),
            ),
        ];
        for (i, job) in res.jobs.iter().enumerate() {
            obs.push((
                format!("job{i}.counters.fingerprint"),
                counter_fingerprint(job),
            ));
            obs.push((format!("job{i}.shuffle.bytes"), job.shuffle_bytes));
        }
        let bytes = fs::read(&out_path).expect("saved store readable");
        (obs, bytes)
    };

    let (obs_a, store_a) = warm_pass("identity-a.store");
    let (obs_b, store_b) = warm_pass("identity-b.store");
    assert_eq!(obs_a, obs_b, "warm-run observables must be bit-identical");
    assert_eq!(
        store_a, store_b,
        "re-saved store files must be byte-identical"
    );
    assert!(!store_a.is_empty(), "store file must not be empty");
    assert!(
        store_a.starts_with(b"efind-statstore v1 crc="),
        "store header format"
    );
}
