//! Cross-crate integration: every index access strategy must produce the
//! same job output — strategies change *where and how often* lookups
//! happen, never *what* the job computes.

use efind_repro::common::Record;
use efind_repro::core::{Mode, Strategy};
use efind_repro::workloads::harness::{run_mode, Scenario};
use efind_repro::workloads::{log, osm, synthetic, topics};

fn output_of(mut scenario: Scenario, output: &str, mode: Mode) -> Vec<Record> {
    run_mode(&mut scenario, "test", mode).expect("run succeeds");
    let mut out = scenario.dfs.read_file(output).expect("output exists");
    out.sort();
    out
}

fn log_config() -> log::LogConfig {
    log::LogConfig {
        num_events: 4_000,
        num_ips: 200,
        num_urls: 80,
        chunks: 30,
        ..log::LogConfig::default()
    }
}

#[test]
fn log_all_strategies_agree() {
    let config = log_config();
    let reference = output_of(
        log::scenario(&config),
        "log.topk",
        Mode::Uniform(Strategy::Baseline),
    );
    assert!(!reference.is_empty());
    for strategy in [Strategy::Cache, Strategy::Repartition] {
        let got = output_of(log::scenario(&config), "log.topk", Mode::Uniform(strategy));
        assert_eq!(got, reference, "{strategy:?}");
    }
    let dynamic = output_of(log::scenario(&config), "log.topk", Mode::Dynamic);
    assert_eq!(dynamic, reference, "dynamic");
}

#[test]
fn topics_three_placements_agree() {
    // Head, body, AND tail operators in one job.
    let config = topics::TopicsConfig {
        num_tweets: 3_000,
        num_users: 200,
        num_cities: 12,
        days: 6,
        chunks: 20,
        ..topics::TopicsConfig::default()
    };
    let reference = output_of(
        topics::scenario(&config),
        "topics.out",
        Mode::Uniform(Strategy::Baseline),
    );
    assert!(!reference.is_empty());
    for strategy in [
        Strategy::Cache,
        Strategy::Repartition,
        Strategy::IndexLocality,
    ] {
        let got = output_of(
            topics::scenario(&config),
            "topics.out",
            Mode::Uniform(strategy),
        );
        assert_eq!(got, reference, "{strategy:?}");
    }
}

#[test]
fn synthetic_idxloc_agrees_with_baseline() {
    let config = synthetic::SyntheticConfig {
        num_records: 3_000,
        key_space: 1_500,
        record_pad: 64,
        index_value_size: 256,
        chunks: 24,
        ..synthetic::SyntheticConfig::default()
    };
    let reference = output_of(
        synthetic::scenario(&config),
        "syn.joined",
        Mode::Uniform(Strategy::Baseline),
    );
    let got = output_of(
        synthetic::scenario(&config),
        "syn.joined",
        Mode::Uniform(Strategy::IndexLocality),
    );
    assert_eq!(got, reference);
}

#[test]
fn osm_knnj_strategy_equivalence_and_exactness() {
    let config = osm::OsmConfig {
        num_a: 400,
        num_b: 600,
        clusters: 8,
        chunks: 12,
        ..osm::OsmConfig::default()
    };
    let reference = output_of(
        osm::scenario(&config),
        "osm.knnj",
        Mode::Uniform(Strategy::Baseline),
    );
    assert_eq!(reference.len(), config.num_a);
    let got = output_of(
        osm::scenario(&config),
        "osm.knnj",
        Mode::Uniform(Strategy::IndexLocality),
    );
    assert_eq!(got, reference);
}

#[test]
fn optimized_mode_is_output_stable() {
    // Whatever plan the optimizer picks, the answer must not change.
    let config = log_config();
    let mut scenario = log::scenario(&config);
    run_mode(&mut scenario, "seed", Mode::Uniform(Strategy::Baseline)).unwrap();
    let mut reference = scenario.dfs.read_file("log.topk").unwrap();
    reference.sort();
    run_mode(&mut scenario, "opt", Mode::Optimized).unwrap();
    let mut got = scenario.dfs.read_file("log.topk").unwrap();
    got.sort();
    assert_eq!(got, reference);
}
