//! Integration: the bitmap index as an EFind-accessed semijoin filter —
//! the "join using bitmap indices" motivation of the paper's §1.
//!
//! Orders stream through MapReduce; a head operator probes the bitmap
//! index on the customer table's `status` column to keep only orders
//! whose customer is active — a selective membership test instead of
//! fetching customer rows.

use std::sync::Arc;

use efind_repro::cluster::Cluster;
use efind_repro::common::{Datum, Record};
use efind_repro::core::{
    operator_fn, BoundOperator, EFindRuntime, IndexInput, IndexJobConf, IndexOutput, Mode, Strategy,
};
use efind_repro::dfs::{Dfs, DfsConfig};
use efind_repro::index::BitmapIndex;
use efind_repro::mapreduce::{mapper_fn, reducer_fn, Collector};

const CUSTOMERS: u64 = 500;
const ORDERS: i64 = 6_000;

fn setup() -> (Cluster, Dfs, IndexJobConf) {
    let cluster = Cluster::builder()
        .nodes(4)
        .map_slots(2)
        .reduce_slots(2)
        .build();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());

    // Orders: [custkey, amount]
    let orders: Vec<Record> = (0..ORDERS)
        .map(|o| {
            Record::new(
                o,
                Datum::List(vec![
                    Datum::Int((o * 31) % CUSTOMERS as i64),
                    Datum::Int(10 + o % 90),
                ]),
            )
        })
        .collect();
    dfs.write_file_with_chunks("orders", orders, 40);

    // Bitmap index on customer.status: every 4th customer is active.
    let index = Arc::new(BitmapIndex::build(
        "cust-status",
        &cluster,
        16,
        (0..CUSTOMERS).map(|c| {
            (
                c,
                Datum::Text(if c % 4 == 0 { "active" } else { "dormant" }.into()),
            )
        }),
    ));

    // Semijoin operator: probe [status="active", custkey] membership.
    let semijoin = operator_fn(
        "active-filter",
        1,
        |rec: &mut Record, keys: &mut IndexInput| {
            let custkey = rec
                .value
                .as_list()
                .and_then(|f| f.first())
                .cloned()
                .unwrap_or(Datum::Null);
            keys.put(0, Datum::List(vec![Datum::Text("active".into()), custkey]));
        },
        |rec: Record, values: &IndexOutput, out: &mut dyn Collector| {
            if values.first(0).first() == Some(&Datum::Bool(true)) {
                out.collect(rec);
            }
        },
    );

    let ijob = IndexJobConf::new("semijoin", "orders", "active-orders")
        .add_head_index_operator(BoundOperator::new(semijoin).add_index(index))
        .set_mapper(mapper_fn(|rec, out, _| {
            let f = rec.value.as_list().unwrap();
            out.collect(Record {
                key: f[0].clone(),
                value: f[1].clone(),
            });
        }))
        .set_reducer(
            reducer_fn(|key, values, out, _| {
                let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                out.collect(Record::new(key, total));
            }),
            8,
        );
    (cluster, dfs, ijob)
}

fn reference() -> std::collections::BTreeMap<i64, i64> {
    let mut expect = std::collections::BTreeMap::new();
    for o in 0..ORDERS {
        let cust = (o * 31) % CUSTOMERS as i64;
        if cust % 4 == 0 {
            *expect.entry(cust).or_insert(0) += 10 + o % 90;
        }
    }
    expect
}

#[test]
fn bitmap_semijoin_filters_correctly() {
    let (cluster, mut dfs, ijob) = setup();
    let mut rt = EFindRuntime::new(&cluster, &mut dfs);
    rt.run(&ijob, Mode::Uniform(Strategy::Baseline)).unwrap();
    let out = rt.dfs.read_file("active-orders").unwrap();
    let expect = reference();
    assert_eq!(out.len(), expect.len());
    for r in &out {
        let cust = r.key.as_int().unwrap();
        assert_eq!(cust % 4, 0, "dormant customer slipped through");
        assert_eq!(r.value.as_int().unwrap(), expect[&cust]);
    }
}

#[test]
fn bitmap_probes_work_under_every_strategy() {
    let mut reference_out: Option<Vec<Record>> = None;
    for strategy in [
        Strategy::Baseline,
        Strategy::Cache,
        Strategy::Repartition,
        Strategy::IndexLocality,
    ] {
        let (cluster, mut dfs, ijob) = setup();
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        rt.run(&ijob, Mode::Uniform(strategy)).unwrap();
        let mut out = rt.dfs.read_file("active-orders").unwrap();
        out.sort();
        match &reference_out {
            None => reference_out = Some(out),
            Some(r) => assert_eq!(&out, r, "{strategy:?}"),
        }
    }
}

#[test]
fn probe_redundancy_makes_the_cache_and_optimizer_effective() {
    // Probe keys repeat (custkeys recycle every 2000 orders), so the
    // optimizer should find a plan at least as good as baseline.
    let (cluster, mut dfs, ijob) = setup();
    let mut rt = EFindRuntime::new(&cluster, &mut dfs);
    let base = rt
        .run(&ijob, Mode::Uniform(Strategy::Baseline))
        .unwrap()
        .total_time;
    let opt = rt.run(&ijob, Mode::Optimized).unwrap().total_time;
    assert!(opt <= base, "optimized {opt} vs baseline {base}");
}
