//! Store-file robustness (ISSUE 8): a damaged or future-versioned store
//! must *never* take the job down — the runtime falls back to catalog
//! estimates, arms a named counter, and otherwise behaves byte-for-byte
//! like a runtime that never had measured history.
//!
//! Covered here:
//! * truncation and single-bit flips → `LoadStatus::Corrupt`, the
//!   `efind.statstore.corrupt` counter, plans identical to the cold path;
//! * a schema-version bump (`v1` → `v2`) → `LoadStatus::VersionMismatch`,
//!   the `efind.statstore.version.mismatch` counter, same clean fallback.

use std::fs;
use std::path::{Path, PathBuf};

use efind_repro::cluster::SimDuration;
use efind_repro::common::fx_hash_bytes;
use efind_repro::core::{EFindRuntime, LoadStatus, Mode};
use efind_repro::dfs::Dfs;
use efind_repro::workloads::log;

fn file_fingerprint(dfs: &Dfs, name: &str) -> u64 {
    let mut buf = Vec::new();
    for rec in dfs.read_file(name).expect("output file missing") {
        buf.extend_from_slice(&rec.encode());
    }
    fx_hash_bytes(&buf)
}

fn config() -> log::LogConfig {
    log::LogConfig {
        num_events: 8_000,
        num_ips: 300,
        num_urls: 100,
        chunks: 240,
        extra_delay: SimDuration::from_millis(5),
        ..log::LogConfig::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("efind-reopt-rob-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// Writes a valid warm store for the LOG workload to `path` and returns
/// its bytes.
fn seed_store(path: &Path) -> Vec<u8> {
    let _ = fs::remove_file(path);
    let mut s = log::scenario(&config());
    let mut rt = EFindRuntime::new(&s.cluster, &mut s.dfs);
    rt.attach_store_file(path);
    rt.run(&s.ijob, Mode::Dynamic).unwrap();
    rt.save_store(path).unwrap();
    fs::read(path).expect("seed store written")
}

/// Runs the workload with the store at `path` attached, returning the
/// load status, the result, and the output fingerprint.
fn run_with_store(path: &Path) -> (LoadStatus, efind_repro::core::EFindJobResult, u64) {
    let mut s = log::scenario(&config());
    let mut rt = EFindRuntime::new(&s.cluster, &mut s.dfs);
    let status = rt.attach_store_file(path);
    let res = rt.run(&s.ijob, Mode::Dynamic).unwrap();
    let out_fp = file_fingerprint(rt.dfs, "log.topk");
    (status, res, out_fp)
}

#[test]
fn corrupt_store_falls_back_to_estimates_with_a_named_counter() {
    let good_path = scratch("good.store");
    let bytes = seed_store(&good_path);

    // Reference: the cold (storeless) adaptive run.
    let mut s = log::scenario(&config());
    let mut rt = EFindRuntime::new(&s.cluster, &mut s.dfs);
    let cold = rt.run(&s.ijob, Mode::Dynamic).unwrap();
    let cold_out = file_fingerprint(rt.dfs, "log.topk");

    // Damage variants: hard truncation, mid-file truncation, and a
    // single bit flipped in the body.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    let variants: Vec<(&str, Vec<u8>)> = vec![
        ("truncated-head", bytes[..16.min(bytes.len())].to_vec()),
        ("truncated-half", bytes[..bytes.len() / 2].to_vec()),
        ("bit-flipped", flipped),
        ("garbage", b"not a store at all\n".to_vec()),
    ];

    for (label, damaged) in variants {
        let path = scratch(&format!("{label}.store"));
        fs::write(&path, &damaged).unwrap();
        let (status, res, out_fp) = run_with_store(&path);
        assert_eq!(status, LoadStatus::Corrupt, "{label}: load status");
        // The fallback is the cold adaptive path, bit for bit…
        assert_eq!(
            res.total_time, cold.total_time,
            "{label}: corrupt store must not change the plan"
        );
        assert_eq!(res.replanned, cold.replanned, "{label}: replan decision");
        assert_eq!(res.jobs.len(), cold.jobs.len(), "{label}: pipeline shape");
        assert_eq!(out_fp, cold_out, "{label}: output");
        // …except for the one named counter that says what happened.
        assert_eq!(
            res.jobs[0].counters.get("efind.statstore.corrupt"),
            1,
            "{label}: corruption counter"
        );
        assert_eq!(
            res.jobs[0].counters.get("efind.statstore.version.mismatch"),
            0,
            "{label}: no version counter"
        );
    }
}

#[test]
fn version_bump_is_rejected_cleanly() {
    let good_path = scratch("versioned.store");
    let bytes = seed_store(&good_path);

    // Bump the schema version in the header: "efind-statstore v1 …" →
    // "… v2 …". The store must be rejected as a version mismatch (not
    // corruption — the CRC is fine for the bytes that follow).
    let text = String::from_utf8(bytes).expect("store is ASCII");
    assert!(text.starts_with("efind-statstore v1 "), "header format");
    let bumped = text.replacen("efind-statstore v1 ", "efind-statstore v2 ", 1);
    let path = scratch("bumped.store");
    fs::write(&path, bumped).unwrap();

    let (status, res, _) = run_with_store(&path);
    assert_eq!(status, LoadStatus::VersionMismatch);
    assert_eq!(
        res.jobs[0].counters.get("efind.statstore.version.mismatch"),
        1
    );
    assert_eq!(res.jobs[0].counters.get("efind.statstore.corrupt"), 0);
    // The run itself proceeded on estimates: same cold behavior.
    assert!(res.replanned, "fallback runs the cold adaptive path");
}
