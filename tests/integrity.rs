//! Deterministic end-to-end data-integrity suite.
//!
//! A [`CorruptionPlan`] flips bytes in DFS chunk replicas, shuffle
//! payloads, lookup-cache entries, and index responses as a pure function
//! of its seed; CRC-32 verification at every read boundary detects each
//! flip and takes the repair path (alternate replica, refetch,
//! invalidation, re-transfer). These tests pin the contract end to end:
//!
//! * Per `(seed, rate, strategy)` cell, two complete runs agree on every
//!   virtual observable — or fail with the *same* fail-fast error. A
//!   corrupted run is never a wrong answer and never a hang.
//! * The zero-corruption cell matches the `tests/hotpath_golden.rs`
//!   constants exactly — a quiet plan is byte-for-byte the plain path.
//! * Chunk corruption under replication 3 changes neither the output nor
//!   any non-ledger counter, only virtual time (wasted fetches, repair).
//! * When every replica of a chunk is corrupt the job fails fast with
//!   [`Error::DataCorruption`] naming the file, chunk, and replica set.
//! * Corruption composes with node crashes and index faults: one job
//!   carrying all three plans still produces the clean answer,
//!   bit-identically across reruns.
//!
//! The seed matrix is pinned but overridable: set `EFIND_CORRUPT_SEEDS`
//! to a comma-separated list of integers (decimal or 0x-hex) to sweep
//! other seeds, as `scripts/ci.sh` does.

use efind::{EFindRuntime, FaultConfig, FaultPlan, Mode, RetryPolicy, Strategy};
use efind_cluster::{ChaosPlan, CorruptionPlan, SimDuration, SimTime};
use efind_common::{fx_hash_bytes, Error};
use efind_dfs::Dfs;
use efind_mapreduce::JobStats;
use efind_workloads::multi::{self, MultiConfig};

/// Labeled virtual observables; whole vectors are compared at once so a
/// mismatch prints every value next to its expectation.
type Observables = Vec<(String, u64)>;

fn obs(label: impl Into<String>, value: u64) -> (String, u64) {
    (label.into(), value)
}

/// Stable fingerprint of a counter map: hash of the sorted
/// `name=value` lines (identical to `tests/hotpath_golden.rs`).
fn counter_fingerprint(stats: &JobStats) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (k, v) in stats.counters.iter_sorted() {
        let _ = writeln!(text, "{k}={v}");
    }
    fx_hash_bytes(text.as_bytes())
}

/// Counter fingerprint with every integrity counter stripped — the
/// job-level `mr.integrity.*` ledger mirror and the per-operator
/// `efind.<op>.<j>.integrity.*` detection counters. Everything else must
/// be bit-identical between a clean run and a repaired one.
fn invariant_counter_fingerprint(stats: &JobStats) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (k, v) in stats.counters.iter_sorted() {
        if k.starts_with("mr.integrity.") || k.contains(".integrity.") {
            continue;
        }
        let _ = writeln!(text, "{k}={v}");
    }
    fx_hash_bytes(text.as_bytes())
}

/// Stable fingerprint of a DFS file's full contents, in chunk order.
fn file_fingerprint(dfs: &Dfs, name: &str) -> u64 {
    let mut buf = Vec::new();
    for rec in dfs.read_file(name).expect("output file missing") {
        buf.extend_from_slice(&rec.encode());
    }
    fx_hash_bytes(&buf)
}

/// The pinned seed matrix, overridable via `EFIND_CORRUPT_SEEDS`.
fn corrupt_seeds() -> Vec<u64> {
    let parse = |text: &str| -> Vec<u64> {
        text.split(',')
            .filter_map(|tok| {
                let tok = tok.trim();
                tok.strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| tok.parse())
                    .ok()
            })
            .collect()
    };
    match std::env::var("EFIND_CORRUPT_SEEDS") {
        Ok(text) if !parse(&text).is_empty() => parse(&text),
        _ => vec![0xEF1D_0004, 0xC0FF_EE01],
    }
}

/// Runs the multi-index workload under one strategy and corruption plan.
/// `Ok` carries every virtual observable; `Err` carries the fail-fast
/// error text (the legitimate outcome when a plan kills every replica of
/// some chunk — by contract the only alternative to the clean answer).
fn run_multi_corrupt(
    config: &MultiConfig,
    strategy: Strategy,
    plan: CorruptionPlan,
) -> Result<Observables, String> {
    let mut s = multi::scenario(config);
    s.efind_config.corruption = plan;
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
    let res = match rt.run(&s.ijob, Mode::Uniform(strategy)) {
        Ok(res) => res,
        Err(err) => return Err(err.to_string()),
    };
    let mut captured: Observables = vec![
        obs("total.nanos", res.total_time.as_nanos()),
        obs("jobs", res.jobs.len() as u64),
    ];
    for (i, job) in res.jobs.iter().enumerate() {
        captured.push(obs(
            format!("job{i}.makespan.nanos"),
            job.makespan().as_nanos(),
        ));
        captured.push(obs(format!("job{i}.shuffle.bytes"), job.shuffle_bytes));
        captured.push(obs(
            format!("job{i}.counters.fingerprint"),
            counter_fingerprint(job),
        ));
        captured.push(obs(
            format!("job{i}.counters.invariant.fingerprint"),
            invariant_counter_fingerprint(job),
        ));
        let integ = &job.integrity;
        captured.push(obs(
            format!("job{i}.integrity.corrupt.chunks"),
            integ.corrupt_chunks.len() as u64,
        ));
        captured.push(obs(
            format!("job{i}.integrity.rereads"),
            integ.chunk_rereads,
        ));
        captured.push(obs(
            format!("job{i}.integrity.shuffle.refetches"),
            integ.shuffle_refetches,
        ));
        captured.push(obs(
            format!("job{i}.integrity.cache.invalidations"),
            integ.cache_invalidations,
        ));
        captured.push(obs(
            format!("job{i}.integrity.lookup.refetches"),
            integ.lookup_refetches,
        ));
        captured.push(obs(
            format!("job{i}.integrity.repaired.chunks"),
            integ.repaired_chunks as u64,
        ));
    }
    captured.push(obs("output.records", res.output.total_records() as u64));
    captured.push(obs(
        "output.fingerprint",
        file_fingerprint(&s.dfs, "ads.enriched"),
    ));
    Ok(captured)
}

/// The exact configuration `tests/hotpath_golden.rs` pins.
fn golden_config() -> MultiConfig {
    MultiConfig {
        num_events: 3_000,
        num_users: 200,
        num_ads: 500,
        num_sites: 100,
        site_value_bytes: 200,
        chunks: 30,
        ..MultiConfig::default()
    }
}

/// A smaller configuration for the corruption sweep cells (repairs
/// multiply virtual work; the sweep covers many cells).
fn sweep_config() -> MultiConfig {
    MultiConfig {
        num_events: 1_200,
        num_users: 120,
        num_ads: 200,
        num_sites: 60,
        site_value_bytes: 128,
        chunks: 12,
        ..MultiConfig::default()
    }
}

const STRATEGIES: [Strategy; 4] = [
    Strategy::Baseline,
    Strategy::Cache,
    Strategy::Repartition,
    Strategy::IndexLocality,
];

/// The projection of an observable vector onto the job output.
fn output_of(o: &Observables) -> Observables {
    o.iter()
        .filter(|(k, _)| k.starts_with("output."))
        .cloned()
        .collect()
}

/// The headline sweep: per `(seed, rate, strategy)` cell, two complete
/// runs agree on every virtual observable — or fail identically with the
/// fail-fast corruption error. Every successful cell produces the exact
/// clean output and never finishes earlier than the clean run (repair
/// only ever costs virtual time).
#[test]
fn corrupted_runs_are_bit_identical_and_output_preserving() {
    let config = sweep_config();
    let clean: Vec<Observables> = STRATEGIES
        .iter()
        .map(|&s| {
            run_multi_corrupt(&config, s, CorruptionPlan::none()).expect("clean run must succeed")
        })
        .collect();
    let mut events_seen = 0u64;
    for seed in corrupt_seeds() {
        for rate in [0.05f64, 0.15] {
            // Every surface armed at once; the chunk rate is halved so a
            // cell losing all three replicas of a chunk stays rare (and a
            // cell that does lose them is asserted to fail fast, not to
            // hang or answer wrong).
            let plan = CorruptionPlan::new(seed)
                .chunks(rate * 0.5)
                .shuffle(rate)
                .cache(rate)
                .responses(rate);
            for (si, &strategy) in STRATEGIES.iter().enumerate() {
                let first = run_multi_corrupt(&config, strategy, plan.clone());
                let second = run_multi_corrupt(&config, strategy, plan.clone());
                assert_eq!(
                    first, second,
                    "nondeterminism: seed={seed:#x} rate={rate} strategy={strategy:?}"
                );
                match first {
                    Ok(observed) => {
                        assert_eq!(
                            output_of(&observed),
                            output_of(&clean[si]),
                            "output changed: seed={seed:#x} rate={rate} strategy={strategy:?}"
                        );
                        // Detection and repair can only cost virtual
                        // time, never win it.
                        assert!(
                            observed[0].1 >= clean[si][0].1,
                            "corrupted run finished early: seed={seed:#x} rate={rate} \
                             strategy={strategy:?}"
                        );
                        events_seen += observed
                            .iter()
                            .filter(|(k, _)| k.contains(".integrity."))
                            .map(|(_, v)| *v)
                            .sum::<u64>();
                    }
                    Err(msg) => {
                        assert!(
                            msg.contains("chunk") && msg.contains("checksum"),
                            "unexpected failure: seed={seed:#x} rate={rate} \
                             strategy={strategy:?}: {msg}"
                        );
                    }
                }
            }
        }
    }
    // The matrix must actually exercise the integrity machinery: planned
    // corruption lands inside the jobs, not past them.
    assert!(
        events_seen > 0,
        "no corruption event registered in any sweep cell"
    );
}

/// The zero-corruption cell matches the `hotpath_golden.rs` constants
/// exactly: a quiet plan — `none()` or seeded with zero rates — does not
/// move a single bit of any observable, even with verification armed.
#[test]
fn zero_corruption_cells_match_hotpath_goldens() {
    let expected_by_mode: [(Strategy, Observables); 2] = [
        (
            Strategy::Cache,
            vec![
                obs("total.nanos", 117_260_797),
                obs("jobs", 1),
                obs("job0.makespan.nanos", 117_260_797),
                obs("job0.shuffle.bytes", 168_648),
                obs("job0.counters.fingerprint", 3_799_603_285_767_459_785),
                obs("output.records", 961),
                obs("output.fingerprint", 14_711_040_664_649_218_481),
            ],
        ),
        (
            Strategy::Repartition,
            vec![
                obs("total.nanos", 21_230_168),
                obs("jobs", 4),
                obs("job0.makespan.nanos", 7_494_530),
                obs("job0.shuffle.bytes", 330_000),
                obs("job0.counters.fingerprint", 506_267_820_866_738_143),
                obs("output.records", 961),
                obs("output.fingerprint", 14_711_040_664_649_218_481),
            ],
        ),
    ];
    for (strategy, expected) in expected_by_mode {
        for (label, plan) in [
            ("none", CorruptionPlan::none()),
            // A *seeded but quiet* plan: checksum machinery consulted at
            // every boundary, yet nothing may change.
            ("zero-rate", CorruptionPlan::new(7)),
        ] {
            let captured = run_multi_corrupt(&golden_config(), strategy, plan)
                .expect("quiet plan must never fail");
            let kept: Observables = captured
                .into_iter()
                .filter(|(k, _)| expected.iter().any(|(e, _)| e == k))
                .collect();
            assert_eq!(kept, expected, "strategy {strategy:?}, plan {label}");
        }
    }
}

/// Chunk corruption under replication 3 is fully transparent to the job:
/// the output and every non-integrity counter are bit-identical to the
/// clean run under all four strategies — only virtual time and the
/// `mr.integrity.*` ledger move.
#[test]
fn chunk_corruption_at_replication_3_preserves_output_and_counters() {
    let config = sweep_config();
    let clean: Vec<Observables> = STRATEGIES
        .iter()
        .map(|&s| {
            run_multi_corrupt(&config, s, CorruptionPlan::none()).expect("clean run must succeed")
        })
        .collect();
    // Candidate chunk-only plans pre-screened against the *input* file:
    // at least one replica corrupt, never a whole chunk. Intermediate
    // files (Repartition stages) draw independently, so a candidate that
    // happens to kill an intermediate chunk fails fast with the
    // corruption error and the deterministic scan moves to the next seed
    // — the recoverable regime replication exists for.
    let s0 = multi::scenario(&config);
    let meta = s0.dfs.stat("ads.events").unwrap();
    let candidates = (0..5_000u64)
        .map(|seed| CorruptionPlan::new(seed).chunks(0.2))
        .filter(|plan| {
            let mut any = false;
            for c in &meta.chunks {
                let bad = c
                    .hosts
                    .iter()
                    .filter(|h| plan.chunk_replica_corrupt("ads.events", c.index, **h))
                    .count();
                if bad == c.hosts.len() {
                    return false;
                }
                any |= bad > 0;
            }
            any
        })
        .take(20);
    'candidate: for plan in candidates {
        let mut cells: Vec<(Strategy, Observables)> = Vec::new();
        for &strategy in &STRATEGIES {
            match run_multi_corrupt(&config, strategy, plan.clone()) {
                Ok(hit) => cells.push((strategy, hit)),
                // An intermediate chunk lost all its replicas under this
                // seed: a correct fail-fast, but not the recoverable
                // regime this test pins. Next candidate.
                Err(_) => continue 'candidate,
            }
        }
        let mut rereads_seen = 0u64;
        for ((strategy, hit), clean) in cells.into_iter().zip(&clean) {
            assert_eq!(
                output_of(&hit),
                output_of(clean),
                "output changed under {strategy:?}"
            );
            let invariant = |o: &Observables| {
                o.iter()
                    .filter(|(k, _)| k.ends_with(".counters.invariant.fingerprint"))
                    .cloned()
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                invariant(&hit),
                invariant(clean),
                "a non-integrity counter moved under {strategy:?}"
            );
            assert!(
                hit[0].1 >= clean[0].1,
                "repair made the run faster under {strategy:?}"
            );
            rereads_seen += hit
                .iter()
                .filter(|(k, _)| k.ends_with(".integrity.rereads"))
                .map(|(_, v)| *v)
                .sum::<u64>();
        }
        assert!(
            rereads_seen > 0,
            "the plan corrupted nothing any strategy read"
        );
        return;
    }
    panic!("no candidate seed was recoverable under every strategy");
}

/// Corrupting every replica of the input is a diagnosable
/// `DataCorruption` error naming the file, the chunk, and the replica
/// set — not a hang, not a retry loop, not a wrong answer.
#[test]
fn total_corruption_fails_fast_naming_file_and_chunk() {
    let config = sweep_config();
    let mut s = multi::scenario(&config);
    s.efind_config.corruption = CorruptionPlan::new(1).chunks(1.0);
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
    let err = rt
        .run(&s.ijob, Mode::Uniform(Strategy::Baseline))
        .unwrap_err();
    match err {
        Error::DataCorruption(msg) => {
            assert!(
                msg.contains("ads.events"),
                "error must name the file: {msg}"
            );
            assert!(msg.contains("chunk"), "error must name the chunk: {msg}");
            assert!(
                msg.contains("replica"),
                "error must describe the replica set: {msg}"
            );
        }
        other => panic!("expected DataCorruption, got {other:?}"),
    }
}

/// Prints the EXPERIMENTS.md E16 "replica repair cost" table: the
/// lookup-heavy synthetic join (the hotpath bench workload) with chunk
/// corruption dialed so the worst chunk loses 0, 1, or 2 of its 3
/// replicas. Run with
/// `cargo test --release --test integrity -- --ignored --nocapture fig_integrity`.
#[test]
#[ignore = "table generator, run with --ignored --nocapture"]
fn fig_integrity_repair_table() {
    use efind_workloads::synthetic::{self, SyntheticConfig};
    let config = SyntheticConfig {
        num_records: 24_000,
        key_space: 2_400,
        record_pad: 16,
        index_value_size: 64,
        chunks: 48,
        ..SyntheticConfig::default()
    };
    // A plan whose worst input chunk has exactly `k` corrupt replicas
    // (and at least one chunk reaches `k`), found by scanning seeds.
    let plan_for = |k: usize| -> CorruptionPlan {
        if k == 0 {
            return CorruptionPlan::none();
        }
        let s = synthetic::scenario(&config);
        let meta = s.dfs.stat("syn.input").unwrap();
        let rate = 0.15 * k as f64;
        (0..10_000u64)
            .map(|seed| CorruptionPlan::new(seed).chunks(rate))
            .find(|plan| {
                let counts: Vec<usize> = meta
                    .chunks
                    .iter()
                    .map(|c| {
                        c.hosts
                            .iter()
                            .filter(|h| plan.chunk_replica_corrupt("syn.input", c.index, **h))
                            .count()
                    })
                    .collect();
                counts.iter().max() == Some(&k)
            })
            .expect("no seed reaches the target replica loss")
    };
    println!("| worst-chunk replicas corrupt | total (virtual) | corrupt chunks | wasted rereads | reread time | replicas quarantined | chunks repaired | repair time |");
    println!("|---|---|---|---|---|---|---|---|");
    for k in [0usize, 1, 2] {
        let mut s = synthetic::scenario(&config);
        s.efind_config.corruption = plan_for(k);
        let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
        let res = rt.run(&s.ijob, Mode::Uniform(Strategy::Cache)).unwrap();
        let sum = |f: fn(&JobStats) -> u64| res.jobs.iter().map(f).sum::<u64>();
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            k,
            res.total_time,
            sum(|j| j.integrity.corrupt_chunks.len() as u64),
            sum(|j| j.integrity.chunk_rereads),
            res.jobs
                .iter()
                .map(|j| j.integrity.reread_time)
                .fold(SimDuration::ZERO, |a, b| a + b),
            sum(|j| j.integrity.quarantined_replicas as u64),
            sum(|j| j.integrity.repaired_chunks as u64),
            res.jobs
                .iter()
                .map(|j| j.integrity.repair_time)
                .fold(SimDuration::ZERO, |a, b| a + b),
        );
    }
}

/// The combined-chaos cell: one job carrying a corruption plan, a node
/// crash, and transient index faults at once. The answer still matches
/// the clean run bit for bit, two runs at the same seeds are identical,
/// and both the recovery and integrity machinery register work.
#[test]
fn combined_corruption_crash_and_faults_preserve_the_answer() {
    let config = sweep_config();
    let clean = run_multi_corrupt(&config, Strategy::Cache, CorruptionPlan::none())
        .expect("clean run must succeed");
    let total = clean[0].1;
    let num_nodes = multi::scenario(&config).cluster.num_nodes();
    let run = || {
        let mut s = multi::scenario(&config);
        s.efind_config.corruption = CorruptionPlan::new(0xC0DE)
            .chunks(0.05)
            .shuffle(0.3)
            .cache(0.2)
            .responses(0.1);
        s.efind_config.chaos = ChaosPlan::seeded(
            0xEF1D_0004,
            num_nodes,
            1,
            SimTime::from_nanos(total / 8),
            SimDuration::from_nanos(total / 2),
        );
        let mut faults = FaultConfig::disabled().with_plan(
            FaultPlan::new(0xFA17)
                .failures(0.06)
                .timeouts(0.02)
                .slowdowns(0.02, 4.0),
        );
        faults.retry = RetryPolicy::bounded(
            16,
            SimDuration::from_micros(50),
            SimDuration::from_millis(5),
        );
        faults.timeout = Some(SimDuration::from_millis(50));
        s.efind_config.faults = faults;
        let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
        let res = rt.run(&s.ijob, Mode::Uniform(Strategy::Cache)).unwrap();
        let crashes: u64 = res
            .jobs
            .iter()
            .map(|j| j.recovery.crashes.len() as u64)
            .sum();
        let integrity: u64 = res
            .jobs
            .iter()
            .map(|j| {
                j.integrity.chunk_rereads
                    + j.integrity.shuffle_refetches
                    + j.integrity.cache_invalidations
                    + j.integrity.lookup_refetches
            })
            .sum();
        let records = res.output.total_records() as u64;
        let fp = file_fingerprint(&s.dfs, "ads.enriched");
        (res.total_time.as_nanos(), crashes, integrity, records, fp)
    };
    let (nanos, crashes, integrity, records, fp) = run();
    let clean_output = output_of(&clean);
    assert_eq!(
        vec![
            obs("output.records", records),
            obs("output.fingerprint", fp)
        ],
        clean_output,
        "combined chaos changed the answer"
    );
    assert!(nanos >= total, "combined chaos finished early");
    assert!(crashes > 0, "the planned crash never landed");
    assert!(integrity > 0, "the corruption plan never fired");
    let second = run();
    assert_eq!(
        (nanos, crashes, integrity, records, fp),
        second,
        "combined-chaos run is nondeterministic"
    );
}
