//! Integration: the adaptive runtime (§4) across real workloads —
//! correctness of mid-job plan changes and the catalog's role.

use efind_repro::cluster::SimDuration;
use efind_repro::core::{EFindConfig, EFindRuntime, Mode, Strategy};
use efind_repro::workloads::log;

fn config_with_delay(extra_ms: u64) -> log::LogConfig {
    log::LogConfig {
        num_events: 8_000,
        num_ips: 300,
        num_urls: 100,
        chunks: 240,
        extra_delay: SimDuration::from_millis(extra_ms),
        ..log::LogConfig::default()
    }
}

#[test]
fn dynamic_replans_on_expensive_lookups_and_preserves_output() {
    let config = config_with_delay(5);

    let mut s1 = log::scenario(&config);
    let mut rt1 = EFindRuntime::new(&s1.cluster, &mut s1.dfs);
    let base = rt1
        .run(&s1.ijob, Mode::Uniform(Strategy::Baseline))
        .unwrap();
    let mut expected = rt1.dfs.read_file("log.topk").unwrap();
    expected.sort();

    let mut s2 = log::scenario(&config);
    let mut rt2 = EFindRuntime::new(&s2.cluster, &mut s2.dfs);
    let dynamic = rt2.run(&s2.ijob, Mode::Dynamic).unwrap();
    assert!(
        dynamic.replanned,
        "5 ms lookups should trigger a plan change"
    );
    assert!(
        dynamic.total_time < base.total_time,
        "dynamic {} vs base {}",
        dynamic.total_time,
        base.total_time
    );
    let mut got = rt2.dfs.read_file("log.topk").unwrap();
    got.sort();
    assert_eq!(got, expected, "plan change must not alter the answer");
}

#[test]
fn dynamic_sits_between_baseline_and_optimized() {
    // §5.3: "dynamic is slower than the optimal performance, but it is
    // significantly faster than baseline."
    let config = config_with_delay(5);
    let mut s = log::scenario(&config);
    let mut rt = EFindRuntime::new(&s.cluster, &mut s.dfs);
    let base = rt
        .run(&s.ijob, Mode::Uniform(Strategy::Baseline))
        .unwrap()
        .total_time;
    let optimized = rt.run(&s.ijob, Mode::Optimized).unwrap().total_time;
    let dynamic = rt.run(&s.ijob, Mode::Dynamic).unwrap().total_time;
    assert!(optimized < base);
    assert!(dynamic <= base, "dynamic {dynamic} vs base {base}");
    assert!(
        dynamic >= optimized,
        "dynamic {dynamic} vs optimized {optimized}"
    );
}

#[test]
fn catalog_statistics_survive_across_jobs() {
    let config = config_with_delay(2);
    let mut s = log::scenario(&config);
    let mut rt = EFindRuntime::new(&s.cluster, &mut s.dfs);
    assert!(
        rt.run(&s.ijob, Mode::Optimized).is_err(),
        "optimized mode needs statistics first"
    );
    rt.run(&s.ijob, Mode::Uniform(Strategy::Baseline)).unwrap();
    let stats = rt.catalog.get("geoip").expect("catalog populated");
    assert!(stats.n1 > 0.0);
    assert!(stats.indices[0].theta > 1.0, "LOG has redundant IPs");
    // And now optimized works.
    rt.run(&s.ijob, Mode::Optimized).unwrap();
}

#[test]
fn prohibitive_change_cost_pins_the_baseline_plan() {
    let config = config_with_delay(5);
    let mut s = log::scenario(&config);
    let expensive = EFindConfig {
        plan_change_cost_secs: 1.0e6,
        ..EFindConfig::default()
    };
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, expensive);
    let res = rt.run(&s.ijob, Mode::Dynamic).unwrap();
    assert!(!res.replanned);
}

#[test]
fn plan_changes_at_most_once() {
    // The result reports a single replanning decision; the re-planned
    // pipeline runs to completion without further changes (§4.1: "We will
    // change the execution plan of a job at most once").
    let config = config_with_delay(5);
    let mut s = log::scenario(&config);
    let mut rt = EFindRuntime::new(&s.cluster, &mut s.dfs);
    let res = rt.run(&s.ijob, Mode::Dynamic).unwrap();
    if res.replanned {
        // The replanned pipeline is the shuffle job + the original job.
        assert!(
            res.jobs.len() <= 3,
            "unexpected job count {}",
            res.jobs.len()
        );
    }
}

#[test]
fn flaky_nodes_slow_jobs_but_never_corrupt_output() {
    // Failure injection: a node that fails every first task attempt. The
    // job must produce identical output (failed attempts never commit)
    // and take longer.
    use efind_repro::cluster::{Cluster, NodeId};
    let config = config_with_delay(0);

    let mut s1 = log::scenario(&config);
    let mut rt1 = EFindRuntime::new(&s1.cluster, &mut s1.dfs);
    let healthy = rt1.run(&s1.ijob, Mode::Uniform(Strategy::Cache)).unwrap();
    let mut expected = rt1.dfs.read_file("log.topk").unwrap();
    expected.sort();

    let mut s2 = log::scenario(&config);
    s2.cluster = Cluster::builder().flaky(NodeId(2), 0.8).build();
    let mut rt2 = EFindRuntime::new(&s2.cluster, &mut s2.dfs);
    let flaky = rt2.run(&s2.ijob, Mode::Uniform(Strategy::Cache)).unwrap();
    let mut got = rt2.dfs.read_file("log.topk").unwrap();
    got.sort();

    assert_eq!(got, expected, "task retries must not change results");
    assert!(
        flaky.total_time > healthy.total_time,
        "retries cost time: {} vs {}",
        flaky.total_time,
        healthy.total_time
    );
}

#[test]
fn empty_input_is_handled_in_every_mode() {
    use efind_repro::dfs::{Dfs, DfsConfig};
    let config = config_with_delay(0);
    for mode in [
        Mode::Uniform(Strategy::Baseline),
        Mode::Uniform(Strategy::Repartition),
        Mode::Dynamic,
    ] {
        let s = log::scenario(&config);
        let cluster = s.cluster.clone();
        let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
        dfs.write_file("log.events", vec![]);
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        let res = rt.run(&s.ijob, mode).unwrap();
        assert_eq!(res.output.total_records(), 0);
        assert!(!res.replanned);
    }
}
