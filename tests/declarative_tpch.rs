//! Integration: TPC-H queries expressed through the declarative `efind-ql`
//! layer must match the hand-written EFind operator pipelines — including
//! Q9's composite `(partkey, suppkey)` join key.

use std::sync::Arc;

use efind_repro::cluster::Cluster;
use efind_repro::core::{EFindRuntime, Mode, Strategy};
use efind_repro::dfs::{Dfs, DfsConfig};
use efind_repro::index::{KvStore, KvStoreConfig};
use efind_repro::ql::{col, composite, lit, Agg, Query};
use efind_repro::workloads::tpch::{self, TpchConfig, Q3_DATE_CUTOFF, Q3_SEGMENT, Q9_COLOR};

fn config() -> TpchConfig {
    TpchConfig {
        scale: 0.002,
        chunks: 30,
        seed: 42,
        ..TpchConfig::default()
    }
}

fn kv(
    name: &str,
    cluster: &Cluster,
    pairs: Vec<(efind_repro::common::Datum, Vec<efind_repro::common::Datum>)>,
) -> Arc<KvStore> {
    Arc::new(KvStore::build(
        name,
        cluster,
        KvStoreConfig::default(),
        pairs,
    ))
}

#[test]
fn declarative_q3_matches_reference() {
    let data = tpch::generate(&config());
    let reference = tpch::q3_reference(&data);
    assert!(!reference.is_empty());

    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    dfs.write_file_with_chunks("lineitem", data.lineitem.clone(), 30);
    let orders = kv("orders", &cluster, data.orders.clone());
    let customer = kv("customer", &cluster, data.customer.clone());

    // lineitem: [ok, pk, sk, qty, price, disc, shipdate]
    let job = Query::scan("lineitem")
        .filter(col(6).gt(lit(Q3_DATE_CUTOFF)))
        .index_join("orders", orders, col(0), [0, 1, 2]) // + custkey(7), orderdate(8), prio(9)
        .filter(col(8).lt(lit(Q3_DATE_CUTOFF)))
        .index_join("customer", customer, col(7), [0]) // + segment(10)
        .filter(col(10).eq(lit(Q3_SEGMENT)))
        .group_by([col(0), col(8), col(9)])
        .aggregate([Agg::Sum(col(4)), Agg::Sum(col(5)), Agg::Count])
        .into_job("q3-ql", "q3.out");

    let mut rt = EFindRuntime::new(&cluster, &mut dfs);
    rt.run(&job, Mode::Uniform(Strategy::Cache)).unwrap();
    let out = rt.dfs.read_file("q3.out").unwrap();

    // Same group set as the hand-written Q3 (the revenue expression
    // differs: here sum(price) & sum(disc) are computed separately).
    assert_eq!(out.len(), reference.len());
    for r in &out {
        assert!(
            reference.contains_key(&r.key),
            "unexpected group {:?}",
            r.key
        );
    }
}

#[test]
fn declarative_q9_with_composite_partsupp_key() {
    let data = tpch::generate(&config());
    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    dfs.write_file_with_chunks("lineitem", data.lineitem.clone(), 30);

    let supplier = kv("supplier", &cluster, data.supplier.clone());
    let part = kv("part", &cluster, data.part.clone());
    let partsupp = kv("partsupp", &cluster, data.partsupp.clone());
    let orders = kv("orders", &cluster, data.orders.clone());
    let nation = kv("nation", &cluster, data.nation.clone());

    // lineitem: [ok, pk, sk, qty, price, disc, shipdate]
    let job = Query::scan("lineitem")
        .index_join("supplier", supplier, col(2), [1]) // + s_nationkey(7)
        .index_join("part", part, col(1), [0]) // + p_name(8)
        .filter(col(8).contains(Q9_COLOR))
        .index_join("partsupp", partsupp, composite([col(1), col(2)]), [0]) // + supplycost(9)
        .index_join("orders", orders, col(0), [1]) // + orderdate(10)
        .index_join("nation", nation, col(7), [0]) // + nation name(11)
        .group_by([col(11)])
        .aggregate([Agg::Count, Agg::Sum(col(9))])
        .into_job("q9-ql", "q9.out");

    let mut rt = EFindRuntime::new(&cluster, &mut dfs);
    rt.run(&job, Mode::Uniform(Strategy::Cache)).unwrap();
    let out = rt.dfs.read_file("q9.out").unwrap();
    assert!(
        !out.is_empty(),
        "the green-part filter should keep some rows"
    );

    // Reference: serial nested-loop evaluation.
    let supplier_map: std::collections::HashMap<_, _> = data
        .supplier
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    let part_map: std::collections::HashMap<_, _> = data
        .part
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    let ps_map: std::collections::HashMap<_, _> = data
        .partsupp
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    let nation_map: std::collections::HashMap<_, _> = data
        .nation
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();

    let mut expect: std::collections::BTreeMap<String, i64> = Default::default();
    for rec in &data.lineitem {
        let l = rec.value.as_list().unwrap();
        let Some(s) = supplier_map.get(&l[2]) else {
            continue;
        };
        let Some(p) = part_map.get(&l[1]) else {
            continue;
        };
        if !p[0].as_text().unwrap().contains(Q9_COLOR) {
            continue;
        }
        let ps_key = efind_repro::common::Datum::List(vec![l[1].clone(), l[2].clone()]);
        if !ps_map.contains_key(&ps_key) {
            continue;
        }
        let nation = nation_map.get(&s[1]).unwrap()[0]
            .as_text()
            .unwrap()
            .to_owned();
        *expect.entry(nation).or_insert(0) += 1;
    }
    assert_eq!(out.len(), expect.len());
    for r in &out {
        let row = r.value.as_list().unwrap();
        let nation = row[0].as_text().unwrap();
        assert_eq!(row[1].as_int().unwrap(), expect[nation], "{nation}");
    }
}
