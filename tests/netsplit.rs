//! End-to-end gray-failure suite at the `EFindConfig` level.
//!
//! The runner-level mechanics (suspicion, re-placement, rejoin, fail-fast)
//! are pinned in `crates/mapreduce/src/runner.rs::partition_tests`; this
//! suite pins the *configuration surface*: a partition plan, detector, and
//! hedge threshold installed on [`EFindConfig`] flow through compilation
//! into every job of the pipeline, and
//!
//! * configured-but-quiet partition and hedge layers are byte-identical
//!   to the plain runner (the quiet-path guarantee of PR 7, extended to
//!   the two new layers);
//! * hedged lookups race backups and *win time, never bytes* — the output
//!   fingerprint is bit-identical to the unhedged run (§3.2 idempotence);
//! * a partition healing mid-job completes bit-identically to the
//!   unpartitioned run, leaving only `mr.partition.*` counters behind;
//! * the full gray stack (partition + hedge + chaos) replays
//!   bit-identically across runs.
//!
//! The seed matrix is pinned but overridable: set `EFIND_NETSPLIT_SEEDS`
//! to a comma-separated list of integers (decimal or 0x-hex), as
//! `scripts/ci.sh` does.

use efind::{EFindConfig, EFindRuntime, HedgeConfig, HedgePolicy, Mode, Strategy};
use efind_cluster::{ChaosPlan, DetectorConfig, NodeId, PartitionPlan, SimDuration, SimTime};
use efind_common::fx_hash_bytes;
use efind_dfs::Dfs;
use efind_mapreduce::JobStats;
use efind_workloads::multi::{self, MultiConfig};

/// Labeled virtual observables; whole vectors are compared at once so a
/// mismatch prints every value next to its expectation.
type Observables = Vec<(String, u64)>;

fn obs(label: impl Into<String>, value: u64) -> (String, u64) {
    (label.into(), value)
}

/// Stable fingerprint of a counter map (identical to
/// `tests/hotpath_golden.rs`).
fn counter_fingerprint(stats: &JobStats) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (k, v) in stats.counters.iter_sorted() {
        let _ = writeln!(text, "{k}={v}");
    }
    fx_hash_bytes(text.as_bytes())
}

/// Stable fingerprint of a DFS file's full contents, in chunk order.
fn file_fingerprint(dfs: &Dfs, name: &str) -> u64 {
    let mut buf = Vec::new();
    for rec in dfs.read_file(name).expect("output file missing") {
        buf.extend_from_slice(&rec.encode());
    }
    fx_hash_bytes(&buf)
}

/// The pinned seed matrix, overridable via `EFIND_NETSPLIT_SEEDS`.
fn netsplit_seeds() -> Vec<u64> {
    let parse = |text: &str| -> Vec<u64> {
        text.split(',')
            .filter_map(|tok| {
                let tok = tok.trim();
                tok.strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| tok.parse())
                    .ok()
            })
            .collect()
    };
    match std::env::var("EFIND_NETSPLIT_SEEDS") {
        Ok(text) if !parse(&text).is_empty() => parse(&text),
        _ => vec![0xEF1D_0010, 0x5EED_5EED],
    }
}

/// A small multi-index workload: three indices, every strategy viable.
fn small_config() -> MultiConfig {
    MultiConfig {
        num_events: 600,
        num_users: 60,
        num_ads: 100,
        num_sites: 40,
        site_value_bytes: 64,
        chunks: 8,
        ..MultiConfig::default()
    }
}

/// Runs the workload under one strategy with `mutate` applied to the
/// scenario's [`EFindConfig`], capturing every virtual observable plus
/// the summed `hedge.fired` and `mr.partition.*`-presence facts.
fn run_with(strategy: Strategy, mutate: impl FnOnce(&mut EFindConfig)) -> (Observables, u64, bool) {
    let mut s = multi::scenario(&small_config());
    mutate(&mut s.efind_config);
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
    let res = rt.run(&s.ijob, Mode::Uniform(strategy)).unwrap();
    let mut captured: Observables = vec![
        obs("total.nanos", res.total_time.as_nanos()),
        obs("jobs", res.jobs.len() as u64),
    ];
    let mut hedges_fired = 0u64;
    let mut partition_counters = false;
    for (i, job) in res.jobs.iter().enumerate() {
        captured.push(obs(
            format!("job{i}.makespan.nanos"),
            job.makespan().as_nanos(),
        ));
        captured.push(obs(format!("job{i}.shuffle.bytes"), job.shuffle_bytes));
        captured.push(obs(
            format!("job{i}.counters.fingerprint"),
            counter_fingerprint(job),
        ));
        for (name, v) in job.counters.iter_sorted() {
            if name.ends_with(".hedge.fired") {
                hedges_fired += v as u64;
            }
            if name.starts_with("mr.partition.") && v != 0 {
                partition_counters = true;
            }
        }
    }
    captured.push(obs("output.records", res.output.total_records() as u64));
    captured.push(obs(
        "output.fingerprint",
        file_fingerprint(&s.dfs, "ads.enriched"),
    ));
    (captured, hedges_fired, partition_counters)
}

/// Only the output rows of an observable vector.
fn output_of(observables: &Observables) -> Vec<(String, u64)> {
    observables
        .iter()
        .filter(|(k, _)| k.starts_with("output."))
        .cloned()
        .collect()
}

/// A transient single-node cut plus a slow link, both healing inside the
/// job window, drawn from `seed`.
fn transient_split(seed: u64) -> PartitionPlan {
    let node = NodeId((seed % 12) as u16);
    let other = NodeId(((seed % 12) as u16 + 1) % 12);
    PartitionPlan::new(seed)
        .split(
            &[node],
            SimTime::from_nanos(1_000),
            Some(SimTime::from_nanos(50_000_000)),
        )
        .slow_link(
            other,
            SimTime::ZERO,
            Some(SimTime::from_nanos(80_000_000)),
            3.0,
        )
}

/// Configured-but-quiet partition and hedge layers take byte-for-byte the
/// plain path: a seeded-but-empty plan, an explicit detector, and a
/// disabled hedge change no virtual observable under any strategy.
#[test]
fn quiet_partition_and_hedge_config_matches_plain_exactly() {
    for strategy in [Strategy::Baseline, Strategy::Cache, Strategy::Repartition] {
        let (plain, _, _) = run_with(strategy, |_| {});
        let (quiet, fired, partitioned) = run_with(strategy, |cfg| {
            cfg.netsplit = PartitionPlan::new(0xD0_0D); // seeded, no events
            cfg.detector = DetectorConfig::default();
            cfg.hedge = HedgeConfig::disabled();
        });
        assert_eq!(fired, 0);
        assert!(!partitioned);
        assert_eq!(quiet, plain, "quiet layers perturbed {strategy:?}");
    }
}

/// Hedged lookups win time, never bytes: with a hair-trigger threshold
/// every remote lookup hedges, the `hedge.*` counters record the races,
/// and the output fingerprint is bit-identical to the unhedged run —
/// under both charging policies, deterministically across runs.
#[test]
fn hedging_changes_charged_time_but_never_output() {
    for seed in netsplit_seeds() {
        let (plain, _, _) = run_with(Strategy::Baseline, |_| {});
        for policy in [HedgePolicy::ChargeWinner, HedgePolicy::ChargeBoth] {
            let hedge = |cfg: &mut EFindConfig| {
                cfg.hedge = HedgeConfig {
                    seed,
                    threshold: Some(SimDuration::from_nanos(1)),
                    policy,
                };
            };
            let (hedged, fired, _) = run_with(Strategy::Baseline, hedge);
            assert!(fired > 0, "seed {seed:#x}: no hedge fired");
            assert_eq!(
                output_of(&hedged),
                output_of(&plain),
                "seed {seed:#x} {policy:?}: hedging moved the output"
            );
            let (again, fired_again, _) = run_with(Strategy::Baseline, hedge);
            assert_eq!(hedged, again, "seed {seed:#x} {policy:?}: nondeterministic");
            assert_eq!(fired, fired_again);
        }
    }
}

/// A partition healing mid-job completes bit-identically to the
/// unpartitioned run: only timing and the `mr.partition.*` ledger move,
/// never the output.
#[test]
fn partition_healing_mid_job_completes_bit_identically() {
    for seed in netsplit_seeds() {
        let (plain, _, _) = run_with(Strategy::Cache, |_| {});
        let split = |cfg: &mut EFindConfig| {
            cfg.netsplit = transient_split(seed);
        };
        let (cut, _, partitioned) = run_with(Strategy::Cache, split);
        assert!(partitioned, "seed {seed:#x}: the cut left no trace");
        assert_eq!(
            output_of(&cut),
            output_of(&plain),
            "seed {seed:#x}: the partition moved the output"
        );
        let (again, _, _) = run_with(Strategy::Cache, split);
        assert_eq!(cut, again, "seed {seed:#x}: nondeterministic replay");
    }
}

/// Tentpole acceptance: the full gray stack — an armed partition plan,
/// hedged lookups, and a chaos node kill in one run — replays
/// bit-identically, and the output still matches the failure-free run.
#[test]
fn armed_partition_hedge_and_chaos_replay_bit_identically() {
    for seed in netsplit_seeds() {
        let (plain, _, _) = run_with(Strategy::Cache, |_| {});
        let gray = |cfg: &mut EFindConfig| {
            cfg.netsplit = transient_split(seed);
            cfg.hedge = HedgeConfig {
                seed,
                threshold: Some(SimDuration::from_micros(1)),
                policy: HedgePolicy::ChargeBoth,
            };
            // Kill a node far from the partitioned pair, late enough that
            // replicas and recompute keep the run survivable.
            cfg.chaos = ChaosPlan::new(seed).kill(
                NodeId(((seed % 12) as u16 + 6) % 12),
                SimTime::from_nanos(40_000_000),
            );
        };
        let (a, _, _) = run_with(Strategy::Cache, gray);
        let (b, _, _) = run_with(Strategy::Cache, gray);
        assert_eq!(a, b, "seed {seed:#x}: gray stack replay diverged");
        assert_eq!(
            output_of(&a),
            output_of(&plain),
            "seed {seed:#x}: gray failures moved the output"
        );
    }
}
