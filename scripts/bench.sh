#!/usr/bin/env bash
# Wall-clock hot-path benchmark: appends a labeled run to
# BENCH_hotpath.json. Usage: scripts/bench.sh [label] [iters]
#
# Comparability contract (keep runs interchangeable across sessions):
#   - default iters is 5 — always record labeled runs with the default;
#   - every workload discards one warm-up iteration before timing;
#   - each result line carries the mean (`wall_ms`) AND the fastest timed
#     iteration (`wall_ms_min`); `--check` gates on the min, which is the
#     noise-robust statistic on a shared 1-CPU box.
# Arguments after [label] [iters] pass straight through to the bench
# binary — e.g. `scripts/bench.sh local 5 --quiet-profile` measures the
# configured-but-quiet injection path instead of the never-configured one.
set -euo pipefail

cd "$(dirname "$0")/.."

LABEL="${1:-local}"
ITERS="${2:-5}"
shift $(( $# > 2 ? 2 : $# )) || true

cargo build --release -p efind-bench --bin hotpath
cargo run --release -q -p efind-bench --bin hotpath -- \
  --label "$LABEL" --iters "$ITERS" --out BENCH_hotpath.json "$@"
