#!/usr/bin/env bash
# Wall-clock hot-path benchmark: appends a labeled run to
# BENCH_hotpath.json. Usage: scripts/bench.sh [label] [iters]
set -euo pipefail

cd "$(dirname "$0")/.."

LABEL="${1:-local}"
ITERS="${2:-5}"

cargo build --release -p efind-bench --bin hotpath
cargo run --release -q -p efind-bench --bin hotpath -- \
  --label "$LABEL" --iters "$ITERS" --out BENCH_hotpath.json
