#!/usr/bin/env bash
# Workspace lint gate: determinism lint (efind-lint), formatting, and
# clippy with warnings denied. Run from anywhere; operates on the
# repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== efind-lint (determinism & virtual-time rules L001..L006) =="
# Project-specific source lint: wall-clock reads outside the bench
# crate, unordered iteration in observable-output crates, raw seed/hash
# draws outside efind-common::det, unregistered counter names, panics in
# runner/ql error paths, float accumulation over unordered collections.
# Exits nonzero on any un-waived finding.
cargo run -q -p efind-lint --bin efind-lint

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "lint: clean"
