#!/usr/bin/env bash
# Workspace lint gate: formatting + clippy with warnings denied.
# Run from anywhere; operates on the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "lint: clean"
