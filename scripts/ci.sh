#!/usr/bin/env bash
# Full CI gate: lint (fmt + clippy -D warnings), the complete test suite,
# and a one-iteration bench smoke that fails on a >25% wall-clock
# regression against the committed BENCH_hotpath.json baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

scripts/lint.sh

echo "== cargo test =="
cargo test -q --workspace

echo "== bench smoke (regression check) =="
cargo run --release -q -p efind-bench --bin hotpath -- --check

echo "ci: clean"
