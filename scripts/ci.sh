#!/usr/bin/env bash
# Full CI gate: lint (fmt + clippy -D warnings), the complete test suite,
# and a one-iteration bench smoke that fails on a >25% wall-clock
# regression against the committed BENCH_hotpath.json baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

scripts/lint.sh

echo "== cargo test =="
cargo test -q --workspace

echo "== fault injection (pinned seed matrix) =="
# Deterministic chaos sweep: per (seed, rate, strategy) cell two runs
# must be bit-identical, and the zero-fault cell must match the hotpath
# goldens. The pinned matrix is the suite's default; widen it by
# exporting more seeds.
EFIND_FAULT_SEEDS="${EFIND_FAULT_SEEDS:-0xEF1D0001,0xC0FFEE42}" \
    cargo test -q --test fault_injection --test fault_props

echo "== bench smoke (regression check) =="
cargo run --release -q -p efind-bench --bin hotpath -- --check

echo "ci: clean"
