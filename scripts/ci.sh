#!/usr/bin/env bash
# Full CI gate: lint (fmt + clippy -D warnings), the complete test suite,
# and a one-iteration bench smoke that fails on a >25% wall-clock
# regression against the committed BENCH_hotpath.json baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== efind-lint (JSON, machine-readable gate) =="
# The determinism lint runs twice in CI on purpose: once here in JSON
# mode (the machine-readable artifact; nonzero exit on any un-waived
# L001..L007 finding) and once inside lint.sh in human mode ahead of
# clippy.
cargo run -q -p efind-lint --bin efind-lint -- --json

scripts/lint.sh

echo "== cargo test =="
cargo test -q --workspace

echo "== fault injection (pinned seed matrix) =="
# Deterministic chaos sweep: per (seed, rate, strategy) cell two runs
# must be bit-identical, and the zero-fault cell must match the hotpath
# goldens. The pinned matrix is the suite's default; widen it by
# exporting more seeds.
EFIND_FAULT_SEEDS="${EFIND_FAULT_SEEDS:-0xEF1D0001,0xC0FFEE42}" \
    cargo test -q --test fault_injection --test fault_props

echo "== node crash recovery (pinned seed matrix) =="
# Deterministic node-crash sweep: per (seed, crash count, strategy) cell
# two runs must be bit-identical, crashes under replication 3 must not
# change the output, and the zero-crash cell must match the hotpath
# goldens. Release mode: recompute waves multiply virtual work.
EFIND_CRASH_SEEDS="${EFIND_CRASH_SEEDS:-0xEF1D0003,0xDEADBEE5,41}" \
    cargo test -q --release --test node_crash

echo "== data integrity (pinned seed matrix) =="
# Deterministic corruption sweep: per (seed, rate, strategy) cell two
# runs must be bit-identical (or fail fast identically), corruption
# under replication 3 must change neither output nor non-ledger
# counters, and the zero-corruption cell must match the hotpath goldens.
EFIND_CORRUPT_SEEDS="${EFIND_CORRUPT_SEEDS:-0xEF1D0004,0xC0FFEE01,53}" \
    cargo test -q --release --test integrity

echo "== cross-job re-optimization (persistent stats store) =="
# Deterministic re-optimization sweep: a warm store must plan the
# measured winner at compile time with zero mid-job replans and
# bit-identical observables across double runs; empty, absent, corrupt,
# and version-bumped stores must be observably absent beyond their named
# counters. Release mode: each case runs the full LOG workload.
cargo test -q --release --test reopt_persistence --test reopt_props --test reopt_robustness

echo "== gray failures (pinned seed matrix) =="
# Deterministic partition/hedge sweep: configured-but-quiet partition and
# hedge layers must match the plain run byte-for-byte (the quiet golden
# smoke), hedged lookups must win time but never bytes, a partition
# healing mid-job must leave the output bit-identical, and the full gray
# stack (partition + hedge + chaos) must replay bit-identically across
# double runs. Release mode: stalled schedules multiply virtual work.
EFIND_NETSPLIT_SEEDS="${EFIND_NETSPLIT_SEEDS:-0xEF1D0010,0x5EED5EED}" \
    cargo test -q --release --test netsplit

echo "== multi-tenant serving (pinned-seed mix) =="
# Deterministic tenancy sweep: the quiet-tenancy mix must match the
# hotpath goldens byte-for-byte, the contended mix (chaos armed on one
# tenant, pinned seed 0xEF1D0009) must produce bit-identical schedules
# across double runs, weighted contention must complete every admitted
# job, and one tenant's armed injections must not move another tenant's
# observables. Release mode: the proptest cases each run a full mix.
cargo test -q --release --test tenancy

echo "== bench smoke (regression check) =="
cargo run --release -q -p efind-bench --bin hotpath -- --check

echo "== bench smoke (configured-but-quiet injection profile) =="
# The same three base workloads with all three injection layers installed
# as seeded-but-quiet plans (pinned seed 0xEF1D0007 inside the bench).
# The profile classifies every layer Quiet, so this must clear the same
# best-historical gate as the plain run — any per-iteration dispatch
# creeping back into the hot path shows up here as a >25% min regression.
cargo run --release -q -p efind-bench --bin hotpath -- --check --quiet-profile

echo "ci: clean"
