//! Virtual time.
//!
//! All costs in the reproduction are [`SimDuration`]s and all schedule
//! points are [`SimTime`]s, both counted in integer nanoseconds so that
//! accumulation across millions of records stays exact and deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds; negatives clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            SimDuration(0)
        } else {
            SimDuration((secs * 1e9).round() as u64)
        }
    }

    /// Builds a duration from fractional milliseconds.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by a non-negative factor.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        Self::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Capped exponential backoff: `base · multiplier^attempt`, clamped to
    /// `cap`. Attempt 0 is the first retry. All charging is virtual time —
    /// a backoff pause is a task-time charge like any other modeled cost,
    /// so retried schedules stay exactly reproducible.
    pub fn exp_backoff(base: SimDuration, multiplier: f64, attempt: u32, cap: SimDuration) -> Self {
        if base.is_zero() {
            return SimDuration::ZERO;
        }
        // Saturate the exponent computation in f64 space; the cap bounds
        // the result long before precision matters.
        let factor = multiplier.max(1.0).powi(attempt.min(63) as i32);
        base.mul_f64(factor).min(cap)
    }

    /// True if zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: Self) -> Self {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> Self {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> Self {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            efind_common::fmtutil::human_secs(self.as_secs_f64())
        )
    }
}

/// A point on the virtual clock (nanoseconds since the job epoch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time point from nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since another (earlier) time point.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two time points.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t+{}",
            efind_common::fmtutil::human_secs(self.as_secs_f64())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(
            SimDuration::from_millis_f64(1.5),
            SimDuration::from_micros(1500)
        );
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(2);
        assert_eq!(a + b, SimDuration::from_millis(5));
        assert_eq!(a - b, SimDuration::from_millis(1));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a * 2, SimDuration::from_millis(6));
        assert_eq!(a / 3, SimDuration::from_millis(1));
        assert_eq!(a.mul_f64(2.0), SimDuration::from_millis(6));
    }

    #[test]
    fn time_points() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_secs(2));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
        assert_eq!(t.max(SimTime::ZERO), t);
    }

    #[test]
    fn exp_backoff_grows_and_caps() {
        let base = SimDuration::from_millis(1);
        let cap = SimDuration::from_millis(100);
        assert_eq!(
            SimDuration::exp_backoff(base, 2.0, 0, cap),
            SimDuration::from_millis(1)
        );
        assert_eq!(
            SimDuration::exp_backoff(base, 2.0, 3, cap),
            SimDuration::from_millis(8)
        );
        assert_eq!(SimDuration::exp_backoff(base, 2.0, 20, cap), cap);
        // A zero base disables the pause entirely.
        assert_eq!(
            SimDuration::exp_backoff(SimDuration::ZERO, 2.0, 5, cap),
            SimDuration::ZERO
        );
        // Sub-1 multipliers clamp to a constant pause, never a shrinking one.
        assert_eq!(
            SimDuration::exp_backoff(base, 0.5, 4, cap),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4u64).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
