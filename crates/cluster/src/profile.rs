//! Per-job injection-layer profile: each layer resolved to Quiet or
//! Armed exactly once, before any hot loop runs.
//!
//! The resilience family (faults, chaos, corruption) promises that quiet
//! plans change no virtual observable — but a promise about *observables*
//! says nothing about *cost*. A plan that is present-but-quiet used to be
//! consulted per lookup, per payload, and per schedule replay, paying
//! hash draws, CRC sums, and ledger bookkeeping for experiments that
//! inject nothing. The profile moves that decision out of the loops:
//! every layer is classified here, once, at pipeline compilation or
//! [`Runner`](../../efind_mapreduce/struct.Runner.html) construction, and
//! the hot paths dispatch on the resulting [`LayerState`] *outside* their
//! per-record/per-lookup bodies. The Quiet variant is the PR-2 hot path —
//! no draw, no checksum, no breaker, no ledger — and the Armed variant is
//! byte-for-byte the previous injected path, so both sides keep their
//! bit-identical observables.

use crate::chaos::ChaosPlan;
use crate::corrupt::CorruptionPlan;
use crate::netsplit::PartitionPlan;
use crate::tenancy::TenancyConfig;

/// Whether an injection layer can influence this run at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayerState {
    /// The layer cannot fire: its plan is absent or draws nothing. Hot
    /// loops take the plain path and skip the layer's bookkeeping
    /// entirely.
    Quiet,
    /// The layer may fire; hot loops route through the guarded path.
    Armed,
}

impl LayerState {
    /// `Armed` when `armed`, `Quiet` otherwise.
    pub fn from_armed(armed: bool) -> Self {
        if armed {
            LayerState::Armed
        } else {
            LayerState::Quiet
        }
    }

    /// True for [`LayerState::Armed`].
    pub fn is_armed(self) -> bool {
        matches!(self, LayerState::Armed)
    }
}

/// The once-per-job classification of all three injection layers.
///
/// Resolved at `compile_pipeline` / `Runner` construction and consulted
/// only *outside* hot loops; the loops themselves see either the plain
/// path or the armed path, never a per-iteration branch on plan state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectionProfile {
    /// Index-access fault injection (retries, timeouts, breakers).
    pub faults: LayerState,
    /// Node-crash replay (recompute waves, re-replication).
    pub chaos: LayerState,
    /// Data corruption (chunk/shuffle/cache/response CRC verification).
    pub corruption: LayerState,
    /// Multi-tenant serving (admission control, quotas, index QoS).
    /// Quiet whenever the tenancy config cannot influence the run — the
    /// single-job no-tenancy path must stay byte-identical to a runtime
    /// without the layer.
    pub tenancy: LayerState,
    /// Gray failures: network partitions, link slowdowns, heartbeat
    /// suspicion, node rejoin. Quiet whenever the partition plan has no
    /// effective window.
    pub partition: LayerState,
}

impl InjectionProfile {
    /// The all-quiet profile: every layer elided.
    pub fn quiet() -> Self {
        InjectionProfile {
            faults: LayerState::Quiet,
            chaos: LayerState::Quiet,
            corruption: LayerState::Quiet,
            tenancy: LayerState::Quiet,
            partition: LayerState::Quiet,
        }
    }

    /// Classifies the runner-visible layers (chaos, corruption). The
    /// fault layer lives inside compiled mappers and is classified by
    /// `FaultConfig::layer_state` in `efind-core`; callers that know it
    /// can overwrite `faults`.
    pub fn from_plans(chaos: &ChaosPlan, corruption: &CorruptionPlan) -> Self {
        InjectionProfile {
            faults: LayerState::Quiet,
            chaos: chaos.layer_state(),
            corruption: corruption.layer_state(),
            tenancy: LayerState::Quiet,
            partition: LayerState::Quiet,
        }
    }

    /// Classifies the tenancy layer from its config values, keeping the
    /// other layers as already resolved.
    pub fn with_tenancy(mut self, cfg: &TenancyConfig) -> Self {
        self.tenancy = cfg.layer_state();
        self
    }

    /// Classifies the gray-failure layer from its plan values, keeping
    /// the other layers as already resolved.
    pub fn with_partition(mut self, plan: &PartitionPlan) -> Self {
        self.partition = plan.layer_state();
        self
    }

    /// True when at least one layer is armed.
    pub fn any_armed(&self) -> bool {
        self.faults.is_armed()
            || self.chaos.is_armed()
            || self.corruption.is_armed()
            || self.tenancy.is_armed()
            || self.partition.is_armed()
    }
}

impl Default for InjectionProfile {
    fn default() -> Self {
        InjectionProfile::quiet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn quiet_profile_arms_nothing() {
        let p = InjectionProfile::quiet();
        assert!(!p.any_armed());
        assert_eq!(p, InjectionProfile::default());
        assert!(!LayerState::Quiet.is_armed());
        assert!(LayerState::Armed.is_armed());
    }

    #[test]
    fn seeded_but_quiet_plans_stay_quiet() {
        // Configured-but-quiet is the production steady state: plans
        // installed (seeded, ready to arm) but drawing nothing.
        let p = InjectionProfile::from_plans(&ChaosPlan::new(7), &CorruptionPlan::new(7));
        assert!(!p.any_armed());
    }

    #[test]
    fn non_quiet_plans_arm_their_layer() {
        let chaos = ChaosPlan::none().kill(NodeId(0), SimTime::ZERO + SimDuration::from_millis(1));
        let p = InjectionProfile::from_plans(&chaos, &CorruptionPlan::none());
        assert!(p.chaos.is_armed());
        assert!(!p.corruption.is_armed());

        let p =
            InjectionProfile::from_plans(&ChaosPlan::none(), &CorruptionPlan::new(1).chunks(0.1));
        assert!(!p.chaos.is_armed());
        assert!(p.corruption.is_armed());
    }

    #[test]
    fn tenancy_layer_classifies_from_config_values() {
        use crate::tenancy::{TenancyConfig, TenantSpec};
        let quiet = InjectionProfile::quiet().with_tenancy(&TenancyConfig::none());
        assert!(!quiet.any_armed());
        // One unlimited tenant cannot influence a run: still quiet.
        let solo = InjectionProfile::quiet()
            .with_tenancy(&TenancyConfig::none().tenant(TenantSpec::new("solo")));
        assert!(!solo.tenancy.is_armed());
        let armed = InjectionProfile::quiet().with_tenancy(
            &TenancyConfig::none()
                .tenant(TenantSpec::new("a"))
                .tenant(TenantSpec::new("b")),
        );
        assert!(armed.tenancy.is_armed());
        assert!(armed.any_armed());
    }

    #[test]
    fn partition_layer_classifies_from_plan_values() {
        use crate::netsplit::PartitionPlan;
        let quiet = InjectionProfile::quiet().with_partition(&PartitionPlan::new(7));
        assert!(!quiet.any_armed());
        let armed = InjectionProfile::quiet().with_partition(&PartitionPlan::new(7).split(
            &[NodeId(1)],
            SimTime::ZERO,
            None,
        ));
        assert!(armed.partition.is_armed());
        assert!(armed.any_armed());
        assert!(!armed.chaos.is_armed());
    }
}
