//! Deterministic data-corruption plans.
//!
//! A [`CorruptionPlan`] decides — as a pure function of a seed and the
//! payload's identity — which stored or transferred payloads have a byte
//! flipped in them: DFS chunk *replicas* (each replica independently),
//! shuffle partitions in flight, lookup-cache entries at insertion, and
//! index responses on the wire. It is the third seeded plan in the family
//! of `FaultPlan` (index faults) and [`ChaosPlan`](crate::ChaosPlan)
//! (node crashes), built on the same shared draw helper
//! ([`efind_common::det`]); the quiet plan short-circuits everywhere and
//! changes no virtual observable.
//!
//! Like `ChaosPlan`, the plan is *descriptive*: it does not flip bytes by
//! itself. The DFS, the shuffle path, the lookup cache, and the accessor
//! consult it at their read/write boundaries, compare checksums, and take
//! the repair path on a mismatch. A corrupted copy is always *detected*
//! (CRC verification is on by default) and never served, so corruption
//! only ever costs time — unless every replica of a chunk is hit, in
//! which case the job fails fast with `Error::DataCorruption`.

use crate::node::NodeId;
use efind_common::det::draw_unit;

/// A deterministic schedule of data corruption for one run.
///
/// Rates are per-payload probabilities; each decision is an independent
/// hash draw namespaced by surface (`corrupt.chunk`, `corrupt.shuffle`,
/// `corrupt.cache`, `corrupt.response`), so the surfaces never correlate.
#[derive(Clone, Debug, PartialEq)]
pub struct CorruptionPlan {
    seed: u64,
    /// Probability an individual DFS chunk *replica* is corrupted at rest.
    chunk_rate: f64,
    /// Probability a (map source, reduce partition) shuffle payload is
    /// corrupted in flight.
    shuffle_rate: f64,
    /// Probability a lookup-cache entry is poisoned at insertion.
    cache_rate: f64,
    /// Probability one index-response transfer is corrupted on the wire.
    response_rate: f64,
    /// Whether read boundaries verify checksums. On by default; turning
    /// it off models a deployment that skips verification (the analyzer
    /// warns: corruption then goes undetected).
    verify: bool,
}

impl Default for CorruptionPlan {
    fn default() -> Self {
        CorruptionPlan {
            seed: 0,
            chunk_rate: 0.0,
            shuffle_rate: 0.0,
            cache_rate: 0.0,
            response_rate: 0.0,
            verify: true,
        }
    }
}

impl CorruptionPlan {
    /// The quiet plan: nothing is ever corrupted.
    pub fn none() -> Self {
        Self::default()
    }

    /// A quiet plan carrying a seed, to be armed with the rate builders.
    pub fn new(seed: u64) -> Self {
        CorruptionPlan {
            seed,
            ..Self::default()
        }
    }

    /// Sets the per-replica DFS chunk corruption probability.
    pub fn chunks(mut self, rate: f64) -> Self {
        self.chunk_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-(source, partition) shuffle corruption probability.
    pub fn shuffle(mut self, rate: f64) -> Self {
        self.shuffle_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-insertion cache poisoning probability.
    pub fn cache(mut self, rate: f64) -> Self {
        self.cache_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-transfer index-response corruption probability.
    pub fn responses(mut self, rate: f64) -> Self {
        self.response_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Disables checksum verification at read boundaries (corruption then
    /// goes undetected; the analyzer flags this as EF018).
    pub fn without_verification(mut self) -> Self {
        self.verify = false;
        self
    }

    /// Seed the plan was built from (0 for the quiet plan).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no payload can ever be corrupted. The quiet plan must
    /// never change any virtual observable.
    pub fn is_quiet(&self) -> bool {
        self.chunk_rate == 0.0
            && self.shuffle_rate == 0.0
            && self.cache_rate == 0.0
            && self.response_rate == 0.0
    }

    /// True when read boundaries verify checksums.
    pub fn verification_enabled(&self) -> bool {
        self.verify
    }

    /// True when the plan can corrupt DFS chunk replicas.
    pub fn corrupts_chunks(&self) -> bool {
        self.chunk_rate > 0.0
    }

    /// True when the plan can corrupt shuffle payloads in flight.
    pub fn corrupts_shuffle(&self) -> bool {
        self.shuffle_rate > 0.0
    }

    /// True when the plan can poison lookup-cache entries.
    pub fn corrupts_cache(&self) -> bool {
        self.cache_rate > 0.0
    }

    /// True when the plan can corrupt index responses on the wire.
    pub fn corrupts_responses(&self) -> bool {
        self.response_rate > 0.0
    }

    /// The layer's once-per-job classification: `Armed` only when some
    /// surface has a nonzero corruption rate. Hot paths hoist this
    /// decision outside their loops (see
    /// [`crate::profile::InjectionProfile`]).
    pub fn layer_state(&self) -> crate::profile::LayerState {
        crate::profile::LayerState::from_armed(!self.is_quiet())
    }

    /// True when DFS chunk reads both can be corrupted *and* verify
    /// CRCs — the only combination where the chunk sub-layer does work.
    pub fn verifies_chunks(&self) -> bool {
        self.corrupts_chunks() && self.verification_enabled()
    }

    /// True when shuffle payloads are CRC-verified at the reducer.
    pub fn verifies_shuffle(&self) -> bool {
        self.corrupts_shuffle() && self.verification_enabled()
    }

    /// True when lookup-cache entries carry and check entry CRCs.
    pub fn verifies_cache(&self) -> bool {
        self.corrupts_cache() && self.verification_enabled()
    }

    /// True when index responses are verified (and re-fetched) on the
    /// accessor path.
    pub fn verifies_responses(&self) -> bool {
        self.corrupts_responses() && self.verification_enabled()
    }

    /// Whether the replica of chunk `chunk` of `file` stored on `host` is
    /// corrupt. Pure in `(seed, file, chunk, host)`: every reader of the
    /// same replica sees the same answer, and distinct replicas of the
    /// same chunk draw independently.
    pub fn chunk_replica_corrupt(&self, file: &str, chunk: usize, host: NodeId) -> bool {
        if self.chunk_rate == 0.0 {
            return false;
        }
        let mut payload = Vec::with_capacity(file.len() + 10);
        payload.extend_from_slice(file.as_bytes());
        payload.extend_from_slice(&(chunk as u64).to_le_bytes());
        payload.extend_from_slice(&host.0.to_le_bytes());
        draw_unit(self.seed, "corrupt.chunk", &payload) < self.chunk_rate
    }

    /// Whether the shuffle payload from map source `source` to reduce
    /// partition `partition` of job `job` is corrupted in flight. Map
    /// outputs remain in memory at the source, so a corrupted transfer is
    /// always recoverable by refetching.
    pub fn shuffle_corrupt(&self, job: &str, source: usize, partition: usize) -> bool {
        if self.shuffle_rate == 0.0 {
            return false;
        }
        let mut payload = Vec::with_capacity(job.len() + 16);
        payload.extend_from_slice(job.as_bytes());
        payload.extend_from_slice(&(source as u64).to_le_bytes());
        payload.extend_from_slice(&(partition as u64).to_le_bytes());
        draw_unit(self.seed, "corrupt.shuffle", &payload) < self.shuffle_rate
    }

    /// Whether a cache entry inserted under `scope` (the per-index counter
    /// prefix) for the encoded key `key` is poisoned. `generation` is the
    /// insertion ordinal for that key within the task, so re-inserted
    /// entries draw fresh.
    pub fn cache_corrupt(&self, scope: &str, key: &[u8], generation: u64) -> bool {
        if self.cache_rate == 0.0 {
            return false;
        }
        let mut payload = Vec::with_capacity(scope.len() + key.len() + 8);
        payload.extend_from_slice(scope.as_bytes());
        payload.extend_from_slice(key);
        payload.extend_from_slice(&generation.to_le_bytes());
        draw_unit(self.seed, "corrupt.cache", &payload) < self.cache_rate
    }

    /// Whether transfer number `attempt` of the index response for the
    /// encoded key `key` under `scope` is corrupted on the wire. Retried
    /// transfers draw fresh, so a corrupted response is recoverable by
    /// re-fetching (attempt + 1).
    pub fn response_corrupt(&self, scope: &str, key: &[u8], attempt: u32) -> bool {
        if self.response_rate == 0.0 {
            return false;
        }
        let mut payload = Vec::with_capacity(scope.len() + key.len() + 4);
        payload.extend_from_slice(scope.as_bytes());
        payload.extend_from_slice(key);
        payload.extend_from_slice(&attempt.to_le_bytes());
        draw_unit(self.seed, "corrupt.response", &payload) < self.response_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_quiet() {
        assert!(CorruptionPlan::none().is_quiet());
        assert!(CorruptionPlan::new(42).is_quiet());
        assert!(!CorruptionPlan::new(42).chunk_replica_corrupt("f", 0, NodeId(0)));
        assert!(!CorruptionPlan::new(42).shuffle_corrupt("j", 0, 0));
        assert!(CorruptionPlan::none().verification_enabled());
    }

    #[test]
    fn layer_state_and_verify_gates() {
        use crate::profile::LayerState;
        // Configured-but-quiet stays Quiet; any rate arms the layer.
        assert_eq!(CorruptionPlan::new(42).layer_state(), LayerState::Quiet);
        assert_eq!(
            CorruptionPlan::new(42).cache(0.1).layer_state(),
            LayerState::Armed
        );
        // A sub-layer verifies only when it can corrupt AND verification
        // is on — disabling verification silences every verify gate.
        let armed = CorruptionPlan::new(1).chunks(0.1).shuffle(0.1);
        assert!(armed.verifies_chunks() && armed.verifies_shuffle());
        assert!(!armed.verifies_cache() && !armed.verifies_responses());
        let blind = armed.without_verification();
        assert_eq!(blind.layer_state(), LayerState::Armed);
        assert!(!blind.verifies_chunks() && !blind.verifies_shuffle());
    }

    #[test]
    fn armed_plan_is_deterministic() {
        let plan = CorruptionPlan::new(7).chunks(0.3).shuffle(0.3);
        for chunk in 0..50 {
            for host in 0..4 {
                assert_eq!(
                    plan.chunk_replica_corrupt("f", chunk, NodeId(host)),
                    plan.chunk_replica_corrupt("f", chunk, NodeId(host)),
                );
            }
        }
        assert_eq!(
            plan.shuffle_corrupt("job", 3, 1),
            plan.shuffle_corrupt("job", 3, 1)
        );
    }

    #[test]
    fn replicas_draw_independently() {
        // At a 50% rate some chunk must differ across its replicas —
        // that independence is what makes replication a repair path.
        let plan = CorruptionPlan::new(11).chunks(0.5);
        let split = (0..100).any(|c| {
            plan.chunk_replica_corrupt("f", c, NodeId(0))
                != plan.chunk_replica_corrupt("f", c, NodeId(1))
        });
        assert!(split);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = CorruptionPlan::new(3).chunks(0.25);
        let hits = (0..4000)
            .filter(|&c| plan.chunk_replica_corrupt("f", c, NodeId(0)))
            .count();
        let rate = hits as f64 / 4000.0;
        assert!((0.20..=0.30).contains(&rate), "rate={rate}");
    }

    #[test]
    fn surfaces_and_seeds_are_independent() {
        let a = CorruptionPlan::new(1).chunks(0.5).shuffle(0.5);
        let b = CorruptionPlan::new(2).chunks(0.5).shuffle(0.5);
        let seed_diverges = (0..200).any(|c| {
            a.chunk_replica_corrupt("f", c, NodeId(0)) != b.chunk_replica_corrupt("f", c, NodeId(0))
        });
        assert!(seed_diverges);
        let surface_diverges = (0..200)
            .any(|c| a.chunk_replica_corrupt("f", c, NodeId(0)) != a.shuffle_corrupt("f", c, 0));
        assert!(surface_diverges);
    }

    #[test]
    fn response_attempts_draw_fresh() {
        // A corrupted response must eventually verify on a refetch.
        let plan = CorruptionPlan::new(5).responses(0.5);
        let recovered = (0..100u64).any(|k| {
            let key = k.to_le_bytes();
            plan.response_corrupt("s.", &key, 0) && !plan.response_corrupt("s.", &key, 1)
        });
        assert!(recovered);
    }

    #[test]
    fn verification_toggle() {
        let plan = CorruptionPlan::new(9).cache(0.1).without_verification();
        assert!(!plan.verification_enabled());
        assert!(plan.corrupts_cache());
        assert!(!plan.corrupts_chunks());
    }
}
