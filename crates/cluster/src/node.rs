//! Node inventory and cluster configuration.

use std::fmt;

use crate::model::{DiskModel, NetworkModel};

/// Identifier of a worker node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A fully configured simulated cluster.
///
/// Mirrors the paper's testbed defaults: 12 worker nodes, 8 map slots and 4
/// reduce slots per TaskTracker, 1 Gbps Ethernet, SAS disks.
#[derive(Clone, Debug)]
pub struct Cluster {
    num_nodes: u16,
    map_slots: u16,
    reduce_slots: u16,
    /// The network model shared by all node pairs.
    pub network: NetworkModel,
    /// The per-node disk model.
    pub disk: DiskModel,
    /// Per-node slowdown factors (1.0 = healthy); models heterogeneous or
    /// degraded machines ("the unavailability of the machine can slow
    /// down the entire MapReduce job", §3.4 footnote 3).
    slowdowns: Vec<(NodeId, f64)>,
    /// Slowdowns the scheduler does NOT know about when placing tasks
    /// (surprise stragglers); only speculative execution mitigates these.
    hidden_slowdowns: Vec<(NodeId, f64)>,
    /// Whether the scheduler launches backup copies of straggling tasks
    /// (Hadoop's speculative execution).
    speculation: bool,
    /// Flaky nodes: `(node, fraction)` — a task's FIRST attempt on the
    /// node fails after `fraction` of its duration and is retried
    /// elsewhere (Hadoop task retry).
    flaky: Vec<(NodeId, f64)>,
}

impl Cluster {
    /// Starts building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// The paper's 12-node testbed with default models.
    pub fn edbt_testbed() -> Cluster {
        Cluster::builder().build()
    }

    /// Number of worker nodes.
    pub fn num_nodes(&self) -> u16 {
        self.num_nodes
    }

    /// Map slots per node.
    pub fn map_slots(&self) -> u16 {
        self.map_slots
    }

    /// Reduce slots per node.
    pub fn reduce_slots(&self) -> u16 {
        self.reduce_slots
    }

    /// Total map slots in the cluster.
    pub fn total_map_slots(&self) -> usize {
        self.num_nodes as usize * self.map_slots as usize
    }

    /// Total reduce slots in the cluster.
    pub fn total_reduce_slots(&self) -> usize {
        self.num_nodes as usize * self.reduce_slots as usize
    }

    /// Iterates all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes).map(NodeId)
    }

    /// True if `node` belongs to this cluster.
    pub fn contains(&self, node: NodeId) -> bool {
        node.0 < self.num_nodes
    }

    /// The slowdown factor of `node` (1.0 = healthy).
    pub fn slowdown(&self, node: NodeId) -> f64 {
        self.slowdowns
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, f)| *f)
            .unwrap_or(1.0)
    }

    /// The slowdown the scheduler does not see when planning (surprise
    /// stragglers; 1.0 = none).
    pub fn hidden_slowdown(&self, node: NodeId) -> f64 {
        self.hidden_slowdowns
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, f)| *f)
            .unwrap_or(1.0)
    }

    /// True if speculative execution is enabled.
    pub fn speculation_enabled(&self) -> bool {
        self.speculation
    }

    /// If `node` is flaky, the fraction of a task's duration wasted by
    /// the failing first attempt.
    pub fn flaky_fraction(&self, node: NodeId) -> Option<f64> {
        self.flaky.iter().find(|(n, _)| *n == node).map(|(_, f)| *f)
    }
}

/// Builder for [`Cluster`].
#[derive(Clone, Debug)]
pub struct ClusterBuilder {
    num_nodes: u16,
    map_slots: u16,
    reduce_slots: u16,
    network: NetworkModel,
    disk: DiskModel,
    slowdowns: Vec<(NodeId, f64)>,
    hidden_slowdowns: Vec<(NodeId, f64)>,
    speculation: bool,
    flaky: Vec<(NodeId, f64)>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            num_nodes: 12,
            map_slots: 8,
            reduce_slots: 4,
            network: NetworkModel::gigabit(),
            disk: DiskModel::sas_hdd(),
            slowdowns: Vec::new(),
            hidden_slowdowns: Vec::new(),
            speculation: false,
            flaky: Vec::new(),
        }
    }
}

impl ClusterBuilder {
    /// Sets the number of worker nodes (at least 1).
    pub fn nodes(mut self, n: u16) -> Self {
        self.num_nodes = n.max(1);
        self
    }

    /// Sets map slots per node (at least 1).
    pub fn map_slots(mut self, n: u16) -> Self {
        self.map_slots = n.max(1);
        self
    }

    /// Sets reduce slots per node (at least 1).
    pub fn reduce_slots(mut self, n: u16) -> Self {
        self.reduce_slots = n.max(1);
        self
    }

    /// Overrides the network model.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Overrides the disk model.
    pub fn disk(mut self, disk: DiskModel) -> Self {
        self.disk = disk;
        self
    }

    /// Degrades one node: all its task durations multiply by `factor`.
    /// The scheduler knows and prices this in.
    pub fn degrade(mut self, node: NodeId, factor: f64) -> Self {
        self.slowdowns.push((node, factor.max(1.0)));
        self
    }

    /// Degrades one node *without* the scheduler's knowledge: tasks placed
    /// there straggle unexpectedly. Speculative execution is the remedy.
    pub fn degrade_hidden(mut self, node: NodeId, factor: f64) -> Self {
        self.hidden_slowdowns.push((node, factor.max(1.0)));
        self
    }

    /// Enables speculative execution: when a task overruns its planned
    /// finish time, a backup copy launches on another free slot and the
    /// earlier finisher wins (Hadoop 1.x backup tasks).
    pub fn speculation(mut self, on: bool) -> Self {
        self.speculation = on;
        self
    }

    /// Makes `node` flaky: a task's first attempt there fails after
    /// `fraction` (clamped to 0–1) of its runtime and is retried on
    /// another node (Hadoop task retry; results are unaffected because
    /// failed attempts never commit output).
    pub fn flaky(mut self, node: NodeId, fraction: f64) -> Self {
        self.flaky.push((node, fraction.clamp(0.0, 1.0)));
        self
    }

    /// Finalizes the cluster.
    pub fn build(self) -> Cluster {
        Cluster {
            num_nodes: self.num_nodes,
            map_slots: self.map_slots,
            reduce_slots: self.reduce_slots,
            network: self.network,
            disk: self.disk,
            slowdowns: self.slowdowns,
            hidden_slowdowns: self.hidden_slowdowns,
            speculation: self.speculation,
            flaky: self.flaky,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_testbed() {
        let c = Cluster::edbt_testbed();
        assert_eq!(c.num_nodes(), 12);
        assert_eq!(c.map_slots(), 8);
        assert_eq!(c.reduce_slots(), 4);
        assert_eq!(c.total_map_slots(), 96);
        assert_eq!(c.total_reduce_slots(), 48);
    }

    #[test]
    fn builder_clamps_to_one() {
        let c = Cluster::builder()
            .nodes(0)
            .map_slots(0)
            .reduce_slots(0)
            .build();
        assert_eq!(c.num_nodes(), 1);
        assert_eq!(c.map_slots(), 1);
        assert_eq!(c.reduce_slots(), 1);
    }

    #[test]
    fn node_iteration_and_membership() {
        let c = Cluster::builder().nodes(3).build();
        let ids: Vec<_> = c.nodes().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert!(c.contains(NodeId(2)));
        assert!(!c.contains(NodeId(3)));
    }
}
