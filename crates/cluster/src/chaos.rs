//! Deterministic node-crash plans.
//!
//! A [`ChaosPlan`] decides — before the job starts, as a pure function of a
//! seed — which nodes die and at which virtual timestamps. Nothing about the
//! plan consults a wall clock or an RNG stream shared with other components,
//! so a pinned seed reproduces the exact same crash schedule on every run
//! (the same hash-draw idiom as the index fault layer).
//!
//! The plan is *descriptive*: it does not kill anything by itself. The
//! scheduler replays assignments against it ([`crate::sched::schedule_phase_chaos`])
//! and the DFS strips replicas from crashed hosts; both consult the plan
//! through the query methods here.

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};
use efind_common::det::draw_unit_u64;

/// One node death: `node` stops executing tasks and serving data at `at`.
///
/// A crash is permanent for the remainder of the run — there is no rejoin,
/// matching the MapReduce-era "declare dead after missed heartbeats" model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// The node that dies.
    pub node: NodeId,
    /// Virtual time of death.
    pub at: SimTime,
}

/// A deterministic schedule of node crashes for one run.
///
/// The quiet plan ([`ChaosPlan::none`]) is the default everywhere; code that
/// receives a quiet plan must behave bit-identically to code that never heard
/// of chaos at all.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    seed: u64,
    /// Sorted by `(at, node)`; at most one event per node.
    events: Vec<CrashEvent>,
}

impl ChaosPlan {
    /// The quiet plan: no node ever crashes.
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan carrying a seed, to be populated with [`kill`](Self::kill).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds (or moves) the crash of `node` to virtual time `at`.
    ///
    /// At most one crash per node is kept — a node dies once. Events are
    /// maintained sorted by `(at, node)`.
    pub fn kill(mut self, node: NodeId, at: SimTime) -> Self {
        self.events.retain(|e| e.node != node);
        self.events.push(CrashEvent { node, at });
        self.events.sort_by_key(|e| (e.at, e.node.0));
        self
    }

    /// Draws `crashes` distinct victims out of `num_nodes` nodes, each dying
    /// at a hash-drawn time inside `[window_start, window_start + window)`.
    ///
    /// Deterministic in `(seed, num_nodes, crashes, window)`. At least one
    /// node always survives: `crashes` is clamped to `num_nodes - 1`.
    pub fn seeded(
        seed: u64,
        num_nodes: u16,
        crashes: usize,
        window_start: SimTime,
        window: SimDuration,
    ) -> Self {
        let mut plan = Self::new(seed);
        if num_nodes <= 1 || window.is_zero() {
            return plan;
        }
        let crashes = crashes.min(num_nodes as usize - 1);
        let mut salt = 0u64;
        for i in 0..crashes {
            // Rejection-sample a node not yet in the plan; the salt makes
            // each rejection a fresh, still-deterministic draw.
            let node = loop {
                let u = draw_unit_u64(seed, "chaos.node", (i as u64) << 32 | salt);
                salt += 1;
                let cand = NodeId((u * num_nodes as f64) as u16 % num_nodes);
                if !plan.events.iter().any(|e| e.node == cand) {
                    break cand;
                }
            };
            let ut = draw_unit_u64(seed, "chaos.time", i as u64);
            let at = window_start + window.mul_f64(ut);
            plan = plan.kill(node, at);
        }
        plan
    }

    /// Seed the plan was built from (0 for the quiet plan).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no node ever crashes. The quiet plan must never change any
    /// virtual observable.
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty()
    }

    /// The layer's once-per-job classification: `Armed` only when at
    /// least one kill event is scheduled. Hot paths hoist this decision
    /// outside their loops (see [`crate::profile::InjectionProfile`]).
    pub fn layer_state(&self) -> crate::profile::LayerState {
        crate::profile::LayerState::from_armed(!self.is_quiet())
    }

    /// All crash events, sorted by `(time, node)`.
    pub fn events(&self) -> &[CrashEvent] {
        &self.events
    }

    /// When `node` dies, if ever.
    pub fn crash_time(&self, node: NodeId) -> Option<SimTime> {
        self.events.iter().find(|e| e.node == node).map(|e| e.at)
    }

    /// True when `node` is dead at (or before) virtual time `t`.
    pub fn is_dead_at(&self, node: NodeId, t: SimTime) -> bool {
        self.crash_time(node).is_some_and(|at| at <= t)
    }

    /// Nodes already dead at virtual time `t`, in crash order.
    ///
    /// Returns a borrowed iterator rather than a fresh `Vec` — scheduling
    /// replays query this inside per-assignment loops, and an allocation
    /// per query was pure overhead (callers that need a set can still
    /// `collect()`). Like every chaos query, loops must consult it only
    /// behind a [`LayerState`](crate::profile::LayerState) check (lint
    /// L007 flags unguarded query calls in hot loops).
    pub fn dead_at(&self, t: SimTime) -> impl Iterator<Item = NodeId> + '_ {
        self.events
            .iter()
            .filter(move |e| e.at <= t)
            .map(|e| e.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_quiet() {
        assert!(ChaosPlan::none().is_quiet());
        assert!(ChaosPlan::new(42).is_quiet());
        assert_eq!(ChaosPlan::none().crash_time(NodeId(0)), None);
    }

    #[test]
    fn kill_keeps_events_sorted_and_deduped() {
        let plan = ChaosPlan::new(1)
            .kill(NodeId(3), SimTime::from_nanos(500))
            .kill(NodeId(1), SimTime::from_nanos(100))
            .kill(NodeId(3), SimTime::from_nanos(200));
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.events()[0].node, NodeId(1));
        assert_eq!(plan.events()[1].at, SimTime::from_nanos(200));
        assert!(plan.is_dead_at(NodeId(1), SimTime::from_nanos(100)));
        assert!(!plan.is_dead_at(NodeId(1), SimTime::from_nanos(99)));
    }

    #[test]
    fn seeded_is_deterministic_and_leaves_a_survivor() {
        let a = ChaosPlan::seeded(
            0xC0FFEE,
            4,
            10, // clamped to 3
            SimTime::ZERO,
            SimDuration::from_millis(100),
        );
        let b = ChaosPlan::seeded(
            0xC0FFEE,
            4,
            10,
            SimTime::ZERO,
            SimDuration::from_millis(100),
        );
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 3);
        let dead: Vec<NodeId> = a
            .dead_at(SimTime::ZERO + SimDuration::from_millis(100))
            .collect();
        assert_eq!(dead.len(), 3);
        // One of the four nodes survives.
        assert!((0..4).any(|n| !dead.contains(&NodeId(n))));
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosPlan::seeded(1, 12, 2, SimTime::ZERO, SimDuration::from_secs_f64(1.0));
        let b = ChaosPlan::seeded(2, 12, 2, SimTime::ZERO, SimDuration::from_secs_f64(1.0));
        assert_ne!(a, b);
    }
}
