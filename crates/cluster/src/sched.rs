//! Slot-based event-driven task scheduler.
//!
//! Models Hadoop 1.x task scheduling: every node offers a fixed number of
//! map and reduce slots; free slots pull pending tasks, preferring tasks
//! whose input data is local (data locality) or — when EFind's index
//! locality strategy is active — tasks whose index partition lives on the
//! node (§3.4). Task durations depend on placement: a task scheduled off its
//! input replicas pays a network transfer for its input, and a task
//! scheduled off its affinity nodes pays the configured affinity penalty
//! (the remote-lookup network cost in the index locality cost model, Eq. 4).

use crate::chaos::ChaosPlan;
use crate::detector::{DetectorConfig, Verdict};
use crate::netsplit::PartitionPlan;
use crate::node::{Cluster, NodeId};
use crate::time::{SimDuration, SimTime};

/// Which slot pool a task occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// A map slot.
    Map,
    /// A reduce slot.
    Reduce,
}

/// A schedulable task with placement-dependent cost.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Caller-assigned identifier, echoed in the [`Assignment`].
    pub id: usize,
    /// Slot pool.
    pub kind: SlotKind,
    /// Placement-independent cost (CPU, lookups, shuffle already charged).
    pub base: SimDuration,
    /// Bytes of input read at task start (0 if charged elsewhere).
    pub input_bytes: u64,
    /// Nodes holding a local replica of the input. Empty means the input is
    /// placement-neutral (charged as a local disk read).
    pub input_hosts: Vec<NodeId>,
    /// Index-locality affinity nodes (empty = no affinity).
    pub affinity: Vec<NodeId>,
    /// Extra cost incurred when the task does **not** run on an affinity
    /// node (e.g. remote index lookup transfer time).
    pub affinity_penalty: SimDuration,
    /// If true, the task may ONLY run on its affinity nodes — the hard
    /// co-location the paper's footnote 3 warns against (provided for the
    /// soft-vs-hard comparison experiment).
    pub hard_affinity: bool,
}

impl TaskSpec {
    /// A placement-neutral task.
    pub fn simple(id: usize, kind: SlotKind, base: SimDuration) -> Self {
        TaskSpec {
            id,
            kind,
            base,
            input_bytes: 0,
            input_hosts: Vec::new(),
            affinity: Vec::new(),
            affinity_penalty: SimDuration::ZERO,
            hard_affinity: false,
        }
    }

    fn duration_on(&self, node: NodeId, cluster: &Cluster) -> SimDuration {
        let mut d = self.base;
        if self.input_bytes > 0 {
            d += cluster.disk.read(self.input_bytes);
            if !self.input_hosts.is_empty() && !self.input_hosts.contains(&node) {
                d += cluster.network.transfer(self.input_bytes);
            }
        }
        if !self.affinity.is_empty() && !self.affinity.contains(&node) {
            d += self.affinity_penalty;
        }
        d.mul_f64(cluster.slowdown(node))
    }
}

/// The placement and timing of one task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// The task's caller-assigned id.
    pub task_id: usize,
    /// The node the task ran on.
    pub node: NodeId,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time.
    pub end: SimTime,
    /// Zero-based wave index: position of the task in its slot's queue.
    pub wave: usize,
    /// True if the task ran on one of its input replica hosts.
    pub input_local: bool,
    /// True if the task ran on one of its affinity nodes (or had none).
    pub affinity_hit: bool,
    /// True if a speculative backup copy of this task won the race.
    pub speculated: bool,
}

/// A scheduled phase.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// One assignment per task, in input order.
    pub assignments: Vec<Assignment>,
    /// Completion time of the last task.
    pub makespan: SimTime,
    /// Speculative backup copies launched (0 unless the cluster enables
    /// speculation and surprise stragglers appear).
    pub speculative_copies: usize,
    /// Failed first attempts retried on another node (flaky-node model).
    pub retried_tasks: usize,
    /// Attempts killed mid-run by a node crash and re-executed elsewhere
    /// (chaos plan; 0 under the quiet plan).
    pub crashed_attempts: usize,
    /// Task-level effects of the gray-failure replay (all zero under a
    /// quiet partition plan).
    pub partition: PartitionReplay,
}

/// Task-level bookkeeping of one gray-failure replay pass.
///
/// Node-level detector outcomes (suspected / refuted / confirmed counts,
/// re-replication intents) are *not* counted here — the runner derives
/// them once per job from [`DetectorConfig::assess_all`], so a job whose
/// map and reduce phases both replay the same plan does not double-count
/// per-node events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionReplay {
    /// Attempts re-placed onto a reachable node after their node was
    /// suspected (includes pre-dispatch migrations off suspected nodes).
    pub replaced_tasks: u64,
    /// Tasks whose result delivery waited for a partition that healed
    /// before the detector noticed it (a stall, never a suspicion).
    pub stalled_tasks: u64,
    /// Total virtual time results waited on heals.
    pub stall: SimDuration,
    /// Duplicate results reconciled exactly-once: a replaced task's
    /// original attempt (or a losing replacement) also completed, and its
    /// late answer was discarded.
    pub orphan_results: u64,
    /// Tasks stretched by a degraded (but connected) link.
    pub slowed_tasks: u64,
    /// Total virtual time added by link slowdowns.
    pub slowdown: SimDuration,
}

impl PartitionReplay {
    /// True when the replay changed nothing.
    pub fn is_empty(&self) -> bool {
        *self == PartitionReplay::default()
    }
}

impl Schedule {
    /// Ids of the tasks in wave 0 — the first task of every busy slot.
    ///
    /// The adaptive optimizer (§4.1) collects statistics from this wave
    /// before deciding whether to re-optimize the rest of the job.
    pub fn first_wave_ids(&self) -> Vec<usize> {
        self.assignments
            .iter()
            .filter(|a| a.wave == 0)
            .map(|a| a.task_id)
            .collect()
    }

    /// Completion time of the first wave (max end among wave-0 tasks).
    pub fn first_wave_end(&self) -> SimTime {
        self.assignments
            .iter()
            .filter(|a| a.wave == 0)
            .map(|a| a.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Fraction of tasks that read their input locally.
    pub fn input_locality(&self) -> f64 {
        if self.assignments.is_empty() {
            return 1.0;
        }
        let local = self.assignments.iter().filter(|a| a.input_local).count();
        local as f64 / self.assignments.len() as f64
    }
}

#[derive(Clone, Copy)]
struct Slot {
    node: NodeId,
    free: SimTime,
    used: usize,
}

/// Schedules `tasks` onto the cluster's slots of their kind, starting at
/// `phase_start`, and returns the resulting timeline.
///
/// Greedy earliest-slot-first with locality preference, approximating the
/// Hadoop JobTracker: the next free slot picks (1) a pending task with
/// affinity for the node, then (2) one with a local input replica, then (3)
/// the oldest pending task.
pub fn schedule_phase(cluster: &Cluster, tasks: &[TaskSpec], phase_start: SimTime) -> Schedule {
    schedule_phase_chaos(cluster, tasks, phase_start, &ChaosPlan::none())
}

/// [`schedule_phase`] with a node-crash plan replayed on top.
///
/// Planning is crash-blind (the JobTracker cannot foresee a death), exactly
/// like the hidden-straggler model: after placement, assignments are replayed
/// against the plan — an attempt interrupted mid-run is killed at the crash
/// instant and re-executed on the then-best surviving node, and tasks queued
/// on a dead node's slots migrate to survivors. With a quiet plan the replay
/// is skipped entirely, so the result is bit-identical to [`schedule_phase`].
pub fn schedule_phase_chaos(
    cluster: &Cluster,
    tasks: &[TaskSpec],
    phase_start: SimTime,
    chaos: &ChaosPlan,
) -> Schedule {
    let mut schedule = Schedule {
        assignments: Vec::with_capacity(tasks.len()),
        makespan: phase_start,
        speculative_copies: 0,
        retried_tasks: 0,
        crashed_attempts: 0,
        partition: PartitionReplay::default(),
    };
    if tasks.is_empty() {
        return schedule;
    }
    let kind = tasks[0].kind;
    assert!(
        tasks.iter().all(|t| t.kind == kind),
        "a phase must be homogeneous in slot kind"
    );
    let slots_per_node = match kind {
        SlotKind::Map => cluster.map_slots(),
        SlotKind::Reduce => cluster.reduce_slots(),
    };
    // Slots interleaved across nodes (slot 0 of every node, then slot 1,
    // …) so ties in finish time spread tasks over distinct machines.
    let mut slots: Vec<Slot> = (0..slots_per_node)
        .flat_map(|_| {
            cluster.nodes().map(|node| Slot {
                node,
                free: phase_start,
                used: 0,
            })
        })
        .collect();

    // Task-driven greedy (earliest-finish-time): each task, in submission
    // order, takes the slot where it finishes first. Placement-dependent
    // costs (remote input transfer, the index-locality affinity penalty)
    // are part of the finish time, so the scheduler weighs "wait for a
    // local/affine slot" against "run remotely now" with real prices —
    // the trade-off §3.4 describes without hard co-location.
    let mut assignments: Vec<Option<Assignment>> = vec![None; tasks.len()];
    // Which slot each task finally ran on — needed to replay per-slot
    // queues when hidden slowdowns stretch runtimes after placement.
    let mut assigned_slot: Vec<usize> = vec![0; tasks.len()];
    // Nodes whose tasks failed get blacklisted for the rest of the phase
    // (the Hadoop JobTracker's per-job blacklist).
    let mut blacklisted: Vec<NodeId> = Vec::new();
    for (task_idx, task) in tasks.iter().enumerate() {
        let mut best: Option<(SimTime, SimTime, usize)> = None; // (end, start, slot)
        for pass in 0..2 {
            for (slot_idx, slot) in slots.iter().enumerate() {
                // First pass avoids blacklisted nodes; a second pass
                // admits them if nothing else is eligible.
                if pass == 0 && blacklisted.contains(&slot.node) {
                    continue;
                }
                if task.hard_affinity
                    && !task.affinity.is_empty()
                    && !task.affinity.contains(&slot.node)
                {
                    continue;
                }
                let start = slot.free;
                let end = start + task.duration_on(slot.node, cluster);
                if best.is_none_or(|(bend, _, _)| end < bend) {
                    best = Some((end, start, slot_idx));
                }
            }
            if best.is_some() {
                break;
            }
        }
        let (mut end, start, slot_idx) = best.unwrap_or_else(|| {
            // Hard affinity to nodes outside the cluster: fall back to
            // any slot (the penalty applies).
            let slot = slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.free)
                .map(|(i, _)| i)
                .expect("cluster has at least one slot");
            let start = slots[slot].free;
            (
                start + task.duration_on(slots[slot].node, cluster),
                start,
                slot,
            )
        });
        let mut node = slots[slot_idx].node;
        let wave = slots[slot_idx].used;
        let mut attempt_start = start;
        let mut final_slot = slot_idx;

        // Flaky-node model: the first attempt on a flaky node fails after
        // a fraction of its runtime; the retry goes to the then-best
        // OTHER node, preferring machines that are not themselves flaky
        // (Hadoop avoids the failed machine; a retry landing on another
        // flaky node would just fail again).
        if let Some(fraction) = cluster.flaky_fraction(node) {
            if !blacklisted.contains(&node) {
                blacklisted.push(node);
            }
            let wasted = task.duration_on(node, cluster).mul_f64(fraction);
            let fail_at = start + wasted;
            slots[slot_idx].free = fail_at;
            slots[slot_idx].used += 1;
            schedule.retried_tasks += 1;
            // Retry placement in strict preference order: (1) a healthy
            // node other than the failed attempt's, (2) any OTHER node
            // even if flaky — it may fail again, but re-running where the
            // attempt just failed is guaranteed waste, so the fallback
            // pass must never land the retry back on the original node —
            // and only with no other eligible slot at all (single-node
            // cluster, hard affinity) (3) the original node itself.
            let mut retry_best: Option<(SimTime, SimTime, usize)> = None;
            for admit_flaky in [false, true] {
                for (i, slot) in slots.iter().enumerate() {
                    // Both passes exclude the first attempt's node.
                    if slot.node == node {
                        continue;
                    }
                    if !admit_flaky && cluster.flaky_fraction(slot.node).is_some() {
                        continue;
                    }
                    if task.hard_affinity
                        && !task.affinity.is_empty()
                        && !task.affinity.contains(&slot.node)
                    {
                        continue;
                    }
                    let rstart = slot.free.max(fail_at);
                    let rend = rstart + task.duration_on(slot.node, cluster);
                    if retry_best.is_none_or(|(bend, _, _)| rend < bend) {
                        retry_best = Some((rend, rstart, i));
                    }
                }
                if retry_best.is_some() {
                    break;
                }
            }
            if let Some((rend, rstart, rslot)) = retry_best {
                debug_assert_ne!(slots[rslot].node, node, "retry must avoid the failed node");
                node = slots[rslot].node;
                attempt_start = rstart;
                end = rend;
                final_slot = rslot;
                slots[rslot].free = rend;
                slots[rslot].used += 1;
            } else {
                // Single-node cluster: retry on the same node.
                attempt_start = fail_at;
                end = fail_at + task.duration_on(node, cluster);
                slots[slot_idx].free = end;
            }
        } else {
            slots[slot_idx].free = end;
            slots[slot_idx].used += 1;
        }

        assigned_slot[task_idx] = final_slot;
        assignments[task_idx] = Some(Assignment {
            task_id: task.id,
            node,
            start: attempt_start,
            end,
            wave,
            input_local: task.input_hosts.is_empty() || task.input_hosts.contains(&node),
            affinity_hit: task.affinity.is_empty() || task.affinity.contains(&node),
            speculated: false,
        });
        schedule.makespan = schedule.makespan.max(end);
    }

    schedule.assignments = assignments.into_iter().map(|a| a.unwrap()).collect();

    // --- Surprise stragglers & speculative execution. ---
    // The plan above priced only the *known* slowdowns. Hidden slowdowns
    // stretch the actual runtimes after placement; with speculation on, a
    // backup copy launches once a task overruns its planned finish, and
    // the earlier finisher wins (Hadoop 1.x backup tasks).
    let any_hidden = cluster.nodes().any(|n| cluster.hidden_slowdown(n) > 1.0);
    if any_hidden {
        // Replay each slot's queue with true runtimes: a stretched task
        // delays every later task queued on the same slot, so multi-wave
        // phases feel a straggler across all of its waves, not just the
        // first victim. Backup copies are priced on a separate per-slot
        // availability ledger (healthy slots free up as planned) — they
        // cap their victim's finish without delaying planned tasks, an
        // approximation of the JobTracker killing slow copies promptly.
        let mut slot_free: Vec<SimTime> = vec![phase_start; slots.len()];
        let mut backup_free: Vec<(NodeId, SimTime)> =
            slots.iter().map(|s| (s.node, s.free)).collect();
        let mut order: Vec<usize> = (0..schedule.assignments.len()).collect();
        order.sort_by_key(|&i| (schedule.assignments[i].start, i));
        schedule.makespan = phase_start;
        for i in order {
            let task = &tasks[i];
            let assignment = &mut schedule.assignments[i];
            let slot = assigned_slot[i];
            let planned = assignment.end.since(assignment.start);
            // Hidden delays only push tasks later, never earlier, so the
            // planned start is a floor on the replayed one.
            let start = assignment.start.max(slot_free[slot]);
            let hidden = cluster.hidden_slowdown(assignment.node);
            let actual_end = start + planned.mul_f64(hidden);
            assignment.start = start;
            assignment.end = actual_end;
            if hidden > 1.0 && cluster.speculation_enabled() {
                // The JobTracker notices the overrun at the planned
                // finish and launches a backup on the then-freest
                // healthy slot.
                let notice = start + planned;
                let backup = backup_free
                    .iter_mut()
                    .filter(|(n, _)| cluster.hidden_slowdown(*n) <= 1.0)
                    .min_by_key(|(_, free)| *free);
                if let Some((bnode, bfree)) = backup {
                    let bstart = notice.max(*bfree);
                    let bdur = task
                        .duration_on(*bnode, cluster)
                        .mul_f64(cluster.hidden_slowdown(*bnode));
                    let bend = bstart + bdur;
                    *bfree = bend;
                    schedule.speculative_copies += 1;
                    if bend < actual_end {
                        assignment.node = *bnode;
                        assignment.start = bstart;
                        assignment.end = bend;
                        assignment.speculated = true;
                        assignment.input_local =
                            task.input_hosts.is_empty() || task.input_hosts.contains(bnode);
                        assignment.affinity_hit =
                            task.affinity.is_empty() || task.affinity.contains(bnode);
                    }
                }
            }
            // The original slot is released at the winner's finish (the
            // loser copy is killed then).
            slot_free[slot] = slot_free[slot].max(assignment.end.min(actual_end));
            schedule.makespan = schedule.makespan.max(assignment.end);
        }
    }

    // --- Node-crash replay. ---
    // Like the hidden-straggler pass, crashes are invisible to the planner;
    // the final assignments are replayed against the chaos plan. A task
    // whose node dies before it starts simply migrates; one interrupted
    // mid-run is killed at the crash instant (the wasted work stays on the
    // dead machine, which serves nothing afterwards anyway) and re-executed
    // on the surviving node where it finishes earliest. The layer is
    // classified once here, outside the replay loop: a quiet plan skips
    // the whole pass, keeping EFT placement free of per-task crash checks.
    if chaos.layer_state().is_armed() {
        let mut slot_free: Vec<SimTime> = vec![phase_start; slots.len()];
        let mut order: Vec<usize> = (0..schedule.assignments.len()).collect();
        order.sort_by_key(|&i| (schedule.assignments[i].start, i));
        schedule.makespan = phase_start;
        for i in order {
            let task = &tasks[i];
            let slot = assigned_slot[i];
            let assignment = &mut schedule.assignments[i];
            let planned = assignment.end.since(assignment.start);
            let start = assignment.start.max(slot_free[slot]);
            let end = start + planned;
            let crash = chaos.crash_time(assignment.node);
            let needs_move = match crash {
                Some(at) if at <= start => Some(start.max(at)), // dead before launch
                Some(at) if at < end => {
                    // Killed mid-run: attempt wasted up to the crash.
                    schedule.crashed_attempts += 1;
                    Some(at)
                }
                _ => None,
            };
            match needs_move {
                None => {
                    assignment.start = start;
                    assignment.end = end;
                    slot_free[slot] = end;
                }
                Some(floor) => {
                    // EFT over slots whose node survives the candidate
                    // attempt end-to-end; hard affinity is honoured first
                    // and relaxed only when it leaves no live candidate.
                    let mut best: Option<(SimTime, SimTime, usize)> = None;
                    for honour_affinity in [true, false] {
                        for (j, s) in slots.iter().enumerate() {
                            if honour_affinity
                                && task.hard_affinity
                                && !task.affinity.is_empty()
                                && !task.affinity.contains(&s.node)
                            {
                                continue;
                            }
                            let rstart = slot_free[j].max(floor);
                            let rdur = task
                                .duration_on(s.node, cluster)
                                .mul_f64(cluster.hidden_slowdown(s.node));
                            let rend = rstart + rdur;
                            if chaos.crash_time(s.node).is_some_and(|at| at < rend) {
                                continue;
                            }
                            if best.is_none_or(|(bend, _, _)| rend < bend) {
                                best = Some((rend, rstart, j));
                            }
                        }
                        if best.is_some() {
                            break;
                        }
                    }
                    // A plan may only kill a strict subset of the nodes
                    // (`ChaosPlan::seeded` guarantees a survivor), so a
                    // candidate always exists; if a hand-built plan kills
                    // everything, the attempt finishes on its original
                    // node as if the crash arrived just after.
                    if let Some((rend, rstart, rslot)) = best {
                        assignment.node = slots[rslot].node;
                        assignment.start = rstart;
                        assignment.end = rend;
                        assignment.input_local = task.input_hosts.is_empty()
                            || task.input_hosts.contains(&assignment.node);
                        assignment.affinity_hit =
                            task.affinity.is_empty() || task.affinity.contains(&assignment.node);
                        slot_free[rslot] = rend;
                    } else {
                        assignment.start = start;
                        assignment.end = end;
                        slot_free[slot] = end;
                    }
                }
            }
            schedule.makespan = schedule.makespan.max(assignment.end);
        }
    }
    schedule
}

/// [`schedule_phase_chaos`] with a gray-failure plan replayed on top,
/// through the heartbeat detector instead of an omniscient master.
///
/// Planning stays failure-blind; after the crash replay, assignments are
/// replayed against the partition plan. Unlike a crash, an isolated node
/// keeps *executing* — only visibility is cut — so three outcomes exist:
///
/// * **Stall** — the partition heals before the detector fires: the task
///   finishes on its node and its result merely arrives at the heal.
/// * **Replace + reconcile** — the node is suspected: the attempt is
///   re-placed on a reachable node at the suspicion instant. If the node
///   later rejoins (refuted suspicion, or a slow-link false positive),
///   both attempts complete and the later answer is discarded — counted
///   as an orphan, applied exactly once.
/// * **Gone** — the partition never heals (confirmed): only the
///   replacement's result ever lands.
///
/// Link slowdowns stretch the affected span of a task's runtime. With a
/// quiet partition plan the whole pass is skipped, bit-identical to
/// [`schedule_phase_chaos`].
pub fn schedule_phase_gray(
    cluster: &Cluster,
    tasks: &[TaskSpec],
    phase_start: SimTime,
    chaos: &ChaosPlan,
    partition: &PartitionPlan,
    detector: &DetectorConfig,
) -> Schedule {
    let mut schedule = schedule_phase_chaos(cluster, tasks, phase_start, chaos);
    if !partition.layer_state().is_armed() || tasks.is_empty() {
        return schedule;
    }
    let kind = tasks[0].kind;
    let slots_per_node = match kind {
        SlotKind::Map => cluster.map_slots(),
        SlotKind::Reduce => cluster.reduce_slots(),
    };
    let slot_nodes: Vec<NodeId> = (0..slots_per_node).flat_map(|_| cluster.nodes()).collect();
    let mut slot_free: Vec<SimTime> = vec![phase_start; slot_nodes.len()];
    // A replacement may run on any node; track its slot occupancy on the
    // same ledger so replacements queue instead of stacking.
    let suspicions = detector.assess_all(partition, cluster.num_nodes());
    let suspicion_of = |node: NodeId| suspicions.iter().find(|s| s.node == node).copied();
    // Extra runtime a degraded link adds to a span `[start, end)` on
    // `node` — the stretch applies only to the overlapping portion.
    let link_stretch = |node: NodeId, start: SimTime, end: SimTime| -> SimDuration {
        match partition.slow_window(node) {
            Some(s) if s.factor > 1.0 => {
                let lo = start.max(s.start);
                let hi = match s.heal {
                    Some(h) => {
                        if end < h {
                            end
                        } else {
                            h
                        }
                    }
                    None => end,
                };
                hi.since(lo).mul_f64(s.factor - 1.0)
            }
            _ => SimDuration::ZERO,
        }
    };
    let mut order: Vec<usize> = (0..schedule.assignments.len()).collect();
    order.sort_by_key(|&i| (schedule.assignments[i].start, i));
    schedule.makespan = phase_start;
    for i in order {
        let task = &tasks[i];
        let assignment = &mut schedule.assignments[i];
        let slot = slot_nodes
            .iter()
            .position(|&n| n == assignment.node)
            .expect("assignment node has a slot");
        let planned = assignment.end.since(assignment.start);
        let start = assignment.start.max(slot_free[slot]);
        let mut end = start + planned;
        // Degraded link: the overlapping span runs `factor`× slower.
        let stretch = link_stretch(assignment.node, start, end);
        if !stretch.is_zero() {
            end += stretch;
            schedule.partition.slowed_tasks += 1;
            schedule.partition.slowdown += stretch;
        }
        assignment.start = start;
        assignment.end = end;

        let window = partition.isolation_window(assignment.node);
        let suspicion = suspicion_of(assignment.node);
        // Tasks fully delivered before any impairment opened are
        // untouched; so are tasks on never-impaired nodes.
        let affected_from = match (window, suspicion) {
            (Some((ps, _)), _) => Some(ps),
            (None, Some(s)) => Some(s.suspect_at), // slow-link false positive
            (None, None) => None,
        };
        // A task dispatched after the node rejoined runs on a full member
        // again — suspicion is history by then.
        let rejoined_before_start = suspicion.is_some_and(|s| match s.verdict {
            Verdict::Refuted { rejoin_at } => start >= rejoin_at,
            Verdict::Confirmed => false,
        });
        if affected_from.filter(|&f| end > f).is_none() || rejoined_before_start {
            slot_free[slot] = end;
            schedule.makespan = schedule.makespan.max(end);
            continue;
        }

        match suspicion {
            None => {
                // Isolation healed before the detector noticed: the task
                // keeps its node and its result waits for the heal.
                let heal = window
                    .and_then(|(_, h)| h)
                    .expect("undetected impairment must heal");
                slot_free[slot] = end;
                if end < heal {
                    schedule.partition.stall += heal.since(end);
                    schedule.partition.stalled_tasks += 1;
                    assignment.end = heal;
                }
            }
            Some(s) => {
                // When (if ever) the original attempt's result becomes
                // visible to the master: at its physical end once the
                // node is back, never for a confirmed partition.
                let orig_visible = match (window, s.verdict) {
                    (Some(_), Verdict::Confirmed) => None,
                    (Some(_), Verdict::Refuted { rejoin_at }) => Some(end.max(rejoin_at)),
                    // False positive: the node was reachable all along.
                    (None, _) => Some(end),
                };
                // Dispatched before suspicion? Then work ran (and may
                // produce an orphan). At or after suspicion the master
                // simply routes the task elsewhere — nothing to orphan.
                let ran_on_suspect = start < s.suspect_at;
                slot_free[slot] = if ran_on_suspect { end } else { start };
                // Re-place at the suspicion instant on a node that is
                // reachable for the whole candidate attempt; hard
                // affinity is honoured first, then relaxed.
                let floor = s.suspect_at.max(start);
                let mut best: Option<(SimTime, SimTime, usize)> = None;
                for honour_affinity in [true, false] {
                    for (j, &node) in slot_nodes.iter().enumerate() {
                        if node == assignment.node {
                            continue;
                        }
                        if honour_affinity
                            && task.hard_affinity
                            && !task.affinity.is_empty()
                            && !task.affinity.contains(&node)
                        {
                            continue;
                        }
                        let rstart = slot_free[j].max(floor);
                        let mut rdur = task
                            .duration_on(node, cluster)
                            .mul_f64(cluster.hidden_slowdown(node));
                        rdur += link_stretch(node, rstart, rstart + rdur);
                        let rend = rstart + rdur;
                        if partition.is_isolated_at(node, rstart)
                            || partition.is_isolated_at(node, rend)
                        {
                            continue;
                        }
                        if chaos.crash_time(node).is_some_and(|at| at < rend) {
                            continue;
                        }
                        if best.is_none_or(|(bend, _, _)| rend < bend) {
                            best = Some((rend, rstart, j));
                        }
                    }
                    if best.is_some() {
                        break;
                    }
                }
                match best {
                    Some((rend, rstart, rslot)) => {
                        schedule.partition.replaced_tasks += 1;
                        match orig_visible {
                            // Original's answer lands first: replacement
                            // killed on arrival, its work reconciled away.
                            Some(v) if v <= rend => {
                                if ran_on_suspect {
                                    assignment.end = v;
                                }
                                schedule.partition.orphan_results += 1;
                                slot_free[rslot] = slot_free[rslot].max(v.min(rend));
                            }
                            // Replacement wins; a rejoining original that
                            // also ran delivers a late duplicate.
                            other => {
                                if other.is_some() && ran_on_suspect {
                                    schedule.partition.orphan_results += 1;
                                }
                                assignment.node = slot_nodes[rslot];
                                assignment.start = rstart;
                                assignment.end = rend;
                                assignment.input_local = task.input_hosts.is_empty()
                                    || task.input_hosts.contains(&assignment.node);
                                assignment.affinity_hit = task.affinity.is_empty()
                                    || task.affinity.contains(&assignment.node);
                                slot_free[rslot] = rend;
                            }
                        }
                    }
                    // Nothing reachable to re-place onto: wait out the
                    // original if it can ever deliver (the runner turns
                    // truly total isolation into `Error::Partitioned`).
                    None => {
                        if let Some(v) = orig_visible {
                            if ran_on_suspect {
                                assignment.end = v;
                            }
                        }
                    }
                }
            }
        }
        schedule.makespan = schedule.makespan.max(assignment.end);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> Cluster {
        Cluster::builder()
            .nodes(2)
            .map_slots(2)
            .reduce_slots(1)
            .build()
    }

    fn task(id: usize, millis: u64) -> TaskSpec {
        TaskSpec::simple(id, SlotKind::Map, SimDuration::from_millis(millis))
    }

    #[test]
    fn empty_phase() {
        let s = schedule_phase(&small_cluster(), &[], SimTime::ZERO);
        assert!(s.assignments.is_empty());
        assert_eq!(s.makespan, SimTime::ZERO);
    }

    #[test]
    fn parallel_tasks_overlap() {
        let c = small_cluster(); // 4 map slots total
        let tasks: Vec<_> = (0..4).map(|i| task(i, 10)).collect();
        let s = schedule_phase(&c, &tasks, SimTime::ZERO);
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_millis(10));
        assert!(s.assignments.iter().all(|a| a.wave == 0));
    }

    #[test]
    fn waves_form_when_tasks_exceed_slots() {
        let c = small_cluster();
        let tasks: Vec<_> = (0..8).map(|i| task(i, 10)).collect();
        let s = schedule_phase(&c, &tasks, SimTime::ZERO);
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_millis(20));
        assert_eq!(s.first_wave_ids().len(), 4);
        assert_eq!(
            s.first_wave_end(),
            SimTime::ZERO + SimDuration::from_millis(10)
        );
    }

    #[test]
    fn phase_start_offsets_everything() {
        let c = small_cluster();
        let start = SimTime::ZERO + SimDuration::from_secs(5);
        let s = schedule_phase(&c, &[task(0, 10)], start);
        assert_eq!(s.assignments[0].start, start);
        assert_eq!(s.makespan, start + SimDuration::from_millis(10));
    }

    #[test]
    fn input_locality_is_preferred_and_cheaper() {
        let c = small_cluster();
        let mk = |id: usize, host: u16| TaskSpec {
            id,
            kind: SlotKind::Map,
            base: SimDuration::from_millis(1),
            input_bytes: 12_000_000, // 0.1 s local read at 120 MB/s
            input_hosts: vec![NodeId(host)],
            affinity: Vec::new(),
            affinity_penalty: SimDuration::ZERO,
            hard_affinity: false,
        };
        // Two tasks per node, matching the two slots per node.
        let tasks = vec![mk(0, 0), mk(1, 0), mk(2, 1), mk(3, 1)];
        let s = schedule_phase(&c, &tasks, SimTime::ZERO);
        assert_eq!(s.input_locality(), 1.0, "{:?}", s.assignments);
        for a in &s.assignments {
            assert!(a.input_local);
        }
    }

    #[test]
    fn remote_input_pays_network_transfer() {
        // One node holds all inputs but tasks outnumber its slots, so some
        // run remotely and take longer.
        let c = Cluster::builder().nodes(2).map_slots(1).build();
        let mk = |id: usize| TaskSpec {
            id,
            kind: SlotKind::Map,
            base: SimDuration::ZERO,
            input_bytes: 120_000_000, // 1 s local read
            input_hosts: vec![NodeId(0)],
            affinity: Vec::new(),
            affinity_penalty: SimDuration::ZERO,
            hard_affinity: false,
        };
        let tasks = vec![mk(0), mk(1)];
        let s = schedule_phase(&c, &tasks, SimTime::ZERO);
        let durations: Vec<f64> = s
            .assignments
            .iter()
            .map(|a| a.end.since(a.start).as_secs_f64())
            .collect();
        let local = durations.iter().cloned().fold(f64::MAX, f64::min);
        let remote = durations.iter().cloned().fold(0.0, f64::max);
        assert!((local - 1.0).abs() < 1e-6);
        assert!(remote > 1.9, "remote read should add ~0.96 s: {remote}");
    }

    #[test]
    fn affinity_steers_placement() {
        let c = Cluster::builder().nodes(4).map_slots(1).build();
        let mk = |id: usize, node: u16| TaskSpec {
            id,
            kind: SlotKind::Map,
            base: SimDuration::from_millis(10),
            input_bytes: 0,
            input_hosts: Vec::new(),
            affinity: vec![NodeId(node)],
            affinity_penalty: SimDuration::from_secs(10),
            hard_affinity: false,
        };
        let tasks = vec![mk(0, 3), mk(1, 2), mk(2, 1), mk(3, 0)];
        let s = schedule_phase(&c, &tasks, SimTime::ZERO);
        for a in &s.assignments {
            assert!(a.affinity_hit, "task {} on {}", a.task_id, a.node);
        }
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_millis(10));
    }

    #[test]
    fn affinity_miss_pays_penalty() {
        let c = Cluster::builder().nodes(1).map_slots(1).build();
        let t = TaskSpec {
            id: 0,
            kind: SlotKind::Map,
            base: SimDuration::from_millis(1),
            input_bytes: 0,
            input_hosts: Vec::new(),
            affinity: vec![NodeId(5)], // not in this cluster
            affinity_penalty: SimDuration::from_millis(99),
            hard_affinity: false,
        };
        let s = schedule_phase(&c, &[t], SimTime::ZERO);
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_millis(100));
        assert!(!s.assignments[0].affinity_hit);
    }

    #[test]
    fn degraded_nodes_are_avoided_when_possible() {
        let c = Cluster::builder()
            .nodes(2)
            .map_slots(1)
            .degrade(NodeId(0), 10.0)
            .build();
        // Two tasks, two slots: both finish fastest if the second waits
        // for the healthy node? No — EFT compares 10x-now vs 1x-queued.
        let tasks = vec![task(0, 100), task(1, 100)];
        let s = schedule_phase(&c, &tasks, SimTime::ZERO);
        // One runs on node1 at 100ms; the other either waits (200ms) or
        // runs degraded (1000ms) — EFT picks waiting.
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_millis(200));
        assert!(s.assignments.iter().all(|a| a.node == NodeId(1)));
    }

    #[test]
    fn hard_affinity_pins_despite_degradation() {
        let c = Cluster::builder()
            .nodes(2)
            .map_slots(1)
            .degrade(NodeId(0), 10.0)
            .build();
        let mk = |id: usize, hard: bool| TaskSpec {
            id,
            kind: SlotKind::Map,
            base: SimDuration::from_millis(100),
            input_bytes: 0,
            input_hosts: Vec::new(),
            affinity: vec![NodeId(0)],
            affinity_penalty: SimDuration::from_millis(10),
            hard_affinity: hard,
        };
        // Soft: pays the 10ms penalty on node1 rather than 10x on node0.
        let soft = schedule_phase(&c, &[mk(0, false)], SimTime::ZERO);
        assert_eq!(soft.assignments[0].node, NodeId(1));
        assert_eq!(soft.makespan, SimTime::ZERO + SimDuration::from_millis(110));
        // Hard: stuck on the degraded node.
        let hard = schedule_phase(&c, &[mk(0, true)], SimTime::ZERO);
        assert_eq!(hard.assignments[0].node, NodeId(0));
        assert_eq!(hard.makespan, SimTime::ZERO + SimDuration::from_secs(1));
    }

    #[test]
    fn hidden_stragglers_stretch_the_makespan() {
        let c = Cluster::builder()
            .nodes(2)
            .map_slots(1)
            .degrade_hidden(NodeId(0), 10.0)
            .build();
        // EFT cannot see the hidden slowdown, so it spreads the two tasks.
        let tasks = vec![task(0, 100), task(1, 100)];
        let s = schedule_phase(&c, &tasks, SimTime::ZERO);
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(s.speculative_copies, 0);
    }

    #[test]
    fn speculation_rescues_hidden_stragglers() {
        let c = Cluster::builder()
            .nodes(2)
            .map_slots(1)
            .degrade_hidden(NodeId(0), 10.0)
            .speculation(true)
            .build();
        let tasks = vec![task(0, 100), task(1, 100)];
        let s = schedule_phase(&c, &tasks, SimTime::ZERO);
        // The straggling copy is noticed at t=100ms and re-run on node1
        // (free at 100ms): finishes at 200ms instead of 1s.
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_millis(200));
        assert_eq!(s.speculative_copies, 1);
        assert!(s.assignments.iter().any(|a| a.speculated));
    }

    #[test]
    fn speculation_keeps_the_original_when_it_wins() {
        // Mild hidden slowdown: the original still finishes before a
        // backup could; the backup is launched but loses the race.
        let c = Cluster::builder()
            .nodes(2)
            .map_slots(1)
            .degrade_hidden(NodeId(0), 1.5)
            .speculation(true)
            .build();
        let tasks = vec![task(0, 100), task(1, 100)];
        let s = schedule_phase(&c, &tasks, SimTime::ZERO);
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_millis(150));
        assert!(s.assignments.iter().all(|a| !a.speculated));
    }

    #[test]
    fn backup_win_recomputes_locality_fields() {
        // The original lands on node0 (local input + affinity, hidden 10x
        // slowdown); the backup wins on node1, so the assignment's
        // `input_local` and `affinity_hit` must be recomputed for the
        // *winning* node — stats derived from them (locality rates,
        // affinity hits) would otherwise credit the dead copy's placement.
        let c = Cluster::builder()
            .nodes(2)
            .map_slots(1)
            .degrade_hidden(NodeId(0), 10.0)
            .speculation(true)
            .build();
        let t = TaskSpec {
            id: 0,
            kind: SlotKind::Map,
            base: SimDuration::from_millis(100),
            input_bytes: 12_000_000, // 0.1 s local read
            input_hosts: vec![NodeId(0)],
            affinity: vec![NodeId(0)],
            affinity_penalty: SimDuration::from_millis(50),
            hard_affinity: false,
        };
        let s = schedule_phase(&c, &[t], SimTime::ZERO);
        let a = &s.assignments[0];
        assert!(a.speculated, "backup should win against a 10x straggler");
        assert_eq!(a.node, NodeId(1));
        assert!(!a.input_local, "locality must reflect the winning node");
        assert!(!a.affinity_hit, "affinity must reflect the winning node");
        assert_eq!(s.speculative_copies, 1);
        // Far better than the 2 s straggling original.
        assert!(s.makespan < SimTime::ZERO + SimDuration::from_secs(1));
    }

    #[test]
    fn losing_backups_are_counted_but_change_nothing() {
        // Mild hidden slowdown: backups launch (the JobTracker cannot
        // know they will lose) but the originals win — the accounting
        // must show the wasted copies while every assignment keeps its
        // original placement and the makespan matches a run without
        // speculation.
        let build = |spec: bool| {
            Cluster::builder()
                .nodes(2)
                .map_slots(1)
                .degrade_hidden(NodeId(0), 1.5)
                .speculation(spec)
                .build()
        };
        let tasks = vec![task(0, 100), task(1, 100)];
        let with = schedule_phase(&build(true), &tasks, SimTime::ZERO);
        let without = schedule_phase(&build(false), &tasks, SimTime::ZERO);
        assert!(with.speculative_copies > 0, "backups must be accounted");
        assert_eq!(without.speculative_copies, 0);
        assert_eq!(with.makespan, without.makespan, "losing backups are free");
        assert!(with.assignments.iter().all(|a| !a.speculated));
        assert_eq!(
            with.assignments.iter().map(|a| a.node).collect::<Vec<_>>(),
            without
                .assignments
                .iter()
                .map(|a| a.node)
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn retry_prefers_healthy_nodes_over_other_flaky_ones() {
        // node0 and node1 are both flaky; the retry of a task that failed
        // on node0 must skip node1 (it would just fail again) and land on
        // the healthy node2, even though all are equally free.
        let c = Cluster::builder()
            .nodes(3)
            .map_slots(1)
            .flaky(NodeId(0), 0.5)
            .flaky(NodeId(1), 0.5)
            .build();
        let s = schedule_phase(&c, &[task(0, 100)], SimTime::ZERO);
        assert_eq!(s.retried_tasks, 1);
        assert_eq!(s.assignments[0].node, NodeId(2));

        // With no healthy machine left, the second pass admits the other
        // flaky node rather than deadlocking.
        let all_flaky = Cluster::builder()
            .nodes(2)
            .map_slots(1)
            .flaky(NodeId(0), 0.5)
            .flaky(NodeId(1), 0.5)
            .build();
        let s = schedule_phase(&all_flaky, &[task(0, 100)], SimTime::ZERO);
        assert_eq!(s.retried_tasks, 1);
        assert_eq!(s.assignments[0].node, NodeId(1));
    }

    #[test]
    fn hard_affinity_retry_falls_back_to_the_failed_node() {
        // A hard-affine task can only run on its (flaky) affinity node:
        // the retry finds no eligible other machine and must re-run on
        // the same node after the failed attempt's wasted time.
        let c = Cluster::builder()
            .nodes(2)
            .map_slots(1)
            .flaky(NodeId(0), 0.5)
            .build();
        let t = TaskSpec {
            id: 0,
            kind: SlotKind::Map,
            base: SimDuration::from_millis(100),
            input_bytes: 0,
            input_hosts: Vec::new(),
            affinity: vec![NodeId(0)],
            affinity_penalty: SimDuration::from_millis(10),
            hard_affinity: true,
        };
        let s = schedule_phase(&c, &[t], SimTime::ZERO);
        assert_eq!(s.retried_tasks, 1);
        assert_eq!(s.assignments[0].node, NodeId(0));
        // 50 ms wasted attempt + 100 ms clean retry.
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_millis(150));
    }

    #[test]
    fn flaky_node_retries_elsewhere() {
        let c = Cluster::builder()
            .nodes(2)
            .map_slots(1)
            .flaky(NodeId(0), 0.5)
            .build();
        let tasks = vec![task(0, 100), task(1, 100)];
        let s = schedule_phase(&c, &tasks, SimTime::ZERO);
        assert_eq!(s.retried_tasks, 1);
        // The failed attempt wastes 50 ms on node0 and blacklists it; the
        // retry runs on node1 (50–150 ms) and the second task follows
        // (150–250 ms).
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_millis(250));
        // The surviving attempt of every task ran on the healthy node.
        assert!(s.assignments.iter().all(|a| a.node == NodeId(1)));
    }

    #[test]
    fn flaky_single_node_falls_back_to_same_node_retry() {
        let c = Cluster::builder()
            .nodes(1)
            .map_slots(1)
            .flaky(NodeId(0), 0.25)
            .build();
        let s = schedule_phase(&c, &[task(0, 100)], SimTime::ZERO);
        assert_eq!(s.retried_tasks, 1);
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_millis(125));
    }

    #[test]
    fn all_flaky_cluster_retries_avoid_each_tasks_failed_node() {
        // Regression: with EVERY node flaky the fallback pass admits flaky
        // machines, but it must never land a retry back on the node where
        // that task's first attempt just failed.
        let c = Cluster::builder()
            .nodes(3)
            .map_slots(1)
            .flaky(NodeId(0), 0.5)
            .flaky(NodeId(1), 0.5)
            .flaky(NodeId(2), 0.5)
            .build();
        // Single task: first attempt lands on node0 and fails there.
        let s = schedule_phase(&c, &[task(0, 100)], SimTime::ZERO);
        assert_eq!(s.retried_tasks, 1);
        assert_ne!(s.assignments[0].node, NodeId(0));
        // Two tasks: task0 fails on node0 and retries on node1; task1
        // (node0 blacklisted) fails on node2 and retries on node0 — a
        // *different* flaky node is acceptable, its own failed one is not.
        let s = schedule_phase(&c, &[task(0, 100), task(1, 100)], SimTime::ZERO);
        assert_eq!(s.retried_tasks, 2);
        assert_eq!(s.assignments[0].node, NodeId(1));
        assert_eq!(s.assignments[1].node, NodeId(0));
    }

    #[test]
    fn quiet_chaos_plan_changes_nothing() {
        let c = Cluster::builder()
            .nodes(3)
            .map_slots(2)
            .flaky(NodeId(1), 0.5)
            .degrade_hidden(NodeId(2), 2.0)
            .speculation(true)
            .build();
        let tasks: Vec<_> = (0..10).map(|i| task(i, 10 + i as u64)).collect();
        let plain = schedule_phase(&c, &tasks, SimTime::ZERO);
        let quiet = schedule_phase_chaos(&c, &tasks, SimTime::ZERO, &ChaosPlan::none());
        assert_eq!(plain.assignments, quiet.assignments);
        assert_eq!(plain.makespan, quiet.makespan);
        assert_eq!(quiet.crashed_attempts, 0);
    }

    #[test]
    fn crash_mid_task_reexecutes_on_a_survivor() {
        let c = Cluster::builder().nodes(2).map_slots(1).build();
        // The task starts on node0 at t=0; node0 dies at 50 ms.
        let plan = ChaosPlan::new(7).kill(NodeId(0), SimTime::ZERO + SimDuration::from_millis(50));
        let s = schedule_phase_chaos(&c, &[task(0, 100)], SimTime::ZERO, &plan);
        assert_eq!(s.crashed_attempts, 1);
        assert_eq!(s.assignments[0].node, NodeId(1));
        // 50 ms wasted on the dead node, then a full re-execution.
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_millis(150));
    }

    #[test]
    fn node_dead_before_launch_migrates_without_a_crashed_attempt() {
        let c = Cluster::builder().nodes(2).map_slots(1).build();
        let plan = ChaosPlan::new(7).kill(NodeId(0), SimTime::ZERO);
        let tasks = vec![task(0, 100), task(1, 100)];
        let s = schedule_phase_chaos(&c, &tasks, SimTime::ZERO, &plan);
        // Nothing ever ran on node0, so no attempt was wasted; both tasks
        // queue on the sole survivor.
        assert_eq!(s.crashed_attempts, 0);
        assert!(s.assignments.iter().all(|a| a.node == NodeId(1)));
        assert_eq!(s.makespan, SimTime::ZERO + SimDuration::from_millis(200));
    }

    #[test]
    fn chaos_replay_is_deterministic() {
        let c = Cluster::builder().nodes(4).map_slots(2).build();
        let tasks: Vec<_> = (0..16).map(|i| task(i, 10 + (i as u64 % 5) * 7)).collect();
        let plan = ChaosPlan::seeded(0xBADD, 4, 2, SimTime::ZERO, SimDuration::from_millis(40));
        let a = schedule_phase_chaos(&c, &tasks, SimTime::ZERO, &plan);
        let b = schedule_phase_chaos(&c, &tasks, SimTime::ZERO, &plan);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.crashed_attempts, b.crashed_attempts);
        // No surviving assignment may sit on a node that was dead when the
        // attempt ran.
        for asg in &a.assignments {
            assert!(
                !plan.is_dead_at(asg.node, asg.start),
                "task {} placed on dead node {}",
                asg.task_id,
                asg.node
            );
        }
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let c = small_cluster();
        let tasks: Vec<_> = (0..5).map(|i| task(i, (i as u64 + 1) * 10)).collect();
        let s = schedule_phase(&c, &tasks, SimTime::ZERO);
        // Longest single task is 50 ms; makespan cannot be below that.
        assert!(s.makespan >= SimTime::ZERO + SimDuration::from_millis(50));
        // And cannot exceed the serial sum.
        assert!(s.makespan <= SimTime::ZERO + SimDuration::from_millis(150));
    }

    // --- Gray-failure replay. ---

    fn det() -> DetectorConfig {
        DetectorConfig {
            interval: SimDuration::from_millis(1),
            suspicion: SimDuration::from_millis(3),
        }
    }

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn quiet_partition_plan_changes_nothing() {
        let c = Cluster::builder()
            .nodes(3)
            .map_slots(2)
            .flaky(NodeId(1), 0.5)
            .degrade_hidden(NodeId(2), 2.0)
            .speculation(true)
            .build();
        let tasks: Vec<_> = (0..10).map(|i| task(i, 10 + i as u64)).collect();
        let chaos = ChaosPlan::new(3).kill(NodeId(2), at(15));
        let plain = schedule_phase_chaos(&c, &tasks, SimTime::ZERO, &chaos);
        let quiet = schedule_phase_gray(
            &c,
            &tasks,
            SimTime::ZERO,
            &chaos,
            &PartitionPlan::new(9),
            &det(),
        );
        assert_eq!(plain.assignments, quiet.assignments);
        assert_eq!(plain.makespan, quiet.makespan);
        assert!(quiet.partition.is_empty());
    }

    #[test]
    fn heal_before_detection_stalls_results_without_replacing() {
        let c = Cluster::builder().nodes(2).map_slots(1).build();
        // 100 ms task on node0; isolated [50 ms, 52 ms): shorter than the
        // 3 ms suspicion threshold is NOT — wait: the window must close
        // before start + suspect_delay = 53 ms for a stall.
        let plan = PartitionPlan::new(1).split(&[NodeId(0)], at(50), Some(at(52)));
        let s = schedule_phase_gray(
            &c,
            &[task(0, 100)],
            SimTime::ZERO,
            &ChaosPlan::none(),
            &plan,
            &det(),
        );
        // Task ends at 100 ms, after the heal: no stall, no replacement.
        assert!(s.partition.is_empty());
        assert_eq!(s.makespan, at(100));

        // A short task ending *inside* the window waits for the heal.
        let plan = PartitionPlan::new(1).split(&[NodeId(0)], at(8), Some(at(10)));
        let s = schedule_phase_gray(
            &c,
            &[task(0, 9)],
            SimTime::ZERO,
            &ChaosPlan::none(),
            &plan,
            &det(),
        );
        assert_eq!(s.partition.stalled_tasks, 1);
        assert_eq!(s.partition.replaced_tasks, 0);
        assert_eq!(s.partition.stall, SimDuration::from_millis(1));
        assert_eq!(s.assignments[0].node, NodeId(0));
        assert_eq!(s.makespan, at(10));
    }

    #[test]
    fn confirmed_partition_replaces_onto_a_reachable_node() {
        let c = Cluster::builder().nodes(2).map_slots(1).build();
        // node0 partitions away at 50 ms and never heals; suspicion at
        // 53 ms re-places the 100 ms task on node1.
        let plan = PartitionPlan::new(1).split(&[NodeId(0)], at(50), None);
        let s = schedule_phase_gray(
            &c,
            &[task(0, 100)],
            SimTime::ZERO,
            &ChaosPlan::none(),
            &plan,
            &det(),
        );
        assert_eq!(s.partition.replaced_tasks, 1);
        // Confirmed: the original's answer never lands, so no orphan.
        assert_eq!(s.partition.orphan_results, 0);
        assert_eq!(s.assignments[0].node, NodeId(1));
        assert_eq!(s.makespan, at(153));
    }

    #[test]
    fn refuted_partition_rejoins_and_reconciles_the_duplicate() {
        let c = Cluster::builder().nodes(2).map_slots(1).build();
        // node0 isolated [50 ms, 400 ms): suspected at 53 ms, replacement
        // runs 53–153 ms on node1 and wins; the original still finishes
        // at 100 ms on node0 and its answer lands at the 400 ms rejoin —
        // a duplicate, reconciled exactly-once.
        let plan = PartitionPlan::new(1).split(&[NodeId(0)], at(50), Some(at(400)));
        let s = schedule_phase_gray(
            &c,
            &[task(0, 100)],
            SimTime::ZERO,
            &ChaosPlan::none(),
            &plan,
            &det(),
        );
        assert_eq!(s.partition.replaced_tasks, 1);
        assert_eq!(s.partition.orphan_results, 1);
        assert_eq!(s.assignments[0].node, NodeId(1));
        assert_eq!(s.makespan, at(153));

        // Early heal: the original's answer (visible at the 120 ms
        // rejoin) beats the replacement (153 ms) — the node rejoined and
        // its in-flight result counts, the replacement is the orphan.
        let plan = PartitionPlan::new(1).split(&[NodeId(0)], at(50), Some(at(120)));
        let s = schedule_phase_gray(
            &c,
            &[task(0, 100)],
            SimTime::ZERO,
            &ChaosPlan::none(),
            &plan,
            &det(),
        );
        assert_eq!(s.partition.replaced_tasks, 1);
        assert_eq!(s.partition.orphan_results, 1);
        assert_eq!(s.assignments[0].node, NodeId(0));
        assert_eq!(s.makespan, at(120));
    }

    #[test]
    fn slow_link_stretches_and_can_falsely_suspect() {
        let c = Cluster::builder().nodes(2).map_slots(1).build();
        // A 2× link slowdown across the whole task: runtime doubles but
        // 2 ms stretched beats stay under the 3 ms threshold.
        let plan = PartitionPlan::new(1).slow_link(NodeId(0), at(0), None, 2.0);
        let s = schedule_phase_gray(
            &c,
            &[task(0, 100)],
            SimTime::ZERO,
            &ChaosPlan::none(),
            &plan,
            &det(),
        );
        assert_eq!(s.partition.slowed_tasks, 1);
        assert_eq!(s.partition.slowdown, SimDuration::from_millis(100));
        assert_eq!(s.partition.replaced_tasks, 0);
        assert_eq!(s.assignments[0].node, NodeId(0));
        assert_eq!(s.makespan, at(200));

        // A 5× slowdown starves heartbeats (5 ms > 3 ms): the healthy
        // node is falsely suspected at 3 ms, a redundant copy launches,
        // and whichever answer lands second is reconciled away.
        let plan = PartitionPlan::new(1).slow_link(NodeId(0), at(0), None, 5.0);
        let s = schedule_phase_gray(
            &c,
            &[task(0, 100)],
            SimTime::ZERO,
            &ChaosPlan::none(),
            &plan,
            &det(),
        );
        assert_eq!(s.partition.replaced_tasks, 1);
        assert_eq!(s.partition.orphan_results, 1);
        // The un-stretched replacement on node1 (3–103 ms) beats the
        // 500 ms stretched original.
        assert_eq!(s.assignments[0].node, NodeId(1));
        assert_eq!(s.makespan, at(103));
    }

    #[test]
    fn gray_replay_is_deterministic_and_composes_with_chaos() {
        let c = Cluster::builder().nodes(4).map_slots(2).build();
        let tasks: Vec<_> = (0..16).map(|i| task(i, 10 + (i as u64 % 5) * 7)).collect();
        let chaos = ChaosPlan::seeded(0xBADD, 4, 1, SimTime::ZERO, SimDuration::from_millis(40));
        let plan = PartitionPlan::seeded(0xEF1D, 4, 2, SimTime::ZERO, SimDuration::from_millis(60))
            .slow_link(NodeId(3), at(5), Some(at(25)), 3.0);
        let a = schedule_phase_gray(&c, &tasks, SimTime::ZERO, &chaos, &plan, &det());
        let b = schedule_phase_gray(&c, &tasks, SimTime::ZERO, &chaos, &plan, &det());
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.partition, b.partition);
    }
}
