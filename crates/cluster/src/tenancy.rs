//! Multi-tenant serving: admission control, deficit-weighted allocation,
//! and per-index QoS — all in virtual time.
//!
//! The paper's latency sweep (Fig. 11) prices index access *under
//! contention*, but a runtime that executes one job at a time never
//! actually contends. This module supplies the missing substrate: N jobs
//! from M tenants are admitted against a bounded queue, interleaved over
//! the shared cluster by deficit-weighted round-robin, and throttled at
//! the index boundary by per-index virtual-time token buckets. Saturation
//! charges queueing delay; past a configured per-lookup threshold the
//! degrade gate falls back to scan (graceful degradation, not failure).
//!
//! Contract (the same discipline as the injection layers):
//!
//! * **Deterministic.** No wall clock, no randomness. Admission,
//!   grant, and completion decisions are pure functions of the config and
//!   the (virtual-time-ordered) submission sequence; a double run of the
//!   same tenant mix produces a bit-identical schedule log and ledger.
//! * **Never a hang.** A submission either enters the bounded queue or is
//!   refused *immediately* with a named error
//!   ([`Error::AdmissionRejected`] / [`Error::QuotaExhausted`]).
//! * **Quiet by default.** [`TenancyConfig::none`] — and any config that
//!   cannot influence a run (a single tenant with unlimited quotas, no
//!   queue bound, no rate limits) — classifies
//!   [`LayerState::Quiet`]: executors take the literal single-job path and
//!   the ledger contributes no counters, byte-identical to a runtime that
//!   never heard of tenancy.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

use efind_common::{Error, Result};

use crate::profile::LayerState;
use crate::time::{SimDuration, SimTime};

/// Identifier of a tenant: its index in [`TenancyConfig::tenants`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u16);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// One tenant's serving contract: scheduling weight, admission quotas, and
/// an optional share of the common lookup cache.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (counter segment; must be unique and dot-free).
    pub name: String,
    /// Deficit-round-robin weight. Relative share of grant bandwidth;
    /// zero starves the tenant and is flagged by analyzer check `EF024`.
    pub weight: u64,
    /// Per-tenant bound on *queued* (admitted, not yet granted) jobs.
    /// `usize::MAX` = unlimited.
    pub max_queued: usize,
    /// Per-tenant bound on concurrently *running* jobs. `usize::MAX` =
    /// unlimited; zero means the tenant can never run (`EF024` error).
    pub max_running: usize,
    /// Fraction of the shared lookup-cache capacity reserved for this
    /// tenant (see `efind::cache::LookupCache::with_tenant_shares`).
    /// `0.0` means no reservation (shares disabled for this tenant).
    pub cache_share: f64,
}

impl TenantSpec {
    /// An unlimited tenant with weight 1 and no cache reservation.
    pub fn new(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1,
            max_queued: usize::MAX,
            max_running: usize::MAX,
            cache_share: 0.0,
        }
    }

    /// Sets the deficit-round-robin weight.
    pub fn weight(mut self, w: u64) -> Self {
        self.weight = w;
        self
    }

    /// Bounds the tenant's queued jobs.
    pub fn max_queued(mut self, n: usize) -> Self {
        self.max_queued = n;
        self
    }

    /// Bounds the tenant's concurrently running jobs.
    pub fn max_running(mut self, n: usize) -> Self {
        self.max_running = n;
        self
    }

    /// Reserves a fraction of the shared lookup cache.
    pub fn cache_share(mut self, share: f64) -> Self {
        self.cache_share = share;
        self
    }

    /// True when nothing about this tenant can constrain a run.
    fn is_unlimited(&self) -> bool {
        self.max_queued == usize::MAX && self.max_running == usize::MAX && self.cache_share == 0.0
    }
}

/// A per-index virtual-time rate limit: the token-bucket parameters of one
/// index's lookup capacity.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexRateLimit {
    /// Index (accessor) name the bucket throttles.
    pub index: String,
    /// Sustained lookup rate: tokens per virtual second.
    pub rate_per_sec: f64,
    /// Bucket capacity: lookups servable in one burst before queueing.
    pub burst: f64,
}

impl IndexRateLimit {
    /// Builds a rate limit for `index`.
    pub fn new(index: impl Into<String>, rate_per_sec: f64, burst: f64) -> Self {
        IndexRateLimit {
            index: index.into(),
            rate_per_sec: rate_per_sec.max(0.0),
            burst: burst.max(0.0),
        }
    }
}

/// The whole tenancy layer's configuration.
///
/// The default ([`TenancyConfig::none`]) is quiet: unbounded queue, no
/// tenants (every job maps to one implicit unlimited tenant), no
/// concurrency bound, no rate limits — executors must treat it exactly
/// like a runtime without a tenancy layer.
#[derive(Clone, Debug, PartialEq)]
pub struct TenancyConfig {
    /// Declared tenants. Empty = one implicit unlimited tenant.
    pub tenants: Vec<TenantSpec>,
    /// Global bound on jobs queued (admitted, not yet granted) across all
    /// tenants. `usize::MAX` = unbounded.
    pub queue_capacity: usize,
    /// Cluster-wide bound on concurrently running jobs. `usize::MAX` =
    /// unbounded.
    pub max_concurrent: usize,
    /// Per-index token buckets throttling lookup demand at grant time.
    pub rate_limits: Vec<IndexRateLimit>,
    /// Degrade gate: when a grant's *average per-lookup* queueing delay on
    /// a saturated index would exceed this, the job's access to that index
    /// falls back to scan instead of queueing (graceful degradation).
    /// [`SimDuration::ZERO`] disables the gate — saturation always queues.
    pub degrade_threshold: SimDuration,
    /// Per-lookup virtual cost of the scan fallback the degrade gate
    /// substitutes for a throttled index access.
    pub scan_fallback_cost: SimDuration,
}

impl TenancyConfig {
    /// The quiet configuration: no tenancy at all.
    pub fn none() -> Self {
        TenancyConfig {
            tenants: Vec::new(),
            queue_capacity: usize::MAX,
            max_concurrent: usize::MAX,
            rate_limits: Vec::new(),
            degrade_threshold: SimDuration::ZERO,
            scan_fallback_cost: SimDuration::from_micros(2),
        }
    }

    /// Adds a tenant.
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Bounds the global admission queue.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Bounds cluster-wide concurrently running jobs.
    pub fn max_concurrent(mut self, n: usize) -> Self {
        self.max_concurrent = n;
        self
    }

    /// Adds a per-index rate limit.
    pub fn rate_limit(mut self, limit: IndexRateLimit) -> Self {
        self.rate_limits.push(limit);
        self
    }

    /// Sets the degrade gate threshold (average per-lookup queueing delay
    /// beyond which indexed access falls back to scan).
    pub fn degrade_threshold(mut self, d: SimDuration) -> Self {
        self.degrade_threshold = d;
        self
    }

    /// Sets the per-lookup cost of the scan fallback.
    pub fn scan_fallback_cost(mut self, d: SimDuration) -> Self {
        self.scan_fallback_cost = d;
        self
    }

    /// True when the config cannot influence any run: at most one tenant,
    /// everything unlimited, no rate limits. The executor's quiet path —
    /// and the quiet-tenancy golden — hang off this predicate.
    pub fn is_quiet(&self) -> bool {
        self.tenants.len() <= 1
            && self.tenants.iter().all(TenantSpec::is_unlimited)
            && self.queue_capacity == usize::MAX
            && self.max_concurrent == usize::MAX
            && self.rate_limits.is_empty()
    }

    /// The layer's once-per-run Quiet/Armed classification, from config
    /// *values* — the same discipline as the injection plans.
    pub fn layer_state(&self) -> LayerState {
        LayerState::from_armed(!self.is_quiet())
    }

    /// Resolves a tenant name to its id. With no declared tenants, every
    /// name resolves to the implicit tenant 0.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        if self.tenants.is_empty() {
            return Some(TenantId(0));
        }
        self.tenants
            .iter()
            .position(|t| t.name == name)
            .map(|i| TenantId(i as u16))
    }

    /// Number of scheduling tenants (at least 1: the implicit tenant).
    pub fn num_tenants(&self) -> usize {
        self.tenants.len().max(1)
    }

    /// The counter-name segment of a tenant.
    pub fn tenant_name(&self, t: TenantId) -> &str {
        self.tenants
            .get(t.0 as usize)
            .map_or("default", |s| s.name.as_str())
    }

    /// The cache-capacity share reserved for a tenant (0.0 = no
    /// reservation: the tenant sees the full shared capacity).
    pub fn cache_share(&self, name: &str) -> f64 {
        self.tenants
            .iter()
            .find(|t| t.name == name)
            .map_or(0.0, |t| t.cache_share.clamp(0.0, 1.0))
    }

    fn weight_of(&self, t: TenantId) -> u64 {
        self.tenants.get(t.0 as usize).map_or(1, |s| s.weight)
    }

    fn max_queued_of(&self, t: TenantId) -> usize {
        self.tenants
            .get(t.0 as usize)
            .map_or(usize::MAX, |s| s.max_queued)
    }

    fn max_running_of(&self, t: TenantId) -> usize {
        self.tenants
            .get(t.0 as usize)
            .map_or(usize::MAX, |s| s.max_running)
    }

    /// Structural validation shared by the executor and `EF024`: duplicate
    /// or dotted tenant names are configuration errors.
    pub fn validate(&self) -> Result<()> {
        for (i, t) in self.tenants.iter().enumerate() {
            if t.name.is_empty() || t.name.contains('.') {
                return Err(Error::InvalidConfig(format!(
                    "tenant {i} has an invalid name {:?} (must be non-empty and dot-free)",
                    t.name
                )));
            }
            if self.tenants[..i].iter().any(|p| p.name == t.name) {
                return Err(Error::InvalidConfig(format!(
                    "duplicate tenant name {:?}",
                    t.name
                )));
            }
        }
        Ok(())
    }
}

impl Default for TenancyConfig {
    fn default() -> Self {
        TenancyConfig::none()
    }
}

/// A deterministic virtual-time token bucket.
///
/// The bucket holds up to `burst` tokens and refills at `rate_per_sec`
/// tokens per virtual second. Charging more than the available tokens
/// yields a *queueing delay* — the virtual time until the refill covers
/// the shortfall — instead of a failure. All arithmetic happens in one
/// fixed order per charge, so equal charge sequences produce bit-equal
/// states.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    available: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A full bucket with the given refill rate and capacity.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        let burst = burst.max(0.0);
        TokenBucket {
            rate_per_sec: rate_per_sec.max(0.0),
            burst,
            available: burst,
            last: SimTime::ZERO,
        }
    }

    fn refilled(&self, now: SimTime) -> f64 {
        let gained = self.rate_per_sec * now.since(self.last).as_secs_f64();
        (self.available + gained).min(self.burst)
    }

    /// The queueing delay `tokens` would suffer if charged at `now`,
    /// without consuming anything.
    pub fn delay_for(&self, now: SimTime, tokens: f64) -> SimDuration {
        let available = self.refilled(now);
        if tokens <= available {
            return SimDuration::ZERO;
        }
        if self.rate_per_sec <= 0.0 {
            // A zero-rate bucket can never cover the shortfall; model the
            // wait as one full drain of the demand at a 1-token/sec floor
            // so the caller's degrade gate fires instead of overflowing.
            return SimDuration::from_secs_f64(tokens - available);
        }
        SimDuration::from_secs_f64((tokens - available) / self.rate_per_sec)
    }

    /// Charges `tokens` at `now`, consuming capacity and returning the
    /// queueing delay until the last token is covered by refill.
    pub fn charge(&mut self, now: SimTime, tokens: f64) -> SimDuration {
        let delay = self.delay_for(now, tokens);
        let available = self.refilled(now);
        self.available = (available - tokens).max(0.0);
        self.last = now + delay;
        delay
    }

    /// Tokens available at `now` (after refill, before any charge).
    pub fn available_at(&self, now: SimTime) -> f64 {
        self.refilled(now)
    }
}

/// Why a grant's index demand was (partly) degraded to scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QosCharge {
    /// Total queueing delay charged by saturated index buckets.
    pub delay: SimDuration,
    /// Lookups shed to the scan fallback by the degrade gate.
    pub shed_lookups: u64,
    /// Virtual cost of the scan fallback for the shed lookups.
    pub scan_cost: SimDuration,
}

impl QosCharge {
    /// The no-op charge (no rate limits touched).
    pub const ZERO: QosCharge = QosCharge {
        delay: SimDuration::ZERO,
        shed_lookups: 0,
        scan_cost: SimDuration::ZERO,
    };

    /// True when at least one lookup fell back to scan.
    pub fn degraded(&self) -> bool {
        self.shed_lookups > 0
    }

    /// The total virtual slowdown the job's completion absorbs.
    pub fn total_delay(&self) -> SimDuration {
        self.delay + self.scan_cost
    }
}

/// One entry of the deterministic schedule log — the tenancy layer's
/// primary observable. Double runs of the same mix must produce bit-equal
/// logs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedLogEntry {
    /// Monotone sequence number of the decision.
    pub seq: u64,
    /// Virtual time of the decision.
    pub at: SimTime,
    /// Submission index of the job the decision concerns.
    pub job: u64,
    /// The job's tenant.
    pub tenant: TenantId,
    /// What was decided.
    pub kind: SchedDecision,
}

/// The decision kinds recorded in the schedule log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedDecision {
    /// The job entered the admission queue.
    Queued,
    /// The bounded queue was full: [`Error::AdmissionRejected`].
    RejectedQueueFull,
    /// The tenant's queued-job quota was exhausted:
    /// [`Error::QuotaExhausted`].
    RejectedQuota,
    /// The job was granted cluster slots and started.
    Granted {
        /// Time spent in the queue.
        wait: SimDuration,
        /// QoS charge of the job's index demand at grant time.
        qos: QosCharge,
    },
    /// The job finished and released its quota.
    Completed,
}

/// Per-tenant serving totals, mirrored into `efind.tenant.*` counters when
/// the layer is armed. A quiet run leaves every row zero and the ledger
/// contributes nothing (PR-7 discipline: empty ledgers are invisible).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantLedgerRow {
    /// Jobs submitted by this tenant.
    pub submitted: u64,
    /// Jobs granted cluster slots.
    pub granted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Submissions refused because the global queue was full.
    pub rejected: u64,
    /// Submissions refused by the tenant's own quota.
    pub quota_rejected: u64,
    /// Grants whose index demand (partly) degraded to scan.
    pub degraded: u64,
    /// Lookups shed to the scan fallback.
    pub shed_lookups: u64,
    /// Total queueing delay charged by saturated index buckets (nanos).
    pub throttle_nanos: u64,
    /// Total time the tenant's granted jobs waited in the queue (nanos).
    pub wait_nanos: u64,
}

impl TenantLedgerRow {
    /// True when every total is zero.
    pub fn is_empty(&self) -> bool {
        *self == TenantLedgerRow::default()
    }
}

/// The whole mix's ledger: one row per tenant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenancyLedger {
    rows: Vec<TenantLedgerRow>,
}

impl TenancyLedger {
    /// A ledger with `tenants` zero rows.
    pub fn new(tenants: usize) -> Self {
        TenancyLedger {
            rows: vec![TenantLedgerRow::default(); tenants],
        }
    }

    /// The row of one tenant.
    pub fn row(&self, t: TenantId) -> &TenantLedgerRow {
        &self.rows[t.0 as usize]
    }

    /// All rows, in tenant order.
    pub fn rows(&self) -> &[TenantLedgerRow] {
        &self.rows
    }

    /// True when no tenant recorded anything.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(TenantLedgerRow::is_empty)
    }

    fn row_mut(&mut self, t: TenantId) -> &mut TenantLedgerRow {
        &mut self.rows[t.0 as usize]
    }
}

/// A granted job: the scheduler's instruction to start `job` now.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Grant {
    /// Submission index of the granted job.
    pub job: u64,
    /// The job's tenant.
    pub tenant: TenantId,
    /// Grant (start) time.
    pub start: SimTime,
    /// QoS charge of the job's declared index demand.
    pub qos: QosCharge,
}

#[derive(Clone, Debug)]
struct QueuedJob {
    job: u64,
    tenant: TenantId,
    submit: SimTime,
    cost_hint: u64,
    demand: Vec<(String, u64)>,
}

/// The deterministic multi-tenant scheduler: a bounded admission queue,
/// deficit-weighted grant selection, and per-index token buckets, driven
/// by an external virtual-time event loop ([`submit`](Self::submit) /
/// [`try_grant`](Self::try_grant) / [`complete`](Self::complete)).
#[derive(Clone, Debug)]
pub struct MultiTenantScheduler {
    cfg: TenancyConfig,
    /// Deficit-round-robin credit per tenant (may go negative after a
    /// grant is charged).
    deficit: Vec<i128>,
    /// Per-index token buckets, keyed by index name (ordered map: bucket
    /// iteration order is part of the observable contract).
    buckets: BTreeMap<String, TokenBucket>,
    queued: VecDeque<QueuedJob>,
    queued_per_tenant: Vec<usize>,
    running_per_tenant: Vec<usize>,
    running: usize,
    ledger: TenancyLedger,
    log: Vec<SchedLogEntry>,
    seq: u64,
}

impl MultiTenantScheduler {
    /// Builds a scheduler for `cfg`. Fails fast on structurally invalid
    /// configs (duplicate/dotted tenant names).
    pub fn new(cfg: TenancyConfig) -> Result<Self> {
        cfg.validate()?;
        let n = cfg.num_tenants();
        let buckets = cfg
            .rate_limits
            .iter()
            .map(|l| (l.index.clone(), TokenBucket::new(l.rate_per_sec, l.burst)))
            .collect();
        Ok(MultiTenantScheduler {
            cfg,
            deficit: vec![0; n],
            buckets,
            queued: VecDeque::new(),
            queued_per_tenant: vec![0; n],
            running_per_tenant: vec![0; n],
            running: 0,
            ledger: TenancyLedger::new(n),
            log: Vec::new(),
            seq: 0,
        })
    }

    /// The configuration the scheduler runs under.
    pub fn config(&self) -> &TenancyConfig {
        &self.cfg
    }

    fn push_log(&mut self, at: SimTime, job: u64, tenant: TenantId, kind: SchedDecision) {
        let seq = self.seq;
        self.seq += 1;
        self.log.push(SchedLogEntry {
            seq,
            at,
            job,
            tenant,
            kind,
        });
    }

    /// Submits job `job` of `tenant` at virtual time `at`. Either the job
    /// enters the bounded queue (`Ok`) or it is refused immediately with a
    /// named error — admission control never blocks and never hangs.
    ///
    /// `cost_hint` is the deficit-round-robin charge (any stable estimate
    /// of the job's size; 1 gives plain weighted fairness in job counts).
    /// `demand` declares the job's per-index lookup counts, charged
    /// against the rate-limit buckets at grant time.
    pub fn submit(
        &mut self,
        at: SimTime,
        job: u64,
        tenant: TenantId,
        cost_hint: u64,
        demand: Vec<(String, u64)>,
    ) -> Result<()> {
        let row = self.ledger.row_mut(tenant);
        row.submitted += 1;
        if self.queued.len() >= self.cfg.queue_capacity {
            self.ledger.row_mut(tenant).rejected += 1;
            self.push_log(at, job, tenant, SchedDecision::RejectedQueueFull);
            return Err(Error::AdmissionRejected(format!(
                "admission queue full ({} queued, capacity {}) for job {job} of {}",
                self.queued.len(),
                self.cfg.queue_capacity,
                self.cfg.tenant_name(tenant),
            )));
        }
        if self.queued_per_tenant[tenant.0 as usize] >= self.cfg.max_queued_of(tenant) {
            self.ledger.row_mut(tenant).quota_rejected += 1;
            self.push_log(at, job, tenant, SchedDecision::RejectedQuota);
            return Err(Error::QuotaExhausted(format!(
                "tenant {} queued-job quota ({}) exhausted for job {job}",
                self.cfg.tenant_name(tenant),
                self.cfg.max_queued_of(tenant),
            )));
        }
        self.queued_per_tenant[tenant.0 as usize] += 1;
        self.queued.push_back(QueuedJob {
            job,
            tenant,
            submit: at,
            cost_hint,
            demand,
        });
        self.push_log(at, job, tenant, SchedDecision::Queued);
        Ok(())
    }

    /// Tenants that currently have a queued job and a free running quota.
    fn eligible_tenants(&self) -> Vec<TenantId> {
        let mut seen = vec![false; self.cfg.num_tenants()];
        for q in &self.queued {
            seen[q.tenant.0 as usize] = true;
        }
        (0..self.cfg.num_tenants() as u16)
            .map(TenantId)
            .filter(|t| {
                seen[t.0 as usize]
                    && self.running_per_tenant[t.0 as usize] < self.cfg.max_running_of(*t)
            })
            .collect()
    }

    /// Grants the next queued job at virtual time `now`, if cluster
    /// capacity and quotas allow one. Deficit-weighted round-robin: every
    /// eligible tenant earns `weight` credit per selection round, the
    /// highest credit wins (ties to the lowest tenant id), and the winner
    /// is charged the job's `cost_hint` — so bandwidth converges to the
    /// weight ratio while every positive-weight tenant keeps a linearly
    /// growing claim (starvation-freedom).
    pub fn try_grant(&mut self, now: SimTime) -> Option<Grant> {
        if self.running >= self.cfg.max_concurrent || self.queued.is_empty() {
            return None;
        }
        let eligible = self.eligible_tenants();
        if eligible.is_empty() {
            return None;
        }
        let total_weight: i128 = eligible
            .iter()
            .map(|t| self.cfg.weight_of(*t) as i128)
            .sum();
        for t in &eligible {
            self.deficit[t.0 as usize] += self.cfg.weight_of(*t) as i128;
        }
        let winner = *eligible
            .iter()
            .max_by_key(|t| (self.deficit[t.0 as usize], std::cmp::Reverse(t.0)))?;
        let pos = self
            .queued
            .iter()
            .position(|q| q.tenant == winner)
            .expect("eligible tenant has a queued job");
        let q = self.queued.remove(pos).expect("position just found");
        // Charge the grant at cost × Σweights: with every contender earning
        // its own weight per round, this normalization makes steady-state
        // grant bandwidth converge to the weight ratio (a winner paying
        // only its cost would win every round regardless of weights).
        self.deficit[winner.0 as usize] -= q.cost_hint as i128 * total_weight;
        self.queued_per_tenant[winner.0 as usize] -= 1;
        self.running_per_tenant[winner.0 as usize] += 1;
        self.running += 1;

        let qos = self.charge_demand(now, &q.demand);
        let wait = now.since(q.submit);
        let row = self.ledger.row_mut(winner);
        row.granted += 1;
        row.wait_nanos += wait.as_nanos();
        row.throttle_nanos += qos.delay.as_nanos();
        if qos.degraded() {
            row.degraded += 1;
            row.shed_lookups += qos.shed_lookups;
        }
        self.push_log(now, q.job, winner, SchedDecision::Granted { wait, qos });
        Some(Grant {
            job: q.job,
            tenant: winner,
            start: now,
            qos,
        })
    }

    /// Charges a grant's declared demand against the per-index buckets.
    /// For each index (in declaration order): if the average per-lookup
    /// queueing delay would exceed the degrade threshold, the lookups are
    /// shed to the scan fallback (no tokens consumed, flat scan cost);
    /// otherwise the bucket is charged and the delay accrues.
    fn charge_demand(&mut self, now: SimTime, demand: &[(String, u64)]) -> QosCharge {
        let mut qos = QosCharge::ZERO;
        for (index, lookups) in demand {
            if *lookups == 0 {
                continue;
            }
            let Some(bucket) = self.buckets.get_mut(index) else {
                continue; // unlimited index
            };
            let tokens = *lookups as f64;
            let would_delay = bucket.delay_for(now, tokens);
            let per_lookup = would_delay / *lookups;
            if !self.cfg.degrade_threshold.is_zero() && per_lookup > self.cfg.degrade_threshold {
                qos.shed_lookups += *lookups;
                qos.scan_cost += self.cfg.scan_fallback_cost * *lookups;
            } else {
                qos.delay += bucket.charge(now, tokens);
            }
        }
        qos
    }

    /// Records the completion of a previously granted job of `tenant`.
    pub fn complete(&mut self, now: SimTime, job: u64, tenant: TenantId) {
        debug_assert!(self.running > 0);
        self.running -= 1;
        self.running_per_tenant[tenant.0 as usize] =
            self.running_per_tenant[tenant.0 as usize].saturating_sub(1);
        self.ledger.row_mut(tenant).completed += 1;
        self.push_log(now, job, tenant, SchedDecision::Completed);
    }

    /// Jobs admitted but not yet granted.
    pub fn queue_len(&self) -> usize {
        self.queued.len()
    }

    /// Jobs granted but not yet completed.
    pub fn running(&self) -> usize {
        self.running
    }

    /// True when nothing is queued or running.
    pub fn is_idle(&self) -> bool {
        self.queued.is_empty() && self.running == 0
    }

    /// The per-tenant serving ledger.
    pub fn ledger(&self) -> &TenancyLedger {
        &self.ledger
    }

    /// The deterministic schedule log.
    pub fn log(&self) -> &[SchedLogEntry] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_two_tenants() -> TenancyConfig {
        TenancyConfig::none()
            .tenant(TenantSpec::new("alpha").weight(3))
            .tenant(TenantSpec::new("beta").weight(1))
            .max_concurrent(1)
    }

    #[test]
    fn quiet_classification() {
        assert!(TenancyConfig::none().is_quiet());
        // One unlimited tenant is still quiet — the quiet-tenancy golden's
        // second leg depends on this.
        assert!(TenancyConfig::none()
            .tenant(TenantSpec::new("solo"))
            .is_quiet());
        assert!(!cfg_two_tenants().is_quiet());
        assert!(!TenancyConfig::none().queue_capacity(4).is_quiet());
        assert!(!TenancyConfig::none()
            .rate_limit(IndexRateLimit::new("idx", 10.0, 5.0))
            .is_quiet());
        assert!(TenancyConfig::none().layer_state() == LayerState::Quiet);
        assert!(cfg_two_tenants().layer_state().is_armed());
    }

    #[test]
    fn validate_rejects_bad_names() {
        let dup = TenancyConfig::none()
            .tenant(TenantSpec::new("a"))
            .tenant(TenantSpec::new("a"));
        assert!(dup.validate().is_err());
        let dotted = TenancyConfig::none().tenant(TenantSpec::new("a.b"));
        assert!(dotted.validate().is_err());
        assert!(cfg_two_tenants().validate().is_ok());
    }

    #[test]
    fn bounded_queue_rejects_with_named_error() {
        let cfg = TenancyConfig::none()
            .tenant(TenantSpec::new("a"))
            .queue_capacity(2)
            .max_concurrent(0); // nothing ever drains
        let mut s = MultiTenantScheduler::new(cfg).unwrap();
        let t = TenantId(0);
        assert!(s.submit(SimTime::ZERO, 0, t, 1, vec![]).is_ok());
        assert!(s.submit(SimTime::ZERO, 1, t, 1, vec![]).is_ok());
        let err = s.submit(SimTime::ZERO, 2, t, 1, vec![]).unwrap_err();
        assert!(matches!(err, Error::AdmissionRejected(_)), "{err}");
        assert_eq!(s.ledger().row(t).rejected, 1);
    }

    #[test]
    fn tenant_quota_rejects_with_named_error() {
        let cfg = TenancyConfig::none()
            .tenant(TenantSpec::new("a").max_queued(1))
            .max_concurrent(0);
        let mut s = MultiTenantScheduler::new(cfg).unwrap();
        let t = TenantId(0);
        assert!(s.submit(SimTime::ZERO, 0, t, 1, vec![]).is_ok());
        let err = s.submit(SimTime::ZERO, 1, t, 1, vec![]).unwrap_err();
        assert!(matches!(err, Error::QuotaExhausted(_)), "{err}");
        assert_eq!(s.ledger().row(t).quota_rejected, 1);
    }

    #[test]
    fn deficit_weights_shape_grant_order() {
        // alpha (weight 3) should receive roughly 3 grants per beta grant.
        let mut s = MultiTenantScheduler::new(cfg_two_tenants()).unwrap();
        let (a, b) = (TenantId(0), TenantId(1));
        for j in 0..12 {
            let t = if j < 6 { a } else { b };
            s.submit(SimTime::ZERO, j, t, 1, vec![]).unwrap();
        }
        let mut order = Vec::new();
        let mut now = SimTime::ZERO;
        while !s.is_idle() {
            if let Some(g) = s.try_grant(now) {
                order.push(g.tenant);
                now += SimDuration::from_millis(1);
                s.complete(now, g.job, g.tenant);
            } else {
                break;
            }
        }
        assert_eq!(order.len(), 12);
        // First four grants: 3 alpha to 1 beta.
        let alpha_early = order[..4].iter().filter(|t| **t == a).count();
        assert_eq!(alpha_early, 3, "order {order:?}");
        // Everyone eventually runs (starvation-freedom).
        assert_eq!(order.iter().filter(|t| **t == b).count(), 6);
    }

    #[test]
    fn max_running_quota_defers_but_never_drops() {
        let cfg = TenancyConfig::none()
            .tenant(TenantSpec::new("a").max_running(1))
            .tenant(TenantSpec::new("b"));
        let mut s = MultiTenantScheduler::new(cfg).unwrap();
        s.submit(SimTime::ZERO, 0, TenantId(0), 1, vec![]).unwrap();
        s.submit(SimTime::ZERO, 1, TenantId(0), 1, vec![]).unwrap();
        s.submit(SimTime::ZERO, 2, TenantId(1), 1, vec![]).unwrap();
        let g0 = s.try_grant(SimTime::ZERO).unwrap();
        assert_eq!(g0.tenant, TenantId(0));
        // a is at its running quota: the next grant must go to b, and a's
        // second job stays queued rather than being rejected.
        let g1 = s.try_grant(SimTime::ZERO).unwrap();
        assert_eq!(g1.tenant, TenantId(1));
        assert!(s.try_grant(SimTime::ZERO).is_none());
        assert_eq!(s.queue_len(), 1);
        s.complete(SimTime::ZERO + SimDuration::from_millis(1), 0, g0.tenant);
        let g2 = s
            .try_grant(SimTime::ZERO + SimDuration::from_millis(1))
            .unwrap();
        assert_eq!(g2.job, 1);
    }

    #[test]
    fn token_bucket_charges_queueing_delay() {
        let mut b = TokenBucket::new(1000.0, 100.0);
        // Inside the burst: free.
        assert_eq!(b.charge(SimTime::ZERO, 100.0), SimDuration::ZERO);
        // 500 more tokens at rate 1000/s: 0.5 s of queueing delay.
        let d = b.charge(SimTime::ZERO, 500.0);
        assert_eq!(d, SimDuration::from_millis(500));
        // After the backlog drains (+1 s) the bucket has refilled 0.5 s
        // worth (500 tokens, capped at burst 100).
        let later = SimTime::ZERO + SimDuration::from_secs(1);
        assert!(b.available_at(later) <= 100.0 + 1e-9);
        assert!(b.available_at(later) > 0.0);
    }

    #[test]
    fn degrade_gate_sheds_to_scan_instead_of_queueing() {
        let cfg = TenancyConfig::none()
            .tenant(TenantSpec::new("a"))
            .tenant(TenantSpec::new("b"))
            .rate_limit(IndexRateLimit::new("users", 1000.0, 100.0))
            .degrade_threshold(SimDuration::from_micros(100))
            .scan_fallback_cost(SimDuration::from_micros(2));
        let mut s = MultiTenantScheduler::new(cfg).unwrap();
        // First grant drains the burst (100 lookups, free).
        s.submit(
            SimTime::ZERO,
            0,
            TenantId(0),
            1,
            vec![("users".into(), 100)],
        )
        .unwrap();
        let g0 = s.try_grant(SimTime::ZERO).unwrap();
        assert_eq!(g0.qos, QosCharge::ZERO);
        // Second grant would queue 1 ms per lookup (1000 lookups over an
        // empty bucket at 1000/s) — over the 100 µs gate, so it sheds.
        s.submit(
            SimTime::ZERO,
            1,
            TenantId(1),
            1,
            vec![("users".into(), 1000)],
        )
        .unwrap();
        let g1 = s.try_grant(SimTime::ZERO).unwrap();
        assert!(g1.qos.degraded());
        assert_eq!(g1.qos.shed_lookups, 1000);
        assert_eq!(g1.qos.delay, SimDuration::ZERO);
        assert_eq!(g1.qos.scan_cost, SimDuration::from_micros(2) * 1000);
        assert_eq!(s.ledger().row(TenantId(1)).shed_lookups, 1000);
    }

    #[test]
    fn double_run_is_bit_identical() {
        let run = || {
            let cfg = cfg_two_tenants()
                .queue_capacity(3)
                .rate_limit(IndexRateLimit::new("idx", 500.0, 50.0));
            let mut s = MultiTenantScheduler::new(cfg).unwrap();
            let mut now = SimTime::ZERO;
            for j in 0..8u64 {
                let t = TenantId((j % 2) as u16);
                let _ = s.submit(now, j, t, 1 + j, vec![("idx".into(), 40 * j)]);
                if j % 3 == 2 {
                    if let Some(g) = s.try_grant(now) {
                        now += SimDuration::from_millis(2);
                        s.complete(now, g.job, g.tenant);
                    }
                }
            }
            while let Some(g) = s.try_grant(now) {
                now += SimDuration::from_millis(1);
                s.complete(now, g.job, g.tenant);
            }
            (s.log().to_vec(), s.ledger().clone())
        };
        assert_eq!(run(), run());
    }
}
