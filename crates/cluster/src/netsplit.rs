//! Deterministic network-partition plans.
//!
//! A [`PartitionPlan`] decides — before the job starts, as a pure function
//! of a seed — which nodes become unreachable over which virtual-time
//! windows, and which links merely slow down. It is the fourth seeded plan
//! in the family of `FaultPlan` (index faults), [`ChaosPlan`](crate::ChaosPlan)
//! (node crashes), and [`CorruptionPlan`](crate::CorruptionPlan) (bit
//! flips), built on the same shared draw helper ([`efind_common::det`]);
//! the quiet plan short-circuits everywhere and changes no virtual
//! observable.
//!
//! Partitions differ from crashes in two load-bearing ways:
//!
//! * **They can heal.** A [`PartitionEvent`] carries an optional `heal`
//!   time; inside `[start, heal)` the node keeps *executing* (its tasks
//!   run, its disks spin) but nothing it produces is visible to the rest
//!   of the cluster, and nothing reaches it. After `heal` it is a full
//!   member again — this is the first *transient* failure in the family.
//! * **They lose no data.** The DFS is never mutated by a partition: the
//!   replicas on an isolated node still exist, they are just unreachable.
//!   A partition that never heals and covers every replica of a needed
//!   chunk therefore surfaces as [`Error::Partitioned`]
//!   (`efind_common::Error::Partitioned`), not `DataLoss`.
//!
//! Like its siblings the plan is *descriptive*: it does not cut links by
//! itself. The scheduler replays assignments against it through the
//! [`DetectorConfig`](crate::detector::DetectorConfig) suspicion model,
//! and the runner defers fetches from isolated nodes until heal.

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};
use efind_common::det::draw_unit_u64;

/// One partition event: every node in `nodes` is unreachable from the
/// rest of the cluster during `[start, heal)` (`heal = None` → forever).
///
/// Isolated nodes keep executing; only communication is cut. Events with
/// an empty effective window (`heal <= start`) are dropped at insertion —
/// a partition that heals before it starts never existed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionEvent {
    /// The isolated node set.
    pub nodes: Vec<NodeId>,
    /// Virtual time the partition opens.
    pub start: SimTime,
    /// Virtual time the partition heals; `None` means it never does.
    pub heal: Option<SimTime>,
}

impl PartitionEvent {
    /// True when `node` is in this event's isolated set at time `t`.
    pub fn isolates_at(&self, node: NodeId, t: SimTime) -> bool {
        self.start <= t && self.heal.is_none_or(|h| t < h) && self.nodes.contains(&node)
    }

    /// True when the event never heals.
    pub fn is_permanent(&self) -> bool {
        self.heal.is_none()
    }
}

/// One degraded link: traffic to and from `node` is stretched by `factor`
/// during `[start, heal)`. The node stays reachable — heartbeats arrive,
/// just late — which is exactly the gray zone where a detector produces
/// false positives.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSlowdown {
    /// The node whose links degrade.
    pub node: NodeId,
    /// Virtual time the degradation begins.
    pub start: SimTime,
    /// Virtual time the link recovers; `None` means it never does.
    pub heal: Option<SimTime>,
    /// Multiplicative stretch on work overlapping the window (> 1.0 to
    /// have any effect; values ≤ 1.0 are dropped at insertion).
    pub factor: f64,
}

/// A deterministic schedule of partitions and link slowdowns for one run.
///
/// The quiet plan ([`PartitionPlan::none`]) is the default everywhere;
/// code that receives a quiet plan must behave bit-identically to code
/// that never heard of partitions at all. At most one partition event and
/// one slowdown are kept per node (later inserts evict earlier ones), so
/// every per-node query has exactly one answer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PartitionPlan {
    seed: u64,
    /// Sorted by `(start, first node)`; each node appears in at most one.
    events: Vec<PartitionEvent>,
    /// Sorted by `(start, node)`; at most one per node.
    slow: Vec<LinkSlowdown>,
}

impl PartitionPlan {
    /// The quiet plan: no link is ever cut or slowed.
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan carrying a seed, to be populated with
    /// [`split`](Self::split) / [`slow_link`](Self::slow_link).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Adds a partition isolating `nodes` during `[start, heal)`.
    ///
    /// Each node belongs to at most one event: the listed nodes are
    /// removed from earlier events first (events emptied that way are
    /// dropped). Events whose window is empty (`heal <= start`) or whose
    /// node set is empty are dropped — they could never fire.
    pub fn split(mut self, nodes: &[NodeId], start: SimTime, heal: Option<SimTime>) -> Self {
        for e in &mut self.events {
            e.nodes.retain(|n| !nodes.contains(n));
        }
        self.events.retain(|e| !e.nodes.is_empty());
        let effective = !nodes.is_empty() && heal.is_none_or(|h| h > start);
        if effective {
            let mut nodes = nodes.to_vec();
            nodes.sort_by_key(|n| n.0);
            nodes.dedup();
            self.events.push(PartitionEvent { nodes, start, heal });
            self.events
                .sort_by_key(|e| (e.start, e.nodes.first().map_or(0, |n| n.0)));
        }
        self
    }

    /// Adds (or replaces) a link slowdown for `node`. Factors ≤ 1.0 and
    /// empty windows are dropped — they could never fire.
    pub fn slow_link(
        mut self,
        node: NodeId,
        start: SimTime,
        heal: Option<SimTime>,
        factor: f64,
    ) -> Self {
        self.slow.retain(|s| s.node != node);
        if factor > 1.0 && heal.is_none_or(|h| h > start) {
            self.slow.push(LinkSlowdown {
                node,
                start,
                heal,
                factor,
            });
            self.slow.sort_by_key(|s| (s.start, s.node.0));
        }
        self
    }

    /// Draws `splits` distinct single-node partitions out of `num_nodes`
    /// nodes, each opening at a hash-drawn time inside
    /// `[window_start, window_start + window)` and healing after a
    /// hash-drawn fraction of the remaining window — every seeded
    /// partition is transient.
    ///
    /// Deterministic in `(seed, num_nodes, splits, window)`. At least one
    /// node is always spared: `splits` is clamped to `num_nodes - 1`.
    pub fn seeded(
        seed: u64,
        num_nodes: u16,
        splits: usize,
        window_start: SimTime,
        window: SimDuration,
    ) -> Self {
        let mut plan = Self::new(seed);
        if num_nodes <= 1 || window.is_zero() {
            return plan;
        }
        let splits = splits.min(num_nodes as usize - 1);
        let mut salt = 0u64;
        for i in 0..splits {
            // Rejection-sample a node not yet isolated; the salt makes
            // each rejection a fresh, still-deterministic draw.
            let node = loop {
                let u = draw_unit_u64(seed, "netsplit.node", (i as u64) << 32 | salt);
                salt += 1;
                let cand = NodeId((u * num_nodes as f64) as u16 % num_nodes);
                if !plan.events.iter().any(|e| e.nodes.contains(&cand)) {
                    break cand;
                }
            };
            let us = draw_unit_u64(seed, "netsplit.start", i as u64);
            let start = window_start + window.mul_f64(us);
            // Heal inside the remainder of the window, at least 1 ns wide.
            let uh = draw_unit_u64(seed, "netsplit.heal", i as u64);
            let remaining = (window_start + window).since(start);
            let hold = SimDuration::from_nanos(remaining.mul_f64(uh).as_nanos().max(1));
            plan = plan.split(&[node], start, Some(start + hold));
        }
        plan
    }

    /// Seed the plan was built from (0 for the quiet plan).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All partition events, sorted by `(start, first node)`.
    pub fn events(&self) -> &[PartitionEvent] {
        &self.events
    }

    /// All link slowdowns, sorted by `(start, node)`.
    pub fn slow_links(&self) -> &[LinkSlowdown] {
        &self.slow
    }

    /// True when no link can ever be cut or slowed. The quiet plan must
    /// never change any virtual observable.
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty() && self.slow.is_empty()
    }

    /// The layer's once-per-job classification: `Armed` only when some
    /// effective partition or slowdown window exists. Hot paths hoist
    /// this decision outside their loops (see
    /// [`crate::profile::InjectionProfile`]).
    pub fn layer_state(&self) -> crate::profile::LayerState {
        crate::profile::LayerState::from_armed(!self.is_quiet())
    }

    /// The isolation window of `node`, if any: `(start, heal)` with
    /// `heal = None` for a partition that never heals.
    pub fn isolation_window(&self, node: NodeId) -> Option<(SimTime, Option<SimTime>)> {
        self.events
            .iter()
            .find(|e| e.nodes.contains(&node))
            .map(|e| (e.start, e.heal))
    }

    /// True when `node` is unreachable at virtual time `t`.
    pub fn is_isolated_at(&self, node: NodeId, t: SimTime) -> bool {
        self.events.iter().any(|e| e.isolates_at(node, t))
    }

    /// True when `node` is isolated by a partition that never heals and
    /// has opened by time `t` — the node is effectively gone for the rest
    /// of the run.
    pub fn isolated_forever_from(&self, node: NodeId) -> Option<SimTime> {
        self.events
            .iter()
            .find(|e| e.is_permanent() && e.nodes.contains(&node))
            .map(|e| e.start)
    }

    /// The slowdown window of `node`, if any.
    pub fn slow_window(&self, node: NodeId) -> Option<&LinkSlowdown> {
        self.slow.iter().find(|s| s.node == node)
    }

    /// The link stretch factor for `node` at time `t` (1.0 when healthy).
    pub fn slowdown_at(&self, node: NodeId, t: SimTime) -> f64 {
        match self.slow_window(node) {
            Some(s) if s.start <= t && s.heal.is_none_or(|h| t < h) => s.factor,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LayerState;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn quiet_plan_is_quiet() {
        assert!(PartitionPlan::none().is_quiet());
        assert!(PartitionPlan::new(42).is_quiet());
        assert_eq!(PartitionPlan::new(42).layer_state(), LayerState::Quiet);
        assert!(!PartitionPlan::none().is_isolated_at(NodeId(0), t(5)));
        assert_eq!(PartitionPlan::none().slowdown_at(NodeId(0), t(5)), 1.0);
    }

    #[test]
    fn degenerate_windows_stay_quiet() {
        // A partition that heals before (or the instant) it starts, an
        // empty node set, and a ≤1.0 slowdown can never fire: all three
        // are dropped so the plan still classifies Quiet.
        let plan = PartitionPlan::new(7)
            .split(&[NodeId(1)], t(5), Some(t(5)))
            .split(&[NodeId(2)], t(9), Some(t(3)))
            .split(&[], t(1), None)
            .slow_link(NodeId(3), t(1), Some(t(9)), 1.0)
            .slow_link(NodeId(3), t(4), Some(t(2)), 3.0);
        assert!(plan.is_quiet());
        assert_eq!(plan.layer_state(), LayerState::Quiet);
    }

    #[test]
    fn windows_are_half_open_and_heal() {
        let plan = PartitionPlan::new(1).split(&[NodeId(2)], t(10), Some(t(20)));
        assert!(!plan.is_quiet());
        assert!(!plan.is_isolated_at(NodeId(2), t(9)));
        assert!(plan.is_isolated_at(NodeId(2), t(10)));
        assert!(plan.is_isolated_at(NodeId(2), t(19)));
        assert!(!plan.is_isolated_at(NodeId(2), t(20)));
        assert!(!plan.is_isolated_at(NodeId(1), t(15)));
        assert_eq!(plan.isolation_window(NodeId(2)), Some((t(10), Some(t(20)))));
        assert_eq!(plan.isolated_forever_from(NodeId(2)), None);
    }

    #[test]
    fn unhealed_partitions_are_permanent() {
        let plan = PartitionPlan::new(1).split(&[NodeId(0), NodeId(3)], t(5), None);
        assert!(plan.is_isolated_at(NodeId(3), t(1_000_000)));
        assert_eq!(plan.isolated_forever_from(NodeId(3)), Some(t(5)));
        assert_eq!(plan.isolated_forever_from(NodeId(1)), None);
    }

    #[test]
    fn later_splits_evict_nodes_from_earlier_events() {
        let plan = PartitionPlan::new(1)
            .split(&[NodeId(1), NodeId(2)], t(1), Some(t(10)))
            .split(&[NodeId(2)], t(20), Some(t(30)));
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.isolation_window(NodeId(2)), Some((t(20), Some(t(30)))));
        assert!(!plan.is_isolated_at(NodeId(2), t(5)));
        assert!(plan.is_isolated_at(NodeId(1), t(5)));
    }

    #[test]
    fn slow_links_stretch_inside_their_window() {
        let plan = PartitionPlan::new(1).slow_link(NodeId(2), t(10), Some(t(20)), 4.0);
        assert!(!plan.is_quiet());
        assert_eq!(plan.slowdown_at(NodeId(2), t(9)), 1.0);
        assert_eq!(plan.slowdown_at(NodeId(2), t(10)), 4.0);
        assert_eq!(plan.slowdown_at(NodeId(2), t(20)), 1.0);
        assert_eq!(plan.slowdown_at(NodeId(1), t(15)), 1.0);
        // A slow node is never *isolated* — that distinction is what the
        // detector's false-positive handling exists for.
        assert!(!plan.is_isolated_at(NodeId(2), t(15)));
    }

    #[test]
    fn seeded_is_deterministic_transient_and_spares_a_node() {
        let a = PartitionPlan::seeded(0xC0FFEE, 4, 10, t(0), SimDuration::from_millis(100));
        let b = PartitionPlan::seeded(0xC0FFEE, 4, 10, t(0), SimDuration::from_millis(100));
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 3); // clamped to num_nodes - 1
        for e in a.events() {
            let heal = e.heal.expect("seeded partitions are transient");
            assert!(heal > e.start);
            assert!(heal <= t(100));
        }
        let isolated: Vec<NodeId> = (0..4)
            .map(NodeId)
            .filter(|&n| a.isolation_window(n).is_some())
            .collect();
        assert_eq!(isolated.len(), 3);
    }

    #[test]
    fn different_seeds_differ() {
        let a = PartitionPlan::seeded(1, 12, 3, t(0), SimDuration::from_secs(1));
        let b = PartitionPlan::seeded(2, 12, 3, t(0), SimDuration::from_secs(1));
        assert_ne!(a, b);
    }
}
