#![warn(missing_docs)]

//! Simulated cluster substrate.
//!
//! The paper evaluates EFind on a 12-node Hadoop cluster connected by 1 Gbps
//! Ethernet. This crate replaces the hardware with a deterministic model:
//!
//! * [`SimDuration`]/[`SimTime`] — a virtual clock with nanosecond
//!   resolution; every reported "second" in the reproduction is virtual,
//! * [`NetworkModel`] — point-to-point bandwidth + latency inside one data
//!   center (the paper's `BW` term),
//! * [`DiskModel`] — sequential read/write bandwidth per node,
//! * [`Cluster`] — node inventory with per-node map/reduce slots,
//! * [`sched`] — an event-driven slot scheduler that turns per-task costs
//!   into a phase schedule and makespan, with Hadoop-style locality
//!   preferences plus the *index locality* affinity of §3.4.
//!
//! User code still runs for real; only durations are modeled, so counts
//! (records, bytes, lookups) are exact and times are reproducible.

pub mod chaos;
pub mod corrupt;
pub mod detector;
pub mod model;
pub mod netsplit;
pub mod node;
pub mod profile;
pub mod sched;
pub mod tenancy;
pub mod time;

pub use chaos::{ChaosPlan, CrashEvent};
pub use corrupt::CorruptionPlan;
pub use detector::{DetectorConfig, Suspicion, Verdict};
pub use model::{DiskModel, NetworkModel};
pub use netsplit::{LinkSlowdown, PartitionEvent, PartitionPlan};
pub use node::{Cluster, ClusterBuilder, NodeId};
pub use profile::{InjectionProfile, LayerState};
pub use sched::{Assignment, PartitionReplay, Schedule, SlotKind, TaskSpec};
pub use tenancy::{
    Grant, IndexRateLimit, MultiTenantScheduler, QosCharge, SchedDecision, SchedLogEntry,
    TenancyConfig, TenancyLedger, TenantId, TenantLedgerRow, TenantSpec, TokenBucket,
};
pub use time::{SimDuration, SimTime};
