//! Virtual-time heartbeat failure detection.
//!
//! PR 4's crash layer let the scheduler read `ChaosPlan::is_dead_at`
//! directly — an *omniscient* master that knows the instant a node dies.
//! Real masters only see missing heartbeats, and the gap between "silent"
//! and "dead" is where gray failures live: a partitioned node looks
//! exactly like a crashed one until (unless) it heals, and a node behind
//! a slow link looks suspicious while being perfectly healthy.
//!
//! [`DetectorConfig`] models that gap deterministically. Nodes send a
//! heartbeat every `interval`; the master suspects a node once it has
//! heard nothing for `suspicion` (rounded up to the next heartbeat
//! boundary — the master only *notices* silence when a beat fails to
//! arrive). [`DetectorConfig::assess`] folds a node's
//! [`PartitionPlan`] windows through that state machine and returns, per
//! node, whether suspicion ever fires, when, and how it resolves:
//!
//! * **Confirmed** — the partition never heals; from `suspect_at` the
//!   node is treated as gone (tasks re-placed, re-replication charged).
//! * **Refuted** — the node comes back (partition heals, or it was only
//!   a slow link) before the run ends: it rejoins at `rejoin_at`, any
//!   pending re-replication for it is cancelled, and results its old
//!   tasks produced in the meantime are reconciled exactly-once.
//!
//! Everything is a pure function of the plan and the config — no clocks,
//! no state — so schedule replays stay bit-identical across runs.

use crate::netsplit::PartitionPlan;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// Heartbeat/suspicion parameters of the virtual-time failure detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Heartbeat period. Every node beats once per interval; the master
    /// re-evaluates silence only at beat boundaries.
    pub interval: SimDuration,
    /// Silence threshold: a node unheard for this long becomes suspected.
    pub suspicion: SimDuration,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        // 500 µs beats, suspicion after 3 missed beats. The analyzer
        // (EF025) warns when interval ≥ suspicion — such a detector
        // suspects every node on every beat.
        DetectorConfig {
            interval: SimDuration::from_micros(500),
            suspicion: SimDuration::from_micros(1_500),
        }
    }
}

/// How a suspicion resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The node never came back: treat it as gone from `suspect_at` on.
    Confirmed,
    /// The node was reachable (or reachable again) before the run ended:
    /// it rejoins at `rejoin_at` and its in-flight work is reconciled.
    Refuted {
        /// Virtual time the first post-silence heartbeat lands.
        rejoin_at: SimTime,
    },
}

/// One node's trip through the suspicion state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Suspicion {
    /// The suspected node.
    pub node: NodeId,
    /// Virtual time the master declares the node suspect.
    pub suspect_at: SimTime,
    /// How the suspicion resolved.
    pub verdict: Verdict,
    /// True when the node was never unreachable — a slow link starved
    /// the heartbeats past the threshold (gray-failure false positive).
    pub false_positive: bool,
}

impl DetectorConfig {
    /// Virtual delay between a node going silent and the master
    /// suspecting it: the suspicion threshold rounded up to the next
    /// heartbeat boundary (silence is only observed when a beat is due).
    pub fn suspect_delay(&self) -> SimDuration {
        if self.interval.is_zero() {
            return self.suspicion;
        }
        let beats = self.suspicion.as_nanos().div_ceil(self.interval.as_nanos());
        self.interval * beats.max(1)
    }

    /// Folds `node`'s partition/slowdown windows through the suspicion
    /// state machine. `None` means the master never suspects the node —
    /// either it was never impaired, or the impairment cleared before a
    /// heartbeat went missing long enough.
    pub fn assess(&self, plan: &PartitionPlan, node: NodeId) -> Option<Suspicion> {
        // Isolation silences heartbeats outright.
        if let Some((start, heal)) = plan.isolation_window(node) {
            let suspect_at = start + self.suspect_delay();
            return match heal {
                None => Some(Suspicion {
                    node,
                    suspect_at,
                    verdict: Verdict::Confirmed,
                    false_positive: false,
                }),
                Some(h) if suspect_at < h => Some(Suspicion {
                    node,
                    suspect_at,
                    verdict: Verdict::Refuted { rejoin_at: h },
                    false_positive: false,
                }),
                // Healed before the master noticed: a stall, never a
                // suspicion. Results merely arrive late.
                Some(_) => None,
            };
        }
        // A slow link delays beats by `factor`; when a single stretched
        // beat period exceeds the suspicion threshold the master falsely
        // suspects a healthy node, refuted the moment the late beat
        // lands (or the link heals, whichever the window permits).
        if let Some(s) = plan.slow_window(node) {
            let stretched = self.interval.mul_f64(s.factor);
            if stretched > self.suspicion {
                let suspect_at = s.start + self.suspicion;
                let late_beat = s.start + stretched;
                let rejoin_at = match s.heal {
                    Some(h) => {
                        if suspect_at >= h {
                            return None; // link healed before suspicion
                        }
                        if late_beat < h {
                            late_beat
                        } else {
                            h
                        }
                    }
                    None => late_beat,
                };
                return Some(Suspicion {
                    node,
                    suspect_at,
                    verdict: Verdict::Refuted { rejoin_at },
                    false_positive: true,
                });
            }
        }
        None
    }

    /// Assesses every node of a `num_nodes` cluster, sorted by
    /// `(suspect_at, node)` — the deterministic order replays consume.
    pub fn assess_all(&self, plan: &PartitionPlan, num_nodes: u16) -> Vec<Suspicion> {
        let mut out: Vec<Suspicion> = (0..num_nodes)
            .filter_map(|n| self.assess(plan, NodeId(n)))
            .collect();
        out.sort_by_key(|s| (s.suspect_at, s.node.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn det(interval_us: u64, suspicion_us: u64) -> DetectorConfig {
        DetectorConfig {
            interval: SimDuration::from_micros(interval_us),
            suspicion: SimDuration::from_micros(suspicion_us),
        }
    }

    #[test]
    fn suspect_delay_rounds_up_to_a_beat() {
        assert_eq!(
            det(500, 1_500).suspect_delay(),
            SimDuration::from_micros(1_500)
        );
        assert_eq!(
            det(400, 1_500).suspect_delay(),
            SimDuration::from_micros(1_600)
        );
        assert_eq!(
            det(0, 1_500).suspect_delay(),
            SimDuration::from_micros(1_500)
        );
    }

    #[test]
    fn healthy_nodes_are_never_suspected() {
        let plan = PartitionPlan::new(1).split(&[NodeId(2)], t(100), None);
        assert_eq!(det(500, 1_500).assess(&plan, NodeId(0)), None);
        assert!(det(500, 1_500)
            .assess_all(&PartitionPlan::none(), 8)
            .is_empty());
    }

    #[test]
    fn unhealed_isolation_is_confirmed() {
        let plan = PartitionPlan::new(1).split(&[NodeId(2)], t(100), None);
        let s = det(500, 1_500).assess(&plan, NodeId(2)).unwrap();
        assert_eq!(s.suspect_at, t(1_600));
        assert_eq!(s.verdict, Verdict::Confirmed);
        assert!(!s.false_positive);
    }

    #[test]
    fn healing_after_suspicion_is_refuted() {
        let plan = PartitionPlan::new(1).split(&[NodeId(2)], t(100), Some(t(5_000)));
        let s = det(500, 1_500).assess(&plan, NodeId(2)).unwrap();
        assert_eq!(s.suspect_at, t(1_600));
        assert_eq!(
            s.verdict,
            Verdict::Refuted {
                rejoin_at: t(5_000)
            }
        );
        assert!(!s.false_positive);
    }

    #[test]
    fn healing_before_suspicion_is_a_stall_not_a_suspicion() {
        let plan = PartitionPlan::new(1).split(&[NodeId(2)], t(100), Some(t(1_000)));
        assert_eq!(det(500, 1_500).assess(&plan, NodeId(2)), None);
    }

    #[test]
    fn slow_link_past_threshold_is_a_false_positive() {
        // 4× stretch on 500 µs beats → 2 ms silence > 1.5 ms threshold:
        // suspected at start + threshold, refuted when the late beat lands.
        let plan = PartitionPlan::new(1).slow_link(NodeId(1), t(100), Some(t(10_000)), 4.0);
        let s = det(500, 1_500).assess(&plan, NodeId(1)).unwrap();
        assert_eq!(s.suspect_at, t(1_600));
        assert_eq!(
            s.verdict,
            Verdict::Refuted {
                rejoin_at: t(2_100)
            }
        );
        assert!(s.false_positive);
    }

    #[test]
    fn mild_slowdown_never_trips_the_detector() {
        // 2× stretch → 1 ms silence < 1.5 ms threshold: no suspicion.
        let plan = PartitionPlan::new(1).slow_link(NodeId(1), t(100), Some(t(10_000)), 2.0);
        assert_eq!(det(500, 1_500).assess(&plan, NodeId(1)), None);
    }

    #[test]
    fn assess_all_sorts_by_suspect_time() {
        let plan = PartitionPlan::new(1)
            .split(&[NodeId(3)], t(200), None)
            .split(&[NodeId(1)], t(100), Some(t(9_000)));
        let all = det(500, 1_500).assess_all(&plan, 4);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].node, NodeId(1));
        assert_eq!(all[1].node, NodeId(3));
        assert!(all[0].suspect_at <= all[1].suspect_at);
    }
}
