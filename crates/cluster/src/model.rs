//! Network and disk cost models.
//!
//! The paper's cost analysis (Table 1) assumes MapReduce and the indices are
//! hosted in one data center with a uniform inter-machine bandwidth `BW`;
//! [`NetworkModel`] is exactly that, plus a per-message latency so small
//! lookups are not free. [`DiskModel`] supplies the sequential bandwidths
//! behind the DFS store/retrieve cost `f`.

use crate::time::SimDuration;

/// Uniform point-to-point network model (the paper's `BW`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Sustained bandwidth between any two machines, in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-message latency (round-trip setup cost).
    pub latency: SimDuration,
}

impl NetworkModel {
    /// The paper's testbed: 1 Gbps Ethernet ≈ 125 MB/s, 100 µs latency.
    pub fn gigabit() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 125.0e6,
            latency: SimDuration::from_micros(100),
        }
    }

    /// Time to move `bytes` between two machines, one message.
    pub fn transfer(&self, bytes: u64) -> SimDuration {
        self.latency + self.volume(bytes)
    }

    /// Pure volume term `bytes / BW`, without the per-message latency.
    ///
    /// This is the form used by the paper's formulae, where many lookups are
    /// pipelined over one connection.
    pub fn volume(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::gigabit()
    }
}

/// Per-node sequential disk model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskModel {
    /// Sequential read bandwidth in bytes per second.
    pub read_bytes_per_sec: f64,
    /// Sequential write bandwidth in bytes per second.
    pub write_bytes_per_sec: f64,
}

impl DiskModel {
    /// A 7200 rpm SAS drive like the paper's testbed: ~120 MB/s read,
    /// ~100 MB/s write.
    pub fn sas_hdd() -> Self {
        DiskModel {
            read_bytes_per_sec: 120.0e6,
            write_bytes_per_sec: 100.0e6,
        }
    }

    /// Time to sequentially read `bytes`.
    pub fn read(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.read_bytes_per_sec)
    }

    /// Time to sequentially write `bytes`.
    pub fn write(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.write_bytes_per_sec)
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel::sas_hdd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_transfer_time() {
        let net = NetworkModel::gigabit();
        // 125 MB at 125 MB/s = 1 s (plus latency).
        let t = net.transfer(125_000_000);
        assert!((t.as_secs_f64() - 1.0001).abs() < 1e-6, "{t}");
    }

    #[test]
    fn volume_excludes_latency() {
        let net = NetworkModel::gigabit();
        assert_eq!(net.volume(0), SimDuration::ZERO);
        assert!(net.transfer(0) > SimDuration::ZERO);
    }

    #[test]
    fn disk_read_write() {
        let d = DiskModel::sas_hdd();
        assert!((d.read(120_000_000).as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((d.write(100_000_000).as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_transfers_take_longer() {
        let net = NetworkModel::gigabit();
        assert!(net.transfer(1 << 20) < net.transfer(1 << 24));
    }
}
