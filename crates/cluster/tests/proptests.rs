//! Property-based tests for the slot scheduler: structural invariants
//! that must hold for any task set on any cluster shape.

use efind_cluster::sched::{schedule_phase, SlotKind, TaskSpec};
use efind_cluster::{Cluster, NodeId, SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct TaskInput {
    base_ms: u64,
    input_kb: u64,
    host: Option<u16>,
    affinity: Option<u16>,
}

fn arb_tasks(max_nodes: u16) -> impl Strategy<Value = Vec<TaskInput>> {
    proptest::collection::vec(
        (
            1u64..500,
            0u64..256,
            proptest::option::of(0..max_nodes),
            proptest::option::of(0..max_nodes),
        )
            .prop_map(|(base_ms, input_kb, host, affinity)| TaskInput {
                base_ms,
                input_kb,
                host,
                affinity,
            }),
        1..60,
    )
}

fn build_specs(inputs: &[TaskInput]) -> Vec<TaskSpec> {
    inputs
        .iter()
        .enumerate()
        .map(|(i, t)| TaskSpec {
            id: i,
            kind: SlotKind::Map,
            base: SimDuration::from_millis(t.base_ms),
            input_bytes: t.input_kb * 1024,
            input_hosts: t.host.map(|h| vec![NodeId(h)]).unwrap_or_default(),
            affinity: t.affinity.map(|a| vec![NodeId(a)]).unwrap_or_default(),
            affinity_penalty: SimDuration::from_millis(5),
            hard_affinity: false,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_task_is_assigned_exactly_once(inputs in arb_tasks(4), nodes in 1u16..5, slots in 1u16..4) {
        let cluster = Cluster::builder().nodes(nodes).map_slots(slots).build();
        let specs = build_specs(&inputs);
        let schedule = schedule_phase(&cluster, &specs, SimTime::ZERO);
        prop_assert_eq!(schedule.assignments.len(), specs.len());
        let mut ids: Vec<usize> = schedule.assignments.iter().map(|a| a.task_id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..specs.len()).collect::<Vec<_>>());
        for a in &schedule.assignments {
            prop_assert!(cluster.contains(a.node));
            prop_assert!(a.end >= a.start);
        }
    }

    #[test]
    fn makespan_is_the_latest_end(inputs in arb_tasks(4), nodes in 1u16..5) {
        let cluster = Cluster::builder().nodes(nodes).map_slots(2).build();
        let specs = build_specs(&inputs);
        let schedule = schedule_phase(&cluster, &specs, SimTime::ZERO);
        let latest = schedule.assignments.iter().map(|a| a.end).max().unwrap();
        prop_assert_eq!(schedule.makespan, latest);
    }

    #[test]
    fn slots_never_overlap(inputs in arb_tasks(3), nodes in 1u16..4, slots in 1u16..3) {
        let cluster = Cluster::builder().nodes(nodes).map_slots(slots).build();
        let specs = build_specs(&inputs);
        let schedule = schedule_phase(&cluster, &specs, SimTime::ZERO);
        // Per node, at most `slots` tasks may run at any instant. Check
        // at every task start.
        for probe in &schedule.assignments {
            let concurrent = schedule
                .assignments
                .iter()
                .filter(|a| {
                    a.node == probe.node && a.start <= probe.start && probe.start < a.end
                })
                .count();
            prop_assert!(
                concurrent <= slots as usize,
                "{} tasks concurrent on {} with {} slots",
                concurrent,
                probe.node,
                slots
            );
        }
    }

    #[test]
    fn phase_start_shifts_uniformly(inputs in arb_tasks(3)) {
        let cluster = Cluster::builder().nodes(3).map_slots(2).build();
        let specs = build_specs(&inputs);
        let offset = SimDuration::from_secs(7);
        let s0 = schedule_phase(&cluster, &specs, SimTime::ZERO);
        let s1 = schedule_phase(&cluster, &specs, SimTime::ZERO + offset);
        prop_assert_eq!(s1.makespan.since(SimTime::ZERO + offset), s0.makespan.since(SimTime::ZERO));
        for (a, b) in s0.assignments.iter().zip(&s1.assignments) {
            prop_assert_eq!(a.node, b.node);
            prop_assert_eq!(a.start + offset, b.start);
        }
    }

    #[test]
    fn degradation_never_shrinks_makespan(inputs in arb_tasks(3), factor in 1.0f64..8.0) {
        let healthy = Cluster::builder().nodes(3).map_slots(2).build();
        let degraded = Cluster::builder()
            .nodes(3)
            .map_slots(2)
            .degrade(NodeId(0), factor)
            .build();
        let specs = build_specs(&inputs);
        let h = schedule_phase(&healthy, &specs, SimTime::ZERO);
        let d = schedule_phase(&degraded, &specs, SimTime::ZERO);
        prop_assert!(d.makespan >= h.makespan);
    }

    #[test]
    fn speculation_never_hurts_under_hidden_stragglers(inputs in arb_tasks(3), factor in 1.0f64..10.0) {
        let plain = Cluster::builder()
            .nodes(3)
            .map_slots(2)
            .degrade_hidden(NodeId(1), factor)
            .build();
        let speculative = Cluster::builder()
            .nodes(3)
            .map_slots(2)
            .degrade_hidden(NodeId(1), factor)
            .speculation(true)
            .build();
        let specs = build_specs(&inputs);
        let p = schedule_phase(&plain, &specs, SimTime::ZERO);
        let s = schedule_phase(&speculative, &specs, SimTime::ZERO);
        prop_assert!(s.makespan <= p.makespan, "spec {} vs plain {}", s.makespan, p.makespan);
    }
}
