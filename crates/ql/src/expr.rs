//! Row expressions and predicates.
//!
//! Rows are positional `Datum::List` values. Expressions evaluate against
//! a row; predicates combine comparisons with boolean connectives.

use efind_common::Datum;

/// A scalar expression over a row.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// The `i`-th column of the row.
    Col(usize),
    /// A literal value.
    Lit(Datum),
    /// A composite value built from sub-expressions (multi-column join
    /// keys, e.g. TPC-H Q9's `(partkey, suppkey)` PartSupp key).
    Composite(Vec<Expr>),
}

/// Shorthand for [`Expr::Col`].
pub fn col(i: usize) -> Expr {
    Expr::Col(i)
}

/// Shorthand for [`Expr::Lit`].
pub fn lit(v: impl Into<Datum>) -> Expr {
    Expr::Lit(v.into())
}

/// Shorthand for [`Expr::Composite`].
pub fn composite(parts: impl IntoIterator<Item = Expr>) -> Expr {
    Expr::Composite(parts.into_iter().collect())
}

impl Expr {
    /// Evaluates against a row (`Null` for out-of-range columns or
    /// non-list rows).
    pub fn eval(&self, row: &Datum) -> Datum {
        match self {
            Expr::Lit(v) => v.clone(),
            Expr::Col(i) => row
                .as_list()
                .and_then(|cols| cols.get(*i))
                .cloned()
                .unwrap_or(Datum::Null),
            Expr::Composite(parts) => Datum::List(parts.iter().map(|e| e.eval(row)).collect()),
        }
    }

    /// `self == other`.
    pub fn eq(self, other: Expr) -> Pred {
        Pred::Eq(self, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Pred {
        Pred::Lt(self, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Pred {
        Pred::Gt(self, other)
    }

    /// Text containment (`LIKE '%needle%'`).
    pub fn contains(self, needle: impl Into<String>) -> Pred {
        Pred::Contains(self, needle.into())
    }
}

/// A row predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum Pred {
    /// Equality.
    Eq(Expr, Expr),
    /// Strictly less (by [`Datum`] ordering).
    Lt(Expr, Expr),
    /// Strictly greater.
    Gt(Expr, Expr),
    /// Substring match on text values (false for non-text).
    Contains(Expr, String),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Evaluates against a row.
    pub fn eval(&self, row: &Datum) -> bool {
        match self {
            Pred::Eq(a, b) => a.eval(row) == b.eval(row),
            Pred::Lt(a, b) => a.eval(row) < b.eval(row),
            Pred::Gt(a, b) => a.eval(row) > b.eval(row),
            Pred::Contains(e, needle) => e
                .eval(row)
                .as_text()
                .is_some_and(|t| t.contains(needle.as_str())),
            Pred::And(a, b) => a.eval(row) && b.eval(row),
            Pred::Or(a, b) => a.eval(row) || b.eval(row),
            Pred::Not(p) => !p.eval(row),
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        Pred::Not(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Datum {
        Datum::List(vec![
            Datum::Int(5),
            Datum::Text("green metal box".into()),
            Datum::Float(2.5),
        ])
    }

    #[test]
    fn column_and_literal_eval() {
        assert_eq!(col(0).eval(&row()), Datum::Int(5));
        assert_eq!(col(9).eval(&row()), Datum::Null);
        assert_eq!(lit(7i64).eval(&row()), Datum::Int(7));
        assert_eq!(col(0).eval(&Datum::Int(3)), Datum::Null);
    }

    #[test]
    fn composite_builds_lists() {
        let e = composite([col(0), lit(9i64)]);
        assert_eq!(
            e.eval(&row()),
            Datum::List(vec![Datum::Int(5), Datum::Int(9)])
        );
    }

    #[test]
    fn comparisons() {
        assert!(col(0).eq(lit(5i64)).eval(&row()));
        assert!(col(0).lt(lit(6i64)).eval(&row()));
        assert!(col(2).gt(lit(2.0)).eval(&row()));
        assert!(!col(0).lt(lit(5i64)).eval(&row()));
    }

    #[test]
    fn text_contains() {
        assert!(col(1).contains("metal").eval(&row()));
        assert!(!col(1).contains("wood").eval(&row()));
        assert!(!col(0).contains("5").eval(&row())); // non-text
    }

    #[test]
    fn connectives() {
        let p = col(0).eq(lit(5i64)).and(col(1).contains("green"));
        assert!(p.eval(&row()));
        let q = col(0).eq(lit(6i64)).or(col(1).contains("green"));
        assert!(q.eval(&row()));
        assert!(!q.clone().not().eval(&row()));
        assert!(!q.and(col(2).lt(lit(0.0))).eval(&row()));
    }
}
