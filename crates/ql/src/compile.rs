//! Compiles a [`Query`] into an EFind-enhanced job.
//!
//! Every `IndexJoin` step becomes an EFind *head operator*, so the whole
//! strategy machinery applies; runs of filters/projections between joins
//! become zero-index operators (pure record-wise transforms — EFind
//! operators with an empty index list). Group-by/aggregates compile into
//! the job's Map and Reduce.

use efind::{operator_fn, BoundOperator, IndexInput, IndexJobConf, IndexOutput};
use efind_common::{Datum, Record};
use efind_mapreduce::{mapper_fn, reducer_fn, Collector};

use crate::expr::{Expr, Pred};
use crate::query::{Agg, IndexJoinSpec, JoinKind, Query, Step};

/// A transform applied between joins.
#[derive(Clone)]
enum Transform {
    Filter(Pred),
    Project(Vec<Expr>),
}

fn apply_transforms(transforms: &[Transform], row: Datum) -> Option<Datum> {
    let mut row = row;
    for t in transforms {
        match t {
            Transform::Filter(pred) => {
                if !pred.eval(&row) {
                    return None;
                }
            }
            Transform::Project(exprs) => {
                row = Datum::List(exprs.iter().map(|e| e.eval(&row)).collect());
            }
        }
    }
    Some(row)
}

/// A zero-index EFind operator applying filters/projections record-wise.
fn transform_operator(name: String, transforms: Vec<Transform>) -> BoundOperator {
    let op = operator_fn(
        &name,
        0,
        |_rec: &mut Record, _keys: &mut IndexInput| {},
        move |rec: Record, _values: &IndexOutput, out: &mut dyn Collector| {
            if let Some(row) = apply_transforms(&transforms, rec.value) {
                out.collect(Record {
                    key: rec.key,
                    value: row,
                });
            }
        },
    );
    BoundOperator::new(op)
}

/// An index-join EFind operator.
fn join_operator(spec: IndexJoinSpec) -> BoundOperator {
    let IndexJoinSpec {
        name,
        index,
        on,
        take,
        kind,
    } = spec;
    let on_post = on.clone();
    let op = operator_fn(
        &name,
        1,
        move |rec: &mut Record, keys: &mut IndexInput| {
            keys.put(0, on.eval(&rec.value));
        },
        move |rec: Record, values: &IndexOutput, out: &mut dyn Collector| {
            let _ = &on_post; // the key expression is part of the operator's identity
                              // Convention: the index's value list IS the positional row
                              // (how the KV-store substrates hold table rows).
            let fields = values.first(0);
            let mut row = match rec.value.into_list() {
                Some(cols) => cols,
                None => return,
            };
            if fields.is_empty() {
                match kind {
                    JoinKind::Inner => return,
                    JoinKind::Left => {
                        for _ in &take {
                            row.push(Datum::Null);
                        }
                    }
                }
            } else {
                for &i in &take {
                    row.push(fields.get(i).cloned().unwrap_or(Datum::Null));
                }
            }
            out.collect(Record {
                key: rec.key,
                value: Datum::List(row),
            });
        },
    );
    BoundOperator::new(op).add_index(index)
}

fn eval_aggs(aggs: &[Agg], rows: &[Datum]) -> Vec<Datum> {
    aggs.iter()
        .map(|agg| match agg {
            Agg::Count => Datum::Int(rows.len() as i64),
            Agg::Sum(e) => Datum::Float(
                rows.iter()
                    .filter_map(|r| e.eval(r).as_float())
                    .sum::<f64>(),
            ),
            Agg::Min(e) => rows.iter().map(|r| e.eval(r)).min().unwrap_or(Datum::Null),
            Agg::Max(e) => rows.iter().map(|r| e.eval(r)).max().unwrap_or(Datum::Null),
            Agg::Avg(e) => {
                let nums: Vec<f64> = rows.iter().filter_map(|r| e.eval(r).as_float()).collect();
                if nums.is_empty() {
                    Datum::Null
                } else {
                    Datum::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            Agg::TopKBy { sort, take, k } => {
                let mut ranked: Vec<(Datum, Datum)> =
                    rows.iter().map(|r| (sort.eval(r), take.eval(r))).collect();
                ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                ranked.truncate(*k);
                Datum::List(ranked.into_iter().map(|(_, t)| t).collect())
            }
        })
        .collect()
}

/// Compiles `query` into an enhanced job named `name` writing `output`.
pub fn compile(query: Query, name: &str, output: &str) -> IndexJobConf {
    let mut ijob = IndexJobConf::new(name, query.input.clone(), output);

    // Fold the pipeline into alternating transform / join operators.
    let mut pending: Vec<Transform> = Vec::new();
    let mut stage = 0usize;
    for step in query.steps {
        match step {
            Step::Filter(p) => pending.push(Transform::Filter(p)),
            Step::Project(e) => pending.push(Transform::Project(e)),
            Step::IndexJoin(spec) => {
                if !pending.is_empty() {
                    ijob = ijob.add_head_index_operator(transform_operator(
                        format!("{name}-stage{stage}"),
                        std::mem::take(&mut pending),
                    ));
                    stage += 1;
                }
                ijob = ijob.add_head_index_operator(join_operator(spec));
            }
        }
    }
    if !pending.is_empty() {
        ijob = ijob
            .add_head_index_operator(transform_operator(format!("{name}-stage{stage}"), pending));
    }

    let grouped = !query.group_by.is_empty() || !query.aggs.is_empty();
    if grouped {
        let keys = query.group_by.clone();
        ijob = ijob.set_mapper(mapper_fn(move |rec, out, _| {
            let key = if keys.is_empty() {
                Datum::Null
            } else {
                Datum::List(keys.iter().map(|e| e.eval(&rec.value)).collect())
            };
            out.collect(Record {
                key,
                value: rec.value,
            });
        }));
        let aggs = query.aggs.clone();
        let reducers = if query.group_by.is_empty() {
            1
        } else {
            query.num_reducers
        };
        ijob = ijob.set_reducer(
            reducer_fn(move |key, rows, out, _| {
                // The output row = group-key fields ++ aggregate values,
                // so grouped results are themselves scannable by a
                // follow-up query (pipeline composability).
                let mut fields: Vec<Datum> = match &key {
                    Datum::List(ks) => ks.clone(),
                    Datum::Null => Vec::new(),
                    other => vec![other.clone()],
                };
                fields.extend(eval_aggs(&aggs, &rows));
                out.collect(Record {
                    key,
                    value: Datum::List(fields),
                });
            }),
            reducers,
        );
    } else {
        ijob = ijob.set_mapper(mapper_fn(|rec, out, _| out.collect(rec)));
    }
    ijob
}

/// Like [`compile`], but validates the resulting job configuration before
/// handing it back. User-supplied join names can collide (duplicate
/// operator names) or otherwise violate [`IndexJobConf::validate`]; this
/// entry point surfaces those as [`efind_common::Error::InvalidConfig`]
/// instead of deferring the failure to `compile_pipeline`.
pub fn compile_checked(
    query: Query,
    name: &str,
    output: &str,
) -> efind_common::Result<IndexJobConf> {
    let ijob = compile(query, name, output);
    ijob.validate()?;
    Ok(ijob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use efind::{EFindRuntime, Mode, Strategy};
    use efind_cluster::{Cluster, SimDuration};
    use efind_dfs::{Dfs, DfsConfig};
    use efind_index::MemTable;
    use std::sync::Arc;

    fn setup() -> (Cluster, Dfs, Arc<MemTable>) {
        let cluster = Cluster::builder()
            .nodes(3)
            .map_slots(2)
            .reduce_slots(2)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 1024,
                replication: 2,
                seed: 8,
            },
        );
        // Sales rows: [product, quantity, price]
        let rows: Vec<Record> = (0..600i64)
            .map(|i| {
                Record::new(
                    i,
                    Datum::List(vec![
                        Datum::Int(i % 20),
                        Datum::Int(1 + i % 4),
                        Datum::Float((i % 7) as f64 + 0.5),
                    ]),
                )
            })
            .collect();
        dfs.write_file("sales", rows);
        // Catalog row: product → [category, active]
        let catalog = Arc::new(MemTable::new(
            "catalog",
            (0..18i64).map(|p| {
                (
                    Datum::Int(p),
                    vec![
                        Datum::Text(format!("cat{}", p % 3)),
                        Datum::Bool(p % 2 == 0),
                    ],
                )
            }),
            SimDuration::from_micros(200),
        ));
        (cluster, dfs, catalog)
    }

    fn run(cluster: &Cluster, dfs: &mut Dfs, job: &IndexJobConf, mode: Mode) -> Vec<Record> {
        let mut rt = EFindRuntime::new(cluster, dfs);
        if matches!(mode, Mode::Optimized) {
            rt.run(job, Mode::Uniform(Strategy::Baseline)).unwrap();
        }
        rt.run(job, mode).unwrap();
        let mut out = rt.dfs.read_file(&job.output).unwrap();
        out.sort();
        out
    }

    #[test]
    fn filter_project_without_grouping() {
        let (cluster, mut dfs, _) = setup();
        let job = Query::scan("sales")
            .filter(col(1).gt(lit(2i64)))
            .project([col(0), col(2)])
            .into_job("fp", "out");
        let out = run(&cluster, &mut dfs, &job, Mode::Uniform(Strategy::Baseline));
        assert_eq!(out.len(), 300); // quantity ∈ {3,4} half the time
        for r in &out {
            assert_eq!(r.value.as_list().unwrap().len(), 2);
        }
    }

    #[test]
    fn compile_checked_rejects_duplicate_join_names() {
        let (_, _, catalog) = setup();
        let query = Query::scan("sales")
            .index_join("catalog", catalog.clone(), col(0), [0])
            .index_join("catalog", catalog, col(0), [1]);
        let err = match compile_checked(query, "dup", "out") {
            Ok(_) => panic!("duplicate join names were accepted"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn compile_checked_accepts_valid_query() {
        let (_, _, catalog) = setup();
        let query = Query::scan("sales")
            .filter(col(1).gt(lit(1i64)))
            .index_join("catalog", catalog, col(0), [0]);
        assert!(compile_checked(query, "ok", "out").is_ok());
    }

    #[test]
    fn index_join_group_aggregate_end_to_end() {
        let (cluster, mut dfs, catalog) = setup();
        // revenue by category for active products with quantity > 1
        let job = Query::scan("sales")
            .filter(col(1).gt(lit(1i64)))
            .index_join("catalog", catalog, col(0), [0, 1]) // append category, active
            .filter(col(4).eq(lit(true)))
            .group_by([col(3)])
            .aggregate([Agg::Count, Agg::Sum(col(2))])
            .into_job("rev", "out");
        let out = run(&cluster, &mut dfs, &job, Mode::Uniform(Strategy::Cache));
        assert!(!out.is_empty() && out.len() <= 3);
        // Reference computation.
        let mut expect: std::collections::BTreeMap<String, (i64, f64)> = Default::default();
        for i in 0..600i64 {
            let (product, qty, price) = (i % 20, 1 + i % 4, (i % 7) as f64 + 0.5);
            if qty <= 1 || product >= 18 || product % 2 != 0 {
                continue;
            }
            let e = expect.entry(format!("cat{}", product % 3)).or_default();
            e.0 += 1;
            e.1 += price;
        }
        assert_eq!(out.len(), expect.len());
        for r in &out {
            let row = r.value.as_list().unwrap();
            let cat = row[0].as_text().unwrap().to_owned();
            let (count, sum) = expect[&cat];
            assert_eq!(row[1].as_int().unwrap(), count, "{cat}");
            assert!((row[2].as_float().unwrap() - sum).abs() < 1e-9, "{cat}");
        }
    }

    #[test]
    fn left_join_pads_misses() {
        let (cluster, mut dfs, catalog) = setup();
        // Products 18, 19 are missing from the catalog.
        let job = Query::scan("sales")
            .left_index_join("catalog", catalog, col(0), [0])
            .into_job("lj", "out");
        let out = run(&cluster, &mut dfs, &job, Mode::Uniform(Strategy::Baseline));
        assert_eq!(out.len(), 600);
        let nulls = out
            .iter()
            .filter(|r| r.value.as_list().unwrap()[3].is_null())
            .count();
        assert_eq!(nulls, 60); // products 18 and 19: 30 rows each
    }

    #[test]
    fn inner_join_drops_misses() {
        let (cluster, mut dfs, catalog) = setup();
        let job = Query::scan("sales")
            .index_join("catalog", catalog, col(0), [0])
            .into_job("ij", "out");
        let out = run(&cluster, &mut dfs, &job, Mode::Uniform(Strategy::Baseline));
        assert_eq!(out.len(), 540);
    }

    #[test]
    fn global_aggregate_uses_one_group() {
        let (cluster, mut dfs, _) = setup();
        let job = Query::scan("sales")
            .aggregate([Agg::Count, Agg::Min(col(2)), Agg::Max(col(2))])
            .into_job("glob", "out");
        let out = run(&cluster, &mut dfs, &job, Mode::Uniform(Strategy::Baseline));
        assert_eq!(out.len(), 1);
        let row = out[0].value.as_list().unwrap();
        assert_eq!(row[0].as_int().unwrap(), 600);
        assert_eq!(row[1], Datum::Float(0.5));
        assert_eq!(row[2], Datum::Float(6.5));
    }

    #[test]
    fn topk_by_ranks_descending() {
        // Top-2 products by price, per category.
        let (cluster, mut dfs, catalog) = setup();
        let job = Query::scan("sales")
            .index_join("catalog", catalog, col(0), [0]) // + category(3)
            .group_by([col(3)])
            .aggregate([Agg::TopKBy {
                sort: col(2),
                take: col(0),
                k: 2,
            }])
            .into_job("topk", "out");
        let out = run(&cluster, &mut dfs, &job, Mode::Uniform(Strategy::Cache));
        assert!(!out.is_empty());
        for r in &out {
            let row = r.value.as_list().unwrap();
            let winners = row[1].as_list().unwrap();
            assert!(winners.len() <= 2);
            assert!(!winners.is_empty());
        }
    }

    #[test]
    fn grouped_output_is_scannable_by_a_follow_up_query() {
        // Two chained queries: revenue by (product) → count of products
        // with revenue above a threshold, per category... simplified:
        // stage 1 groups by product, stage 2 re-groups stage 1's rows.
        let (cluster, mut dfs, _) = setup();
        let stage1 = Query::scan("sales")
            .group_by([col(0)])
            .aggregate([Agg::Sum(col(2)), Agg::Avg(col(1))])
            .into_job("s1", "mid");
        run(
            &cluster,
            &mut dfs,
            &stage1,
            Mode::Uniform(Strategy::Baseline),
        );
        // mid rows: [product, revenue, avg_qty]
        let stage2 = Query::scan("mid")
            .filter(col(1).gt(lit(50.0)))
            .group_by([])
            .aggregate([Agg::Count])
            .into_job("s2", "out2");
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        rt.run(&stage2, Mode::Uniform(Strategy::Baseline)).unwrap();
        let out = rt.dfs.read_file("out2").unwrap();
        assert_eq!(out.len(), 1);
        let n = out[0].value.as_list().unwrap()[0].as_int().unwrap();
        assert!(n > 0 && n <= 20, "products above threshold: {n}");
    }

    #[test]
    fn queries_benefit_from_efind_strategies() {
        // The declarative join goes through the full strategy machinery:
        // the cache strategy must beat baseline on this redundant-key join.
        let (cluster, mut dfs, catalog) = setup();
        let build = |out: &str| {
            Query::scan("sales")
                .index_join("catalog", catalog.clone(), col(0), [0])
                .group_by([col(3)])
                .aggregate([Agg::Count])
                .into_job("q", out)
        };
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        let base = rt
            .run(&build("o1"), Mode::Uniform(Strategy::Baseline))
            .unwrap()
            .total_time;
        let cache = rt
            .run(&build("o2"), Mode::Uniform(Strategy::Cache))
            .unwrap()
            .total_time;
        assert!(cache < base, "cache {cache} vs base {base}");
    }

    #[test]
    fn optimized_mode_works_on_compiled_queries() {
        let (cluster, mut dfs, catalog) = setup();
        let job = Query::scan("sales")
            .index_join("catalog", catalog, col(0), [0])
            .group_by([col(3)])
            .aggregate([Agg::Count])
            .into_job("opt", "out");
        let baseline = run(&cluster, &mut dfs, &job, Mode::Uniform(Strategy::Baseline));
        let optimized = run(&cluster, &mut dfs, &job, Mode::Optimized);
        assert_eq!(baseline, optimized);
    }
}
