#![warn(missing_docs)]

//! # efind-ql — a minimal declarative layer over EFind
//!
//! The paper argues that "higher-level query languages [Pig, Hive] can
//! employ EFind to achieve flexible index access" (§1, Related Work).
//! This crate is that claim made concrete: a small Pig-Latin-style query
//! model — scan, filter, index join, project, group-by/aggregate — whose
//! compiler emits an [`efind::IndexJobConf`]. Every index join becomes an
//! EFind head operator, so the *entire* strategy machinery (cache,
//! re-partitioning, index locality, cost-based and adaptive optimization)
//! applies to declaratively written queries for free.
//!
//! Rows are `Datum::List` values; columns are positional.
//!
//! ```text
//! Query::scan("lineitem")
//!     .index_join(orders_idx, on: col(0), take: [0, 1, 2])   // EFind operator
//!     .filter(col(8).lt(lit(1200)))
//!     .group_by([col(0)])
//!     .aggregate([Agg::Sum(col(4))])
//!     .into_job("q", "out")
//! ```

pub mod compile;
pub mod expr;
pub mod query;

pub use compile::{compile, compile_checked};
pub use expr::{col, composite, lit, Expr, Pred};
pub use query::{Agg, IndexJoinSpec, JoinKind, Query, Step};
