//! The query model: a linear pipeline of steps over a scanned input,
//! optionally ending in a group-by with aggregates.

use std::sync::Arc;

use efind::IndexAccessor;

use crate::expr::{Expr, Pred};

/// How index-join misses are handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    /// Drop rows whose key finds nothing (the index-nested-loop joins of
    /// the paper's TPC-H experiments).
    Inner,
    /// Keep them, padding the taken columns with `Null`.
    Left,
}

/// One index join: look `on` up in `index`, append the `take` columns of
/// the first result value to the row.
#[derive(Clone)]
pub struct IndexJoinSpec {
    /// A stable name (becomes the EFind operator name).
    pub name: String,
    /// The index accessor.
    pub index: Arc<dyn IndexAccessor>,
    /// The lookup key expression.
    pub on: Expr,
    /// Which fields of the index value (itself a positional list) to
    /// append to the row.
    pub take: Vec<usize>,
    /// Inner or left join.
    pub kind: JoinKind,
}

/// One pipeline step.
#[derive(Clone)]
pub enum Step {
    /// Keep rows satisfying the predicate.
    Filter(Pred),
    /// Replace the row with the given expressions.
    Project(Vec<Expr>),
    /// Join against an index (compiles to an EFind operator).
    IndexJoin(IndexJoinSpec),
}

/// An aggregate over a group.
#[derive(Clone, Debug, PartialEq)]
pub enum Agg {
    /// Row count.
    Count,
    /// Numeric sum of an expression.
    Sum(Expr),
    /// Minimum by [`efind_common::Datum`] ordering.
    Min(Expr),
    /// Maximum by ordering.
    Max(Expr),
    /// Numeric average (`Null` on empty numeric input).
    Avg(Expr),
    /// The `take` values of the `k` rows with the largest `sort` values
    /// (descending), as a `Datum::List` — e.g. the top-k URLs by count.
    TopKBy {
        /// Ranking expression (descending).
        sort: Expr,
        /// Value extracted from each winning row.
        take: Expr,
        /// How many winners to keep.
        k: usize,
    },
}

/// A declarative query.
#[derive(Clone)]
pub struct Query {
    /// DFS input file (rows: `value = Datum::List`).
    pub input: String,
    /// Pipeline steps in order.
    pub steps: Vec<Step>,
    /// Group-by key expressions (empty = one global group).
    pub group_by: Vec<Expr>,
    /// Aggregates computed per group (empty = emit distinct group keys).
    pub aggs: Vec<Agg>,
    /// Reduce task count.
    pub num_reducers: usize,
}

impl Query {
    /// Starts a query scanning `input`.
    pub fn scan(input: impl Into<String>) -> Self {
        Query {
            input: input.into(),
            steps: Vec::new(),
            group_by: Vec::new(),
            aggs: Vec::new(),
            num_reducers: 24,
        }
    }

    /// Appends a filter step.
    pub fn filter(mut self, pred: Pred) -> Self {
        self.steps.push(Step::Filter(pred));
        self
    }

    /// Appends a projection step.
    pub fn project(mut self, exprs: impl IntoIterator<Item = Expr>) -> Self {
        self.steps.push(Step::Project(exprs.into_iter().collect()));
        self
    }

    /// Appends an inner index join.
    pub fn index_join(
        mut self,
        name: impl Into<String>,
        index: Arc<dyn IndexAccessor>,
        on: Expr,
        take: impl IntoIterator<Item = usize>,
    ) -> Self {
        self.steps.push(Step::IndexJoin(IndexJoinSpec {
            name: name.into(),
            index,
            on,
            take: take.into_iter().collect(),
            kind: JoinKind::Inner,
        }));
        self
    }

    /// Appends a left index join.
    pub fn left_index_join(
        mut self,
        name: impl Into<String>,
        index: Arc<dyn IndexAccessor>,
        on: Expr,
        take: impl IntoIterator<Item = usize>,
    ) -> Self {
        self.steps.push(Step::IndexJoin(IndexJoinSpec {
            name: name.into(),
            index,
            on,
            take: take.into_iter().collect(),
            kind: JoinKind::Left,
        }));
        self
    }

    /// Sets the grouping keys.
    pub fn group_by(mut self, keys: impl IntoIterator<Item = Expr>) -> Self {
        self.group_by = keys.into_iter().collect();
        self
    }

    /// Sets the aggregates.
    pub fn aggregate(mut self, aggs: impl IntoIterator<Item = Agg>) -> Self {
        self.aggs = aggs.into_iter().collect();
        self
    }

    /// Overrides the reduce task count.
    pub fn reducers(mut self, n: usize) -> Self {
        self.num_reducers = n.max(1);
        self
    }

    /// Compiles into an EFind-enhanced job writing to `output`.
    pub fn into_job(self, name: &str, output: &str) -> efind::IndexJobConf {
        crate::compile::compile(self, name, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn builder_accumulates_steps() {
        let q = Query::scan("t")
            .filter(col(0).gt(lit(1i64)))
            .project([col(0), col(2)])
            .group_by([col(0)])
            .aggregate([Agg::Count, Agg::Sum(col(1))])
            .reducers(4);
        assert_eq!(q.steps.len(), 2);
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.aggs.len(), 2);
        assert_eq!(q.num_reducers, 4);
    }
}
