// Fixture: the same wall-clock use, justified.
pub fn elapsed() -> u64 {
    // efind-lint: allow(wall-clock, operator progress display only; never charged to virtual time)
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}
