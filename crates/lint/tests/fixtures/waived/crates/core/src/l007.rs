// Fixture: the same per-lookup draw, justified (e.g. a migration shim
// whose callers all classify the layer before entering).
pub fn count_failures(plan: &FaultPlan, keys: &[Datum]) -> u64 {
    let mut failures = 0u64;
    for key in keys {
        // efind-lint: allow(unguarded-injection, migration shim; every caller classifies the plan Armed before entering)
        if plan.outcome("probe.", key, 0) == FaultKind::Fail {
            failures += 1;
        }
    }
    failures
}
