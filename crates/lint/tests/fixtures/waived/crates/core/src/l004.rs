// Fixture: an experimental counter family, justified.
pub fn charge(counters: &mut Vec<(String, i64)>) {
    // efind-lint: allow(counter-name, experimental probe counter; registry entry lands with the feature PR)
    counters.push(("efind.enrich.0.probe.depth".to_string(), 1));
}
