// Fixture: the same panic, justified as an internal invariant.
pub fn first_field(fields: &[String]) -> &String {
    // efind-lint: allow(panic, parser guarantees at least one field; empty here is a compiler bug)
    fields.first().expect("query has no fields")
}
