// Fixture: the same accumulation, justified (exact dyadic values).
use std::collections::HashMap;

pub fn sum_load(loads: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0f64;
    // efind-lint: allow(unordered-iter, values summed; see the float waiver below for why order is safe)
    for v in loads.values() {
        // efind-lint: allow(float-accum, loads are multiples of 0.25 so addition is exact and order-free)
        total += *v;
    }
    total
}
