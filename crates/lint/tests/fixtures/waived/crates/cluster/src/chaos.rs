// Fixture: the same draw, justified (e.g. while migrating to det::draw_unit).
pub fn should_kill(seed: u64, node: u64) -> bool {
    // efind-lint: allow(raw-draw, local mix64 is a verbatim copy of det::mix64 pending extraction)
    mix64(seed ^ node) % 100 < 5
}

// efind-lint: allow(raw-draw, definition site of the temporary local copy; audited against det::mix64)
fn mix64(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
