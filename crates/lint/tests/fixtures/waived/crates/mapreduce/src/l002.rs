// Fixture: the same iteration, justified.
use std::collections::HashMap;

pub fn total(stats: &HashMap<String, u64>) -> u64 {
    // efind-lint: allow(unordered-iter, values are summed; addition commutes and no order escapes)
    stats.values().sum()
}
