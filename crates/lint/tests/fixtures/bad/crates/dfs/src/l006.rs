// Fixture: float accumulation over an unordered collection.
use std::collections::HashMap;

pub fn mean_load(loads: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0f64;
    for v in loads.values() {
        total += *v;
    }
    total / loads.len().max(1) as f64
}
