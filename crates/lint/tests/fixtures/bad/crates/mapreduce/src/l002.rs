// Fixture: hash-map iteration feeding observable output.
use std::collections::HashMap;

pub fn render(stats: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in stats.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
