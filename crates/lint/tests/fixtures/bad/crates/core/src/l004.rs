// Fixture: a typo'd counter name that would silently read 0 forever.
pub fn charge(counters: &mut Vec<(String, i64)>) {
    counters.push(("efind.enrich.0.lokups".to_string(), 1));
}
