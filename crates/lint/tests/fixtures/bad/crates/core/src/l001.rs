// Fixture: wall-clock time source outside crates/bench.
pub fn elapsed() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}
