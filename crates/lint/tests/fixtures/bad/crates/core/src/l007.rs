// Fixture: per-lookup fault draw with no Quiet/Armed classification in
// the enclosing function — exactly the per-iteration dispatch the
// injection profile is supposed to hoist out of the hot path.
pub fn count_failures(plan: &FaultPlan, keys: &[Datum]) -> u64 {
    let mut failures = 0u64;
    for key in keys {
        if plan.outcome("probe.", key, 0) == FaultKind::Fail {
            failures += 1;
        }
    }
    failures
}
