// Fixture: raw hash draw inside an injection module.
pub fn should_kill(seed: u64, node: u64) -> bool {
    mix64(seed ^ node) % 100 < 5
}

fn mix64(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
