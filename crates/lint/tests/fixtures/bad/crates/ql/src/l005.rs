// Fixture: panic on a ql error path.
pub fn first_field(fields: &[String]) -> &String {
    fields.first().expect("query has no fields")
}
