// Fixture: the cross-job statstore idiom, distilled. Job-boundary file
// I/O, CRC-checked parsing, ordered (BTreeMap) iteration over the
// fingerprint entries, a registered load-anomaly counter literal, and a
// measured-history averaging loop — with no wall-clock reads (L001), no
// unordered iteration feeding observables (L002), and no per-iteration
// injection dispatch (L007). The scan must report nothing.

use std::collections::BTreeMap;
use std::path::Path;

pub struct Store {
    entries: BTreeMap<u64, Vec<f64>>,
}

impl Store {
    // Job-boundary I/O: one read at attach time; a missing or damaged
    // file degrades to an empty store plus a named counter.
    pub fn load(path: &Path, counters: &mut Counters) -> Store {
        let entries = match std::fs::read(path) {
            Ok(bytes) => match parse(&bytes) {
                Some(entries) => entries,
                None => {
                    counters.add("efind.statstore.corrupt", 1);
                    BTreeMap::new()
                }
            },
            Err(_) => BTreeMap::new(),
        };
        Store { entries }
    }

    // Job-boundary I/O: one write at job end.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut body = String::new();
        for (fp, runs) in &self.entries {
            body.push_str(&format!("fp {fp:016x} runs {}\n", runs.len()));
        }
        std::fs::write(path, body)
    }

    // Hot-path consumer: averaging measured history is pure arithmetic —
    // no injection plan is consulted per iteration.
    pub fn measured(&self, fp: u64) -> Option<f64> {
        let runs = self.entries.get(&fp)?;
        let mut sum = 0.0;
        for run in runs {
            sum += run;
        }
        Some(sum / runs.len().max(1) as f64)
    }
}

fn parse(bytes: &[u8]) -> Option<BTreeMap<u64, Vec<f64>>> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut entries = BTreeMap::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let fp = u64::from_str_radix(parts.next()?, 16).ok()?;
        let runs = parts.map(|t| t.parse().ok()).collect::<Option<Vec<f64>>>()?;
        entries.insert(fp, runs);
    }
    Some(entries)
}

pub struct Counters;

impl Counters {
    pub fn add(&mut self, _name: &str, _delta: i64) {}
}
