//! Fixture-corpus tests: one known-bad snippet per rule (L001–L007) plus
//! a waived variant, asserting exact diagnostic codes through the library
//! and exit status through the `efind-lint` binary.

use std::path::{Path, PathBuf};
use std::process::Command;

use efind_lint::{scan_paths, LintCode};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// `(fixture path under bad/ and waived/, codes the bad variant emits)`.
const CASES: &[(&str, &[LintCode])] = &[
    ("crates/core/src/l001.rs", &[LintCode::L001]),
    ("crates/mapreduce/src/l002.rs", &[LintCode::L002]),
    ("crates/cluster/src/chaos.rs", &[LintCode::L003]),
    ("crates/core/src/l004.rs", &[LintCode::L004]),
    ("crates/ql/src/l005.rs", &[LintCode::L005]),
    ("crates/dfs/src/l006.rs", &[LintCode::L002, LintCode::L006]),
    ("crates/core/src/l007.rs", &[LintCode::L007]),
];

fn scan_one(variant: &str, rel: &str) -> efind_lint::LintReport {
    let root = fixtures_root().join(variant);
    let file = root.join(rel);
    assert!(file.is_file(), "missing fixture {}", file.display());
    scan_paths(&root, &[file]).expect("fixture scan failed")
}

#[test]
fn bad_fixtures_emit_exact_codes() {
    for (rel, expected) in CASES {
        let report = scan_one("bad", rel);
        let mut active: Vec<LintCode> = report.active().map(|f| f.code).collect();
        active.sort();
        active.dedup();
        assert_eq!(&active, expected, "codes for bad/{rel}");
        assert!(!report.is_passing(), "bad/{rel} must fail the gate");
    }
}

#[test]
fn waived_fixtures_pass_but_still_report() {
    for (rel, expected) in CASES {
        let report = scan_one("waived", rel);
        assert!(
            report.is_passing(),
            "waived/{rel} must pass, got:\n{}",
            report.to_text()
        );
        // Every waived variant still *reports* its findings, with the
        // justification attached — waivers are visible, not silent.
        for code in *expected {
            let f = report
                .findings
                .iter()
                .find(|f| f.code == *code)
                .unwrap_or_else(|| panic!("waived/{rel} lost its {code} finding"));
            let reason = f.waived.as_deref().unwrap_or_default();
            assert!(!reason.is_empty(), "waived/{rel} {code} has no reason");
        }
    }
}

fn run_binary(variant: &str, json: bool) -> (i32, String) {
    let root = fixtures_root().join(variant);
    let files: Vec<String> = CASES
        .iter()
        .map(|(rel, _)| root.join(rel).to_string_lossy().into_owned())
        .collect();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_efind-lint"));
    cmd.arg("--root").arg(&root);
    if json {
        cmd.arg("--json");
    }
    let out = cmd.args(&files).output().expect("efind-lint did not run");
    (
        out.status.code().expect("no exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn clean_statstore_idiom_has_no_findings() {
    // The cross-job statstore pattern — job-boundary file I/O, ordered
    // iteration, registered counters, arithmetic-only hot loops — must be
    // invisible to every rule, L001 and L007 in particular.
    let report = scan_one("clean", "crates/core/src/statstore_io.rs");
    assert!(
        report.findings.is_empty(),
        "statstore idiom must be lint-clean:\n{}",
        report.to_text()
    );
}

#[test]
fn binary_fails_on_bad_corpus() {
    let (code, stdout) = run_binary("bad", false);
    assert_eq!(code, 1, "bad corpus must exit 1:\n{stdout}");
    for rule in ["L001", "L002", "L003", "L004", "L005", "L006", "L007"] {
        assert!(
            stdout.contains(&format!("error[{rule}]")),
            "{rule} missing:\n{stdout}"
        );
    }
}

#[test]
fn binary_passes_on_waived_corpus() {
    let (code, stdout) = run_binary("waived", false);
    assert_eq!(code, 0, "waived corpus must exit 0:\n{stdout}");
    assert!(stdout.contains("0 un-waived finding(s)"), "{stdout}");
}

#[test]
fn binary_json_mode_reports_findings() {
    let (code, stdout) = run_binary("bad", true);
    assert_eq!(code, 1);
    assert!(stdout.trim_start().starts_with('{'), "not JSON:\n{stdout}");
    assert!(stdout.contains("\"code\": \"L001\""), "{stdout}");
    assert!(stdout.contains("\"waived\": null"), "{stdout}");
    let (code, stdout) = run_binary("waived", true);
    assert_eq!(code, 0);
    assert!(stdout.contains("\"active\": 0"), "{stdout}");
}

#[test]
fn workspace_scan_skips_fixture_corpus() {
    // Walking up from the lint crate: the repo root is two levels above
    // the manifest dir. The full-workspace scan must ignore the fixture
    // corpus, or the seeded bad files would fail the real gate.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
        .to_path_buf();
    let report = efind_lint::scan_workspace(&repo_root).expect("workspace scan");
    assert!(
        !report.findings.iter().any(|f| f.file.contains("fixtures")),
        "fixture findings leaked into the workspace scan"
    );
    assert!(
        report.is_passing(),
        "workspace must be lint-clean:\n{}",
        report.to_text()
    );
}
