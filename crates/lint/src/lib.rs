//! `efind-lint`: a source-level determinism & virtual-time static
//! analyzer for the workspace.
//!
//! Every guarantee the repo makes — bit-identical double runs, quiet
//! injection plans that change nothing, virtual-time-only charging — is a
//! *convention* until something enforces it. This crate is the enforcer:
//! a zero-dependency line/token scanner (in the spirit of the hand-rolled
//! `efind_common::crc`) over the workspace `.rs` files, with seven rules:
//!
//! | Code | Waiver key | Meaning |
//! |------|-----------|---------|
//! | L001 | `wall-clock` | `Instant`/`SystemTime` outside `crates/bench` |
//! | L002 | `unordered-iter` | iteration over a hash map/set in an observable-output crate |
//! | L003 | `raw-draw` | raw seeding/hash draws in injection code outside `efind_common::det` |
//! | L004 | `counter-name` | counter-name literal not registered in `efind_common::intern::registry` |
//! | L005 | `panic` | `unwrap`/`expect`/`panic!` in runner/ql error paths |
//! | L006 | `float-accum` | float accumulation over an unordered collection |
//! | L007 | `unguarded-injection` | injection-plan call in a hot-path loop with no Quiet/Armed guard |
//!
//! A finding is suppressed by a *justified* waiver comment on the same
//! line or the comment line(s) directly above it:
//!
//! ```text
//! // efind-lint: allow(unordered-iter, merge sums commute; order never observed)
//! for (&k, &v) in &other.values { ... }
//! ```
//!
//! A waiver without a reason does not count. Diagnostics follow the
//! `efind-analyze::diag` format (human report + JSON); the binary exits
//! nonzero on any un-waived finding, which is what `scripts/lint.sh` and
//! `scripts/ci.sh` gate on.
//!
//! The scanner is deliberately heuristic — it reads lines and tokens, not
//! types. It can miss an iteration over a hash map whose type is fully
//! inferred, and it can flag a `Vec` that shadows a hash-map name. Both
//! are acceptable for a tripwire: the first stays covered by the runtime
//! double-run tests, the second costs one waiver comment.

#![warn(missing_docs)]

use std::fmt;
use std::path::Path;

use efind_common::intern::registry;

/// Stable lint codes (`L001`..). Append-only, like `EFxxx`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintCode {
    /// Wall-clock time source outside `crates/bench`.
    L001,
    /// Iteration over an unordered hash collection in an
    /// observable-output crate.
    L002,
    /// Raw seeding/hash draw in injection code outside
    /// `efind_common::det`.
    L003,
    /// Counter-name string literal not registered in the
    /// `efind_common::intern::registry` symbol table.
    L004,
    /// `unwrap()`/`expect()`/`panic!` in runner/ql error paths.
    L005,
    /// Float accumulation over an unordered collection.
    L006,
    /// Injection-plan draw/verify call inside a per-record or per-lookup
    /// loop in a hot-path crate, with no Quiet/Armed classification in
    /// the enclosing function.
    L007,
}

impl LintCode {
    /// The stable textual form, e.g. `"L002"`.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::L001 => "L001",
            LintCode::L002 => "L002",
            LintCode::L003 => "L003",
            LintCode::L004 => "L004",
            LintCode::L005 => "L005",
            LintCode::L006 => "L006",
            LintCode::L007 => "L007",
        }
    }

    /// The waiver key accepted in `efind-lint: allow(<key>, <reason>)`.
    pub fn waiver_key(self) -> &'static str {
        match self {
            LintCode::L001 => "wall-clock",
            LintCode::L002 => "unordered-iter",
            LintCode::L003 => "raw-draw",
            LintCode::L004 => "counter-name",
            LintCode::L005 => "panic",
            LintCode::L006 => "float-accum",
            LintCode::L007 => "unguarded-injection",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding. Every finding is error-severity: it either gets
/// fixed or carries a justified waiver.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Stable code.
    pub code: LintCode,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Actionable suggestion.
    pub hint: String,
    /// The justification, when a waiver comment suppressed the finding.
    pub waived: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = if self.waived.is_some() {
            "waived"
        } else {
            "error"
        };
        write!(
            f,
            "{}[{}] at {}:{}: {}",
            sev, self.code, self.file, self.line, self.message
        )?;
        if let Some(reason) = &self.waived {
            write!(f, " (waived: {reason})")?;
        } else if !self.hint.is_empty() {
            write!(f, " (hint: {})", self.hint)?;
        }
        Ok(())
    }
}

/// The full result of a lint pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LintReport {
    /// All findings, waived and active, in file/line order.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Active (un-waived) findings — the ones that fail the gate.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_none())
    }

    /// True when no un-waived finding is present.
    pub fn is_passing(&self) -> bool {
        self.active().next().is_none()
    }

    /// True when a specific code was produced (waived or not).
    pub fn has_code(&self, code: LintCode) -> bool {
        self.findings.iter().any(|f| f.code == code)
    }

    /// Renders the report as one line per finding plus a summary, in the
    /// `efind-analyze` human format.
    pub fn to_text(&self) -> String {
        let active = self.active().count();
        let waived = self.findings.len() - active;
        if self.findings.is_empty() {
            return format!(
                "efind-lint: clean ({} files, no findings)",
                self.files_scanned
            );
        }
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "efind-lint: {active} un-waived finding(s), {waived} waived, {} files scanned\n",
            self.files_scanned
        ));
        out
    }

    /// Renders the report as a JSON object (hand-rolled — the workspace
    /// carries no serde): `{"findings": [...], "active": N, ...}`.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"code\": \"{}\", \"severity\": \"error\", \"file\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\", \"hint\": \"{}\", \"waived\": {}",
                f.code,
                esc(&f.file),
                f.line,
                esc(&f.message),
                esc(&f.hint),
                match &f.waived {
                    Some(r) => format!("\"{}\"", esc(r)),
                    None => "null".to_string(),
                }
            ));
            out.push('}');
        }
        out.push_str(&format!(
            "\n  ],\n  \"active\": {},\n  \"waived\": {},\n  \"files_scanned\": {}\n}}\n",
            self.active().count(),
            self.findings.len() - self.active().count(),
            self.files_scanned
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Source preprocessing: comments, strings, test regions, brace depth.
// ---------------------------------------------------------------------------

/// One preprocessed source line.
#[derive(Clone, Debug, Default)]
struct LineInfo {
    /// The line with string/char-literal contents and comments blanked
    /// out (delimiters and everything else preserved byte-for-byte).
    code: String,
    /// Concatenated comment text on the line.
    comment: String,
    /// String-literal contents that *start* on this line.
    strings: Vec<String>,
    /// Brace depth at the start of the line.
    depth_start: i32,
    /// True when the line falls inside a `#[cfg(test)]` block.
    in_test: bool,
}

fn preprocess(source: &str) -> Vec<LineInfo> {
    #[derive(PartialEq)]
    enum State {
        Code,
        Block(u32),    // nested block-comment depth
        Str,           // "..."
        RawStr(usize), // r##"..."## with N hashes
    }
    let mut lines: Vec<LineInfo> = Vec::new();
    let mut state = State::Code;
    let mut depth: i32 = 0;
    // #[cfg(test)] tracking: pending until the next '{' at/below the
    // recorded depth opens the test block.
    let mut test_pending = false;
    let mut test_base: Option<i32> = None;

    for raw in source.lines() {
        let mut info = LineInfo {
            depth_start: depth,
            in_test: test_base.is_some(),
            ..LineInfo::default()
        };
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        let mut cur_string = String::new();
        while i < bytes.len() {
            let c = bytes[i];
            match state {
                State::Block(ref mut n) => {
                    if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        *n += 1;
                        info.comment.push_str("/*");
                        i += 2;
                    } else if c == '*' && bytes.get(i + 1) == Some(&'/') {
                        *n -= 1;
                        info.comment.push_str("*/");
                        let done = *n == 0;
                        i += 2;
                        if done {
                            state = State::Code;
                        }
                    } else {
                        info.comment.push(c);
                        info.code.push(' ');
                        i += 1;
                    }
                    continue;
                }
                State::Str => {
                    if c == '\\' {
                        cur_string.push(c);
                        if let Some(&n) = bytes.get(i + 1) {
                            cur_string.push(n);
                        }
                        info.code.push(' ');
                        info.code.push(' ');
                        i += 2;
                    } else if c == '"' {
                        info.strings.push(std::mem::take(&mut cur_string));
                        info.code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        cur_string.push(c);
                        info.code.push(' ');
                        i += 1;
                    }
                    continue;
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let tail: String = bytes[i + 1..].iter().take(hashes).collect();
                        if tail.chars().filter(|&h| h == '#').count() == hashes
                            && tail.len() == hashes
                        {
                            info.strings.push(std::mem::take(&mut cur_string));
                            info.code.push('"');
                            for _ in 0..hashes {
                                info.code.push('#');
                            }
                            state = State::Code;
                            i += 1 + hashes;
                            continue;
                        }
                    }
                    cur_string.push(c);
                    info.code.push(' ');
                    i += 1;
                    continue;
                }
                State::Code => {}
            }
            // State::Code
            if c == '/' && bytes.get(i + 1) == Some(&'/') {
                info.comment
                    .push_str(&bytes[i..].iter().collect::<String>());
                break; // rest of line is a comment
            }
            if c == '/' && bytes.get(i + 1) == Some(&'*') {
                state = State::Block(1);
                info.comment.push_str("/*");
                i += 2;
                continue;
            }
            if c == '"' {
                state = State::Str;
                info.code.push('"');
                i += 1;
                continue;
            }
            if c == 'r' && matches!(bytes.get(i + 1), Some('"') | Some('#')) {
                // Possible raw string: r"..." or r#"..."# (any hash count).
                // Avoid matching identifiers ending in r (check prev char).
                let prev_ident = i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_');
                if !prev_ident {
                    let mut j = i + 1;
                    let mut hashes = 0usize;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        info.code.push('r');
                        for _ in 0..hashes {
                            info.code.push('#');
                        }
                        info.code.push('"');
                        i = j + 1;
                        continue;
                    }
                }
            }
            if c == '\'' {
                // Char literal vs lifetime. 'x' or '\n' is a literal;
                // 'a (no closing quote nearby) is a lifetime.
                if bytes.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: skip to closing quote.
                    info.code.push('\'');
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != '\'' {
                        info.code.push(' ');
                        j += 1;
                    }
                    info.code.push('\'');
                    i = (j + 1).min(bytes.len());
                    continue;
                }
                if bytes.get(i + 2) == Some(&'\'') {
                    info.code.push_str("' '");
                    i += 3;
                    continue;
                }
                // Lifetime: keep the quote, move on.
                info.code.push('\'');
                i += 1;
                continue;
            }
            if c == '{' {
                depth += 1;
                if test_pending {
                    test_base = Some(depth - 1);
                    test_pending = false;
                    info.in_test = true;
                }
            } else if c == '}' {
                depth -= 1;
                if let Some(base) = test_base {
                    if depth <= base {
                        test_base = None;
                    }
                }
            }
            info.code.push(c);
            i += 1;
        }
        if !cur_string.is_empty() && matches!(state, State::Str | State::RawStr(_)) {
            // Multi-line string: attribute the chunk to the opening line.
            cur_string.push('\n');
        }
        if info.code.contains("#[cfg(test)]") {
            test_pending = true;
        }
        lines.push(info);
    }
    lines
}

// ---------------------------------------------------------------------------
// Tokenizer (per preprocessed code line).
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok<'a> {
    Ident(&'a str),
    Punct(char),
}

fn tokens(code: &str) -> Vec<Tok<'_>> {
    let mut out = Vec::new();
    let b = code.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_alphanumeric() || c == '_' {
            let start = i;
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(Tok::Ident(&code[start..i]));
        } else if c.is_whitespace() {
            i += 1;
        } else {
            out.push(Tok::Punct(c));
            i += 1;
        }
    }
    out
}

fn ident_at<'a>(toks: &'a [Tok<'a>], i: usize) -> Option<&'a str> {
    match toks.get(i) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[Tok<'_>], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(Tok::Punct(p)) if *p == c)
}

// ---------------------------------------------------------------------------
// Waivers.
// ---------------------------------------------------------------------------

/// Parses `efind-lint: allow(key, reason)` occurrences out of comment
/// text. Returns `(key, reason)` pairs; a missing/empty reason yields an
/// empty string (which never justifies a waiver).
fn parse_waivers(comment: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("efind-lint:") {
        rest = &rest[pos + "efind-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            break;
        };
        let body = &rest[open + "allow(".len()..];
        let Some(close) = body.find(')') else { break };
        let inner = &body[..close];
        let (key, reason) = match inner.split_once(',') {
            Some((k, r)) => (k.trim().to_string(), r.trim().to_string()),
            None => (inner.trim().to_string(), String::new()),
        };
        out.push((key, reason));
        rest = &body[close..];
    }
    out
}

// ---------------------------------------------------------------------------
// Rule scoping.
// ---------------------------------------------------------------------------

/// Crates whose outputs (records, counters, virtual times, fingerprints)
/// are observable — where unordered iteration can leak into results.
const OBSERVABLE_CRATES: &[&str] = &["core", "mapreduce", "cluster", "dfs", "index", "workloads"];

/// Injection modules: all randomness must route through
/// `efind_common::det`.
const INJECTION_FILES: &[&str] = &["fault.rs", "chaos.rs", "corrupt.rs", "netsplit.rs"];

/// Hot-path crates where per-record/per-lookup loops must not reach an
/// injection plan without a Quiet/Armed classification (L007). These are
/// the crates the quiet-path monomorphization pinned: a draw or CRC
/// verify inside their loops is exactly the per-iteration dispatch the
/// profile is supposed to hoist.
const HOT_PATH_CRATES: &[&str] = &["core", "mapreduce", "cluster", "dfs"];

/// Injection-plan draw/verify calls that are priced per lookup, record,
/// or task when armed — the calls L007 requires a guard for.
const INJECTION_CALL_TOKENS: &[&str] = &[
    "should_fail",
    "outcome",
    "draw_unit",
    "draw_unit_u64",
    "crc32",
    "crash_time",
    "is_dead_at",
    "is_isolated_at",
    "slowdown_at",
    "isolation_window",
    "isolated_forever_from",
    "suspect_delay",
    "chunk_replica_corrupt",
    "shuffle_corrupt",
    "cache_corrupt",
    "response_corrupt",
    "chunk_integrity",
];

/// Tokens whose presence in the enclosing function shows the layer was
/// classified before (or while) reaching the loop.
const GUARD_TOKENS: &[&str] = &[
    "is_quiet",
    "layer_state",
    "is_armed",
    "LayerState",
    "InjectionProfile",
    "verification_enabled",
    "FaultState",
];

/// True for identifiers that count as a Quiet/Armed guard: the profile
/// vocabulary plus the `verifies_*`/`corrupts_*` plan classifiers.
fn is_guard_ident(s: &str) -> bool {
    GUARD_TOKENS.contains(&s) || s.starts_with("verifies_") || s.starts_with("corrupts_")
}

/// Extracts the crate name from a path like `crates/<name>/src/...`.
fn crate_of(path: &str) -> Option<&str> {
    let norm = path.strip_prefix("./").unwrap_or(path);
    let rest = norm.split("crates/").nth(1)?;
    rest.split('/').next()
}

fn file_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

// ---------------------------------------------------------------------------
// The scanner.
// ---------------------------------------------------------------------------

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];
const RAW_DRAW_TOKENS: &[&str] = &[
    "fx_hash_bytes",
    "fx_hash_datum",
    "mix64",
    "SmallRng",
    "StdRng",
    "thread_rng",
    "seed_from_u64",
    "from_entropy",
];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Scans one file's source. `path` decides rule scoping (crate name,
/// injection-module status) and appears in findings; `source` is the file
/// text. Test modules (`#[cfg(test)]`) are exempt from every rule.
pub fn scan_file(path: &str, source: &str) -> Vec<Finding> {
    let lines = preprocess(source);
    let krate = crate_of(path).unwrap_or("");
    let fname = file_name(path);
    let observable = OBSERVABLE_CRATES.contains(&krate);
    let injection = INJECTION_FILES.contains(&fname) && path.contains("crates/");
    let is_det_module = path.ends_with("common/src/det.rs");
    let is_registry_module = path.ends_with("common/src/intern.rs");
    let panic_scoped =
        krate == "ql" || path.ends_with("mapreduce/src/runner.rs") || fname == "l005.rs";
    // L007 scope: hot-path crate sources. The injection modules
    // themselves are exempt (they *implement* the draws), as are
    // integration tests (never on the measured path).
    let hot_path = HOT_PATH_CRATES.contains(&krate) && path.contains("/src/") && !injection;

    // Pass A: collect hash-collection identifiers declared in this file.
    let mut hash_names: Vec<String> = Vec::new();
    for info in &lines {
        if info.in_test {
            continue;
        }
        let toks = tokens(&info.code);
        for i in 0..toks.len() {
            let Some(t) = ident_at(&toks, i) else {
                continue;
            };
            if !HASH_TYPES.contains(&t) {
                continue;
            }
            // `name : [&] [mut] [path ::]* T <` — walk back over the type
            // path and reference sigils to the `ident :` that declared it
            // (a field, a `let` with annotation, or an fn parameter).
            let mut j = i;
            loop {
                if j >= 3
                    && punct_at(&toks, j - 1, ':')
                    && punct_at(&toks, j - 2, ':')
                    && ident_at(&toks, j - 3).is_some()
                {
                    j -= 3; // path segment `seg ::`
                } else if j >= 1
                    && (punct_at(&toks, j - 1, '&')
                        || punct_at(&toks, j - 1, '\'')
                        || matches!(ident_at(&toks, j - 1), Some("mut") | Some("dyn")))
                {
                    j -= 1;
                } else {
                    break;
                }
            }
            if j >= 2 && punct_at(&toks, j - 1, ':') && !punct_at(&toks, j - 2, ':') {
                if let Some(name) = ident_at(&toks, j - 2) {
                    if name
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_')
                    {
                        hash_names.push(name.to_string());
                    }
                }
            }
            // `let [mut] name = ... T::new/default/with_capacity(...)`.
            if let Some(p) = toks[..i].iter().position(|t| *t == Tok::Ident("let")) {
                let mut k = p + 1;
                if ident_at(&toks, k) == Some("mut") {
                    k += 1;
                }
                if let Some(name) = ident_at(&toks, k) {
                    if toks[k + 1..i].iter().any(|t| matches!(t, Tok::Punct('='))) {
                        hash_names.push(name.to_string());
                    }
                }
            }
        }
    }
    hash_names.sort();
    hash_names.dedup();

    // Pass A': float-typed bindings (`let mut total = 0.0;`,
    // `acc: f64`), so L006 can spot `total += v` even when the
    // accumulation line itself carries no float marker.
    let mut float_names: Vec<String> = Vec::new();
    for info in &lines {
        if info.in_test {
            continue;
        }
        let floaty =
            info.code.contains("f64") || info.code.contains("f32") || has_float_literal(&info.code);
        if !floaty {
            continue;
        }
        let toks = tokens(&info.code);
        if let Some(p) = toks.iter().position(|t| *t == Tok::Ident("let")) {
            let mut k = p + 1;
            if ident_at(&toks, k) == Some("mut") {
                k += 1;
            }
            if let Some(name) = ident_at(&toks, k) {
                if punct_at(&toks, k + 1, '=') || punct_at(&toks, k + 1, ':') {
                    float_names.push(name.to_string());
                }
            }
        }
        for i in 0..toks.len() {
            if matches!(ident_at(&toks, i), Some("f64") | Some("f32"))
                && i >= 2
                && punct_at(&toks, i - 1, ':')
            {
                if let Some(name) = ident_at(&toks, i - 2) {
                    float_names.push(name.to_string());
                }
            }
        }
    }
    float_names.sort();
    float_names.dedup();

    // Effective waivers per line: same-line comment plus the directly
    // preceding run of comment-only lines.
    let line_waivers: Vec<Vec<(String, String)>> =
        lines.iter().map(|l| parse_waivers(&l.comment)).collect();
    let comment_only: Vec<bool> = lines
        .iter()
        .map(|l| l.code.trim().is_empty() && !l.comment.is_empty())
        .collect();
    let waiver_for = |line_idx: usize, key: &str| -> Option<String> {
        let check = |idx: usize| -> Option<String> {
            line_waivers[idx]
                .iter()
                .find(|(k, r)| k == key && !r.is_empty())
                .map(|(_, r)| r.clone())
        };
        if let Some(r) = check(line_idx) {
            return Some(r);
        }
        let mut i = line_idx;
        while i > 0 && comment_only[i - 1] {
            i -= 1;
            if let Some(r) = check(i) {
                return Some(r);
            }
        }
        None
    };

    let mut findings = Vec::new();
    let mut push = |code: LintCode, line: usize, message: String, hint: &str| {
        let waived = waiver_for(line, code.waiver_key());
        findings.push(Finding {
            code,
            file: path.to_string(),
            line: line + 1,
            message,
            hint: hint.to_string(),
            waived,
        });
    };

    // Lines already flagged by L007, so nested loops report each call once.
    let mut l007_lines: Vec<usize> = Vec::new();

    for (idx, info) in lines.iter().enumerate() {
        if info.in_test {
            continue;
        }
        let toks = tokens(&info.code);

        // L001: wall-clock sources outside crates/bench.
        if krate != "bench" {
            for t in &toks {
                if let Tok::Ident(s) = t {
                    if *s == "Instant" || *s == "SystemTime" {
                        push(
                            LintCode::L001,
                            idx,
                            format!("wall-clock time source `{s}` outside crates/bench"),
                            "charge virtual time (SimTime/SimDuration); real clocks break \
                             bit-identical double runs",
                        );
                        break;
                    }
                }
            }
        }

        // L003: raw draws in injection modules.
        if injection && !is_det_module {
            for t in &toks {
                if let Tok::Ident(s) = t {
                    if RAW_DRAW_TOKENS.contains(s) {
                        push(
                            LintCode::L003,
                            idx,
                            format!("raw seeded/hash draw `{s}` in injection code"),
                            "route every injection decision through efind_common::det \
                             (draw_unit/draw_unit_u64), the one audited implementation",
                        );
                        break;
                    }
                }
            }
        }

        // L005: panics in runner/ql error paths.
        if panic_scoped {
            for i in 0..toks.len() {
                let hit = match ident_at(&toks, i) {
                    Some("unwrap") | Some("expect") => {
                        i > 0 && punct_at(&toks, i - 1, '.') && punct_at(&toks, i + 1, '(')
                    }
                    Some(m) if PANIC_MACROS.contains(&m) => punct_at(&toks, i + 1, '!'),
                    _ => false,
                };
                if hit {
                    let what = ident_at(&toks, i).unwrap_or("panic");
                    push(
                        LintCode::L005,
                        idx,
                        format!("`{what}` on a runner/ql error path"),
                        "return a structured efind_common::Error (the PR-1 panic-free \
                         contract); panics abort the whole simulated cluster",
                    );
                    break;
                }
            }
        }

        // L007: injection-plan calls in per-record/per-lookup loops must
        // be reached through a Quiet/Armed classification. A loop header
        // (`for`/`while`/`loop`) opens the scan; the loop body — plus the
        // header itself, where `while plan.x(..)` puts the call — is
        // searched for draw/verify calls; the enclosing function, from
        // its `fn` line down to the loop's end, must mention a guard.
        if hot_path {
            let has_kw = |k: &str| toks.contains(&Tok::Ident(k));
            let looped = (has_kw("for") && !has_kw("impl")) || has_kw("while") || has_kw("loop");
            if looped {
                // `(line, call)` injection hits on the header + body.
                let mut hits: Vec<(usize, String)> = Vec::new();
                let mut collect = |j: usize, ltoks: &[Tok<'_>]| {
                    for i in 0..ltoks.len() {
                        if let Some(t) = ident_at(ltoks, i) {
                            if INJECTION_CALL_TOKENS.contains(&t) && punct_at(ltoks, i + 1, '(') {
                                hits.push((j, t.to_string()));
                            }
                        }
                    }
                };
                let has_fn = |j: usize| tokens(&lines[j].code).contains(&Tok::Ident("fn"));
                collect(idx, &toks);
                let mut body_end = idx;
                if info.code.trim_end().ends_with('{') {
                    let base = info.depth_start;
                    for (j, body) in lines.iter().enumerate().skip(idx + 1) {
                        if body.depth_start <= base {
                            break;
                        }
                        collect(j, &tokens(&body.code));
                        body_end = j;
                    }
                }
                if !hits.is_empty() {
                    // The enclosing `fn` item: the nearest preceding line
                    // declaring one at a shallower brace depth.
                    let fn_start = (0..idx)
                        .rev()
                        .find(|&j| lines[j].depth_start < info.depth_start && has_fn(j))
                        .unwrap_or(0);
                    let guarded = (fn_start..=body_end).any(|j| {
                        tokens(&lines[j].code)
                            .iter()
                            .any(|t| matches!(t, Tok::Ident(s) if is_guard_ident(s)))
                    });
                    if !guarded {
                        for (j, call) in hits {
                            if l007_lines.contains(&j) {
                                continue;
                            }
                            l007_lines.push(j);
                            push(
                                LintCode::L007,
                                j,
                                format!(
                                    "injection call `{call}` in a hot-path loop with no \
                                     Quiet/Armed guard"
                                ),
                                "classify the layer once outside the loop (InjectionProfile / \
                                 layer_state / verifies_*) and branch on it, so quiet runs \
                                 never reach the per-iteration draw",
                            );
                        }
                    }
                }
            }
        }

        // L004: counter-name literals.
        if !is_registry_module {
            let names_helper =
                info.code.contains("names::op(") || info.code.contains("names::idx(");
            for (si, lit) in info.strings.iter().enumerate() {
                let counter_like = lit.starts_with("efind.") || lit.starts_with("mr.");
                if counter_like {
                    if lit.ends_with('.') || lit.contains('*') {
                        continue; // prefix constant / registry pattern
                    }
                    let ok = if lit.contains('{') {
                        match lit.rsplit_once('}') {
                            Some((_, tail)) => {
                                let leaf = tail.trim_start_matches('.');
                                leaf.is_empty() || registry::counter_leaf_registered(leaf)
                            }
                            None => true,
                        }
                    } else {
                        registry::counter_name_registered(lit)
                    };
                    if !ok {
                        push(
                            LintCode::L004,
                            idx,
                            format!("counter name `{lit}` is not registered"),
                            "register the counter family in \
                             efind_common::intern::registry (or fix the typo)",
                        );
                    }
                } else if names_helper && si + 1 == info.strings.len() {
                    // The trailing literal of a names::op/names::idx call
                    // is the `<what>` leaf.
                    if !registry::counter_leaf_registered(lit) {
                        push(
                            LintCode::L004,
                            idx,
                            format!("counter leaf `{lit}` is not registered"),
                            "register the leaf in efind_common::intern::registry \
                             COUNTER_LEAVES (or fix the typo)",
                        );
                    }
                }
            }
        }

        if !observable || hash_names.is_empty() {
            continue;
        }

        // L002: iteration over a hash collection.
        let mut l002_hit: Option<String> = None;
        for i in 0..toks.len() {
            if let Some(n) = ident_at(&toks, i) {
                if hash_names.iter().any(|h| h == n)
                    && punct_at(&toks, i + 1, '.')
                    && ident_at(&toks, i + 2).is_some_and(|m| ITER_METHODS.contains(&m))
                    && punct_at(&toks, i + 3, '(')
                {
                    l002_hit = Some(n.to_string());
                    break;
                }
            }
        }
        if l002_hit.is_none() {
            if let Some(in_pos) = toks.iter().position(|t| *t == Tok::Ident("in")) {
                if toks[..in_pos].contains(&Tok::Ident("for")) {
                    for i in in_pos + 1..toks.len() {
                        if let Some(n) = ident_at(&toks, i) {
                            if hash_names.iter().any(|h| h == n)
                                && (i + 1 == toks.len() || punct_at(&toks, i + 1, '{'))
                            {
                                l002_hit = Some(n.to_string());
                                break;
                            }
                        }
                    }
                }
            }
        }
        if let Some(n) = l002_hit {
            push(
                LintCode::L002,
                idx,
                format!("iteration over unordered hash collection `{n}`"),
                "hash-map order must never reach observable output: iterate a BTreeMap, \
                 sort the items first, or waive with the reason the order cannot leak",
            );

            // L006: float accumulation fed by that iteration.
            let same_line_sum = toks.contains(&Tok::Ident("sum"))
                && toks
                    .iter()
                    .any(|t| matches!(t, Tok::Ident("f64") | Tok::Ident("f32")));
            let mut l006_line = same_line_sum.then_some(idx);
            if l006_line.is_none() && info.code.trim_end().ends_with('{') {
                // Scan the loop body for float `+=` accumulation.
                let base = info.depth_start;
                for (j, body) in lines.iter().enumerate().skip(idx + 1) {
                    if body.depth_start <= base {
                        break;
                    }
                    let btoks = tokens(&body.code);
                    let plus_eq = btoks
                        .windows(2)
                        .position(|w| matches!(w, [Tok::Punct('+'), Tok::Punct('=')]));
                    let Some(pe) = plus_eq else { continue };
                    let lhs_float = (0..pe)
                        .rev()
                        .find_map(|k| ident_at(&btoks, k))
                        .is_some_and(|lhs| float_names.iter().any(|f| f == lhs));
                    let floaty = body.code.contains("f64")
                        || body.code.contains("f32")
                        || has_float_literal(&body.code)
                        || lhs_float;
                    if floaty {
                        l006_line = Some(j);
                        break;
                    }
                }
            }
            if let Some(j) = l006_line {
                push(
                    LintCode::L006,
                    j,
                    format!("float accumulation over unordered collection `{n}`"),
                    "float addition is not associative: iterate in sorted order (or \
                     accumulate integers) so the sum is order-independent",
                );
            }
        }
    }
    findings
}

fn has_float_literal(code: &str) -> bool {
    let b = code.as_bytes();
    (1..b.len().saturating_sub(1))
        .any(|i| b[i] == b'.' && b[i - 1].is_ascii_digit() && b[i + 1].is_ascii_digit())
}

// ---------------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------------

/// Directories never scanned (generated, vendored, or fixture corpora).
fn skip_dir(path: &Path) -> bool {
    let s = path.to_string_lossy();
    s.contains("/target") || s.contains("/vendor") || s.contains("tests/fixtures")
}

fn walk(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if !skip_dir(&path) {
                walk(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans a workspace root: `crates/*/src`, `crates/*/tests`, `src`,
/// `tests`, and `examples` below `root`, excluding `vendor/`, `target/`,
/// and fixture corpora. Files are visited in sorted order, so the report
/// is deterministic.
pub fn scan_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    for sub in ["crates", "src", "tests", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    scan_paths(root, &files)
}

/// Scans an explicit file list; `root` is stripped from displayed paths.
pub fn scan_paths(root: &Path, files: &[std::path::PathBuf]) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    for path in files {
        let source = std::fs::read_to_string(path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        report.findings.extend(scan_file(&label, &source));
        report.files_scanned += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(findings: &[Finding]) -> Vec<LintCode> {
        findings
            .iter()
            .filter(|f| f.waived.is_none())
            .map(|f| f.code)
            .collect()
    }

    #[test]
    fn l001_wall_clock_outside_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let f = scan_file("crates/core/src/runtime.rs", src);
        assert_eq!(codes(&f), vec![LintCode::L001]);
        // The same line inside crates/bench is fine.
        assert!(scan_file("crates/bench/src/bin/hotpath.rs", src).is_empty());
    }

    #[test]
    fn l001_waiver_needs_a_reason() {
        let src = "// efind-lint: allow(wall-clock)\nlet t = Instant::now();\n";
        let f = scan_file("crates/core/src/x.rs", src);
        assert_eq!(codes(&f), vec![LintCode::L001], "reasonless waiver ignored");

        let src =
            "// efind-lint: allow(wall-clock, progress display only)\nlet t = Instant::now();\n";
        let f = scan_file("crates/core/src/x.rs", src);
        assert!(codes(&f).is_empty());
        assert_eq!(f.len(), 1, "waived finding still reported");
        assert_eq!(f[0].waived.as_deref(), Some("progress display only"));
    }

    #[test]
    fn l002_iteration_over_hash_map() {
        let src = "struct S { m: FxHashMap<u32, u32> }\n\
                   fn f(s: &S) { for (k, v) in &s.m { let _ = (k, v); } }\n";
        let f = scan_file("crates/mapreduce/src/x.rs", src);
        assert_eq!(codes(&f), vec![LintCode::L002]);
        // Non-observable crates are out of scope.
        assert!(scan_file("crates/analyze/src/x.rs", src).is_empty());
    }

    #[test]
    fn l002_method_iteration_and_waiver() {
        let src = "fn f() { let mut m = FxHashMap::default();\n\
                   m.insert(1, 2);\n\
                   // efind-lint: allow(unordered-iter, values summed; addition commutes)\n\
                   let s: u64 = m.values().sum();\n}\n";
        let f = scan_file("crates/dfs/src/x.rs", src);
        assert!(codes(&f).is_empty());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, LintCode::L002);
        assert!(f[0].waived.is_some());
    }

    #[test]
    fn l003_raw_draw_in_injection_module() {
        let src = "fn roll(seed: u64) -> u64 { mix64(seed) }\n";
        let f = scan_file("crates/cluster/src/chaos.rs", src);
        assert_eq!(codes(&f), vec![LintCode::L003]);
        // Outside injection modules the same code is fine.
        assert!(scan_file("crates/cluster/src/sched.rs", src).is_empty());
        // det.rs is the audited implementation.
        assert!(scan_file("crates/common/src/det.rs", src).is_empty());
    }

    #[test]
    fn l004_unregistered_counter_name() {
        let src = "fn f(c: &mut Counters) { c.add(\"efind.op.0.lokups\", 1); }\n";
        let f = scan_file("crates/core/src/x.rs", src);
        assert_eq!(codes(&f), vec![LintCode::L004]);
        let src = "fn f(c: &mut Counters) { c.add(\"efind.op.0.lookups\", 1); }\n";
        assert!(scan_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn l004_template_trailing_leaf() {
        let ok = "let h = CounterHandle::new(&format!(\"efind.{op}.{j}.fault.degraded\"));\n";
        assert!(scan_file("crates/core/src/x.rs", ok).is_empty());
        let bad = "let h = CounterHandle::new(&format!(\"efind.{op}.{j}.fault.sadness\"));\n";
        assert_eq!(
            codes(&scan_file("crates/core/src/x.rs", bad)),
            vec![LintCode::L004]
        );
        // Fully dynamic templates and prefixes have nothing to check.
        let dynamic = "let n = format!(\"efind.{op}.{what}\"); let p = \"efind.\";\n";
        assert!(scan_file("crates/core/src/x.rs", dynamic).is_empty());
    }

    #[test]
    fn l004_tenancy_counter_names() {
        // The multi-tenant ledger templates its tenant segment; the leaf
        // after the placeholder must still be a registered leaf.
        for ok in [
            "c.add(&format!(\"efind.tenant.{name}.granted\"), 1);\n",
            "c.add(&format!(\"efind.tenant.{name}.quota.rejected\"), 1);\n",
            "c.add(&format!(\"efind.tenant.{name}.shed.lookups\"), n);\n",
            "let h = CounterHandle::new(&format!(\"efind.tenant.{t}.cache.evictions\"));\n",
            "c.add(\"efind.admission.submitted\", 1);\n",
            "c.add(\"efind.admission.quota.rejected\", 1);\n",
        ] {
            let src = format!("fn f(c: &mut Counters) {{ {ok} }}\n");
            assert!(
                scan_file("crates/mapreduce/src/tenancy.rs", &src).is_empty(),
                "expected clean: {ok}"
            );
        }
        for bad in [
            "c.add(&format!(\"efind.tenant.{name}.grants\"), 1);\n",
            "c.add(\"efind.admission.throttled\", 1);\n",
        ] {
            let src = format!("fn f(c: &mut Counters) {{ {bad} }}\n");
            assert_eq!(
                codes(&scan_file("crates/mapreduce/src/tenancy.rs", &src)),
                vec![LintCode::L004],
                "expected L004: {bad}"
            );
        }
    }

    #[test]
    fn l005_panic_in_runner_scope() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = scan_file("crates/mapreduce/src/runner.rs", src);
        assert_eq!(codes(&f), vec![LintCode::L005]);
        assert!(scan_file("crates/ql/src/compile.rs", src)
            .iter()
            .any(|f| f.code == LintCode::L005));
        // Other modules are out of scope for L005.
        assert!(scan_file("crates/mapreduce/src/job.rs", src).is_empty());
        // unwrap_or is not unwrap.
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(scan_file("crates/mapreduce/src/runner.rs", src).is_empty());
    }

    #[test]
    fn l006_float_accumulation() {
        let src = "fn f(m: &FxHashMap<u32, f64>) -> f64 {\n\
                   let mut total = 0.0;\n\
                   for v in m.values() {\n\
                   total += *v as f64;\n\
                   }\n\
                   total\n}\n";
        let f = scan_file("crates/core/src/x.rs", src);
        let codes_all: Vec<LintCode> = codes(&f);
        assert!(codes_all.contains(&LintCode::L002));
        assert!(codes_all.contains(&LintCode::L006));
        // Integer accumulation is order-independent: L002 only.
        let src = "fn f(m: &FxHashMap<u32, u64>) -> u64 {\n\
                   let mut total = 0;\n\
                   for v in m.values() {\n\
                   total += *v;\n\
                   }\n\
                   total\n}\n";
        assert_eq!(
            codes(&scan_file("crates/core/src/x.rs", src)),
            vec![LintCode::L002]
        );
    }

    #[test]
    fn l007_unguarded_injection_in_loop() {
        let src = "fn f(plan: &FaultPlan, keys: &[Datum]) -> u64 {\n\
                   let mut n = 0;\n\
                   for key in keys {\n\
                   if plan.outcome(\"s.\", key, 0) == FaultKind::Fail { n += 1; }\n\
                   }\n\
                   n\n}\n";
        let f = scan_file("crates/core/src/x.rs", src);
        assert_eq!(codes(&f), vec![LintCode::L007]);
        // Non-hot-path crates are out of scope.
        assert!(scan_file("crates/analyze/src/x.rs", src).is_empty());
        // The injection modules implement the draws — exempt.
        assert!(scan_file("crates/core/src/fault.rs", src).is_empty());
        // So are integration tests (never on the measured path).
        assert!(scan_file("crates/core/tests/x.rs", src).is_empty());
    }

    #[test]
    fn l007_guard_in_enclosing_fn_suppresses() {
        // An early-return classification before the loop is the hoisted
        // dispatch the rule wants.
        let src = "fn f(plan: &FaultPlan, keys: &[Datum]) -> u64 {\n\
                   if plan.is_quiet() { return 0; }\n\
                   let mut n = 0;\n\
                   for key in keys {\n\
                   if plan.outcome(\"s.\", key, 0) == FaultKind::Fail { n += 1; }\n\
                   }\n\
                   n\n}\n";
        assert!(scan_file("crates/core/src/x.rs", src).is_empty());
        // A `FaultState` parameter counts: accessors only hold one when
        // the layer classified Armed.
        let src = "fn f(fault: &FaultState, keys: &[Datum]) -> u64 {\n\
                   let mut n = 0;\n\
                   for key in keys {\n\
                   if fault.plan.outcome(\"s.\", key, 0) == FaultKind::Fail { n += 1; }\n\
                   }\n\
                   n\n}\n";
        assert!(scan_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn l007_partition_queries_in_loops_need_a_guard() {
        // A per-record partition query without a Quiet/Armed guard is the
        // per-iteration dispatch the profile exists to hoist.
        let src = "fn f(plan: &PartitionPlan, keys: &[Datum], t: SimTime) -> u64 {\n\
                   let mut n = 0;\n\
                   for _key in keys {\n\
                   if plan.is_isolated_at(NodeId(0), t) { n += 1; }\n\
                   }\n\
                   n\n}\n";
        let f = scan_file("crates/mapreduce/src/x.rs", src);
        assert_eq!(codes(&f), vec![LintCode::L007]);
        // The netsplit module implements the plan — exempt.
        assert!(scan_file("crates/cluster/src/netsplit.rs", src).is_empty());

        // Classified before the loop: the hoisted dispatch the rule wants.
        let src = "fn f(plan: &PartitionPlan, keys: &[Datum], t: SimTime) -> u64 {\n\
                   if !plan.layer_state().is_armed() { return 0; }\n\
                   let mut n = 0;\n\
                   for _key in keys {\n\
                   if plan.slowdown_at(NodeId(0), t) > 1.0 { n += 1; }\n\
                   }\n\
                   n\n}\n";
        assert!(scan_file("crates/mapreduce/src/x.rs", src).is_empty());
    }

    #[test]
    fn l007_while_header_call_and_waiver() {
        // The call sits in the `while` condition itself, not the body.
        let src = "fn f(plan: &CorruptionPlan, kb: &[u8]) {\n\
                   let mut attempt = 0;\n\
                   while plan.response_corrupt(\"s.\", kb, attempt) {\n\
                   attempt += 1;\n\
                   }\n}\n";
        let f = scan_file("crates/core/src/x.rs", src);
        assert_eq!(codes(&f), vec![LintCode::L007]);

        let src = "fn f(plan: &CorruptionPlan, kb: &[u8]) {\n\
                   let mut attempt = 0;\n\
                   // efind-lint: allow(unguarded-injection, caller classifies the layer)\n\
                   while plan.response_corrupt(\"s.\", kb, attempt) {\n\
                   attempt += 1;\n\
                   }\n}\n";
        let f = scan_file("crates/core/src/x.rs", src);
        assert!(codes(&f).is_empty());
        assert_eq!(f.len(), 1, "waived finding still reported");
        assert!(f[0].waived.is_some());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let t = Instant::now(); }\n}\n";
        assert!(scan_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "fn f() { let s = \"Instant::now()\"; } // Instant::now in a comment\n";
        assert!(scan_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn report_rendering() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let report = LintReport {
            findings: scan_file("crates/core/src/x.rs", src),
            files_scanned: 1,
        };
        assert!(!report.is_passing());
        assert!(report.to_text().contains("error[L001]"));
        let json = report.to_json();
        assert!(json.contains("\"code\": \"L001\""));
        assert!(json.contains("\"active\": 1"));
    }
}
