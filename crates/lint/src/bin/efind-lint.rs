//! `efind-lint` CLI.
//!
//! Usage:
//!
//! ```text
//! efind-lint [--json] [--root DIR] [FILE ...]
//! ```
//!
//! With no `FILE` arguments, scans the workspace under `--root`
//! (default `.`): `crates/`, `src/`, `tests/`, `examples/`, excluding
//! `vendor/`, `target/`, and `tests/fixtures` corpora. Exit status:
//! `0` clean (waived findings allowed), `1` un-waived findings,
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("efind-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: efind-lint [--json] [--root DIR] [FILE ...]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("efind-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    let result = if files.is_empty() {
        efind_lint::scan_workspace(&root)
    } else {
        efind_lint::scan_paths(&root, &files)
    };
    let report = match result {
        Ok(r) => r,
        Err(err) => {
            eprintln!("efind-lint: {err}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if report.is_passing() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
