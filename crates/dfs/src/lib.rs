#![warn(missing_docs)]

//! Distributed file system simulation.
//!
//! Plays the role HDFS plays in the paper's testbed: files are split into
//! chunks (64 MB, replication 3 in the paper; both configurable here),
//! chunks are placed on nodes, and MapReduce schedules map tasks near chunk
//! replicas. The cost of "storing and retrieving a byte from the
//! distributed file system" is the `f` term of Table 1, used by the
//! re-partitioning strategy's `Cost_result` (Eq. 3).
//!
//! Records are kept in memory — the simulation models *costs*, not
//! capacity — but chunking, replica placement, and locality are faithful.
//!
//! Node crashes are faithful too: [`Dfs::crash_node`] strips a dead node's
//! replicas, [`Dfs::under_replicated`] exposes per-chunk replica health,
//! and [`Dfs::re_replicate`] restores the replication target in the
//! background (priced on the network/disk models). A chunk whose last
//! replica dies is permanently lost — reads fail with a `DataLoss` error.

pub mod file;
pub mod placement;

pub use file::{ChunkMeta, Dfs, DfsConfig, DfsFile, ReReplication};
