//! Replica placement policy.
//!
//! HDFS spreads the first replica at the writer and the rest across the
//! cluster. We have no writer node in the namespace API, so the policy is:
//! first replica round-robin over nodes (even load), remaining replicas on
//! random distinct nodes, all deterministic under a seed.

use efind_cluster::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic replica placement.
#[derive(Debug)]
pub struct Placement {
    num_nodes: u16,
    rng: SmallRng,
    next_primary: u16,
}

impl Placement {
    /// Creates a placement policy over `num_nodes` nodes.
    pub fn new(num_nodes: u16, seed: u64) -> Self {
        Placement {
            num_nodes: num_nodes.max(1),
            rng: SmallRng::seed_from_u64(seed),
            next_primary: 0,
        }
    }

    /// Picks `replication` distinct hosts for the next chunk (capped at the
    /// node count).
    pub fn pick(&mut self, replication: usize) -> Vec<NodeId> {
        self.pick_avoiding(replication, &[])
    }

    /// [`pick`](Self::pick) excluding `dead` nodes. With an empty `dead`
    /// list the draw sequence is bit-identical to `pick` — dead candidates
    /// are skipped without perturbing the RNG stream for live ones, so
    /// crash-free placements never change. Returns an empty vector when
    /// every node is dead.
    pub fn pick_avoiding(&mut self, replication: usize, dead: &[NodeId]) -> Vec<NodeId> {
        let live = (0..self.num_nodes)
            .filter(|n| !dead.contains(&NodeId(*n)))
            .count();
        if live == 0 {
            return Vec::new();
        }
        let replication = replication.clamp(1, live);
        let mut hosts = Vec::with_capacity(replication);
        // Primary: round-robin, skipping dead nodes without an RNG draw.
        loop {
            let candidate = NodeId(self.next_primary);
            self.next_primary = (self.next_primary + 1) % self.num_nodes;
            if !dead.contains(&candidate) {
                hosts.push(candidate);
                break;
            }
        }
        while hosts.len() < replication {
            let candidate = NodeId(self.rng.gen_range(0..self.num_nodes));
            if !hosts.contains(&candidate) && !dead.contains(&candidate) {
                hosts.push(candidate);
            }
        }
        hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_are_distinct() {
        let mut p = Placement::new(12, 7);
        for _ in 0..100 {
            let hosts = p.pick(3);
            assert_eq!(hosts.len(), 3);
            let mut sorted = hosts.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "{hosts:?}");
        }
    }

    #[test]
    fn replication_capped_by_cluster_size() {
        let mut p = Placement::new(2, 0);
        assert_eq!(p.pick(3).len(), 2);
        let mut p1 = Placement::new(1, 0);
        assert_eq!(p1.pick(3), vec![NodeId(0)]);
    }

    #[test]
    fn primaries_round_robin() {
        let mut p = Placement::new(4, 1);
        let primaries: Vec<u16> = (0..8).map(|_| p.pick(1)[0].0).collect();
        assert_eq!(primaries, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn avoiding_nothing_matches_pick_exactly() {
        let mut plain = Placement::new(8, 42);
        let mut avoiding = Placement::new(8, 42);
        for _ in 0..50 {
            assert_eq!(plain.pick(3), avoiding.pick_avoiding(3, &[]));
        }
    }

    #[test]
    fn dead_nodes_are_never_picked() {
        let dead = [NodeId(0), NodeId(5)];
        let mut p = Placement::new(8, 9);
        for _ in 0..100 {
            let hosts = p.pick_avoiding(3, &dead);
            assert_eq!(hosts.len(), 3);
            assert!(hosts.iter().all(|h| !dead.contains(h)), "{hosts:?}");
        }
        // Replication clamps to the live node count.
        let mut small = Placement::new(3, 9);
        let hosts = small.pick_avoiding(3, &[NodeId(1)]);
        assert_eq!(hosts.len(), 2);
        // All nodes dead: nothing to place on.
        let mut gone = Placement::new(2, 9);
        assert!(gone.pick_avoiding(1, &[NodeId(0), NodeId(1)]).is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let runs: Vec<Vec<Vec<NodeId>>> = (0..2)
            .map(|_| {
                let mut p = Placement::new(8, 42);
                (0..10).map(|_| p.pick(3)).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }
}
