//! File namespace, chunking, cost accounting, and chunk integrity.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use efind_cluster::{Cluster, CorruptionPlan, NodeId, SimDuration};
use efind_common::{fx_hash_bytes, Crc32, Error, Record, Result};

use crate::placement::Placement;

/// DFS configuration.
#[derive(Clone, Copy, Debug)]
pub struct DfsConfig {
    /// Maximum chunk size in bytes. The paper uses 64 MB; scaled-down
    /// experiments typically set this so inputs split into tens of chunks.
    pub chunk_size_bytes: u64,
    /// Number of replicas per chunk (paper: 3).
    pub replication: usize,
    /// Placement seed for determinism.
    pub seed: u64,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            chunk_size_bytes: 4 << 20,
            replication: 3,
            seed: 0xD_F5,
        }
    }
}

/// Metadata of one stored chunk.
#[derive(Clone, Debug)]
pub struct ChunkMeta {
    /// Index of the chunk within its file.
    pub index: usize,
    /// Serialized size of the chunk's records.
    pub bytes: u64,
    /// Number of records.
    pub records: usize,
    /// Replica hosts.
    pub hosts: Vec<NodeId>,
}

/// A lightweight handle describing a stored file.
#[derive(Clone, Debug)]
pub struct DfsFile {
    /// File name in the namespace.
    pub name: String,
    /// Chunk metadata in order.
    pub chunks: Vec<ChunkMeta>,
}

impl DfsFile {
    /// Total serialized bytes.
    pub fn total_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.bytes).sum()
    }

    /// Total record count.
    pub fn total_records(&self) -> usize {
        self.chunks.iter().map(|c| c.records).sum()
    }
}

struct StoredChunk {
    hosts: Vec<NodeId>,
    bytes: u64,
    /// Shared so map tasks can read a chunk without copying it
    /// ([`Dfs::read_chunk_shared`]).
    records: Arc<[Record]>,
    /// CRC-32 over the chunk's encoded records. Filled at write time when
    /// the integrity layer is armed, lazily on first verified read
    /// otherwise (files written before the plan was installed); never
    /// computed at all on corruption-free runs, so the hot path is
    /// untouched.
    crc: OnceLock<u32>,
}

/// What a verified read discovered about one chunk's replicas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkIntegrity {
    /// Replicas whose payload failed CRC verification, in host order.
    pub corrupt: Vec<NodeId>,
    /// Extra virtual time the reader spent fetching and discarding the
    /// corrupt copies before a clean replica verified (one remote
    /// retrieve per bad replica).
    pub reread_cost: SimDuration,
}

/// CRC-32 of the chunk's payload (the concatenated record encodings),
/// computed once and cached — the digest a write boundary seals the
/// chunk with.
fn chunk_crc(c: &StoredChunk) -> u32 {
    *c.crc.get_or_init(|| encoded_crc(&c.records, None))
}

/// CRC-32 over the concatenated record encodings. `flip` simulates the
/// payload a reader fetches from a corrupt replica: one byte (chosen by
/// the flip salt) XOR-perturbed, which CRC-32 detects with certainty.
fn encoded_crc(records: &[Record], flip: Option<usize>) -> u32 {
    let mut buf = Vec::new();
    for rec in records {
        rec.key.encode_into(&mut buf);
        rec.value.encode_into(&mut buf);
    }
    if let Some(salt) = flip {
        if !buf.is_empty() {
            let pos = salt % buf.len();
            buf[pos] ^= 0x55;
        }
    }
    let mut h = Crc32::new();
    h.update(&buf);
    h.finish()
}

/// Outcome of one background re-replication sweep
/// ([`Dfs::re_replicate`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReReplication {
    /// Chunks that received at least one new replica.
    pub chunks: usize,
    /// Bytes copied (one full chunk per new replica).
    pub bytes: u64,
    /// Virtual time the copies took, priced on the network and disk
    /// models. Re-replication runs in the background, so callers record
    /// this rather than serializing it into a job's makespan.
    pub duration: SimDuration,
}

/// The in-memory distributed file system.
pub struct Dfs {
    cluster: Cluster,
    config: DfsConfig,
    /// Chunk table keyed by file name. A `BTreeMap` on purpose: sweeps
    /// (`crash_node`, `under_replicated`, `re_replicate`) iterate it and
    /// their results are observable, so iteration order must be the sorted
    /// file-name order, not a hash order.
    files: BTreeMap<String, Vec<StoredChunk>>,
    /// Nodes declared dead, in crash order. Their replicas are gone; new
    /// placements avoid them.
    dead: Vec<NodeId>,
    /// Corruption plan consulted at read boundaries. Quiet by default;
    /// installed by the runtime via [`Dfs::set_corruption`].
    corruption: CorruptionPlan,
}

impl Dfs {
    /// Creates an empty DFS over `cluster`.
    pub fn new(cluster: Cluster, config: DfsConfig) -> Self {
        Dfs {
            cluster,
            config,
            files: BTreeMap::new(),
            dead: Vec::new(),
            corruption: CorruptionPlan::none(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    /// Installs the corruption plan consulted at read boundaries.
    pub fn set_corruption(&mut self, plan: CorruptionPlan) {
        self.corruption = plan;
    }

    /// The installed corruption plan (quiet by default).
    pub fn corruption(&self) -> &CorruptionPlan {
        &self.corruption
    }

    /// True when chunk reads verify CRCs: the plan can corrupt chunk
    /// replicas and verification is enabled. Delegates to the plan's own
    /// once-per-job classification so every read and write boundary in
    /// this file makes the identical Quiet/Armed call.
    fn verifies_chunks(&self) -> bool {
        self.corruption.verifies_chunks()
    }

    /// Writes `records` as `name`, splitting into chunks of at most the
    /// configured size and placing replicas deterministically.
    /// Overwrites any existing file of the same name.
    pub fn write_file(&mut self, name: &str, records: Vec<Record>) -> DfsFile {
        self.write_file_chunked(name, records, self.config.chunk_size_bytes)
    }

    /// Writes `records` as `name` targeting approximately `num_chunks`
    /// equal-size chunks. Used by experiments to control the number of map
    /// tasks (and hence waves) precisely.
    pub fn write_file_with_chunks(
        &mut self,
        name: &str,
        records: Vec<Record>,
        num_chunks: usize,
    ) -> DfsFile {
        let total: u64 = records.iter().map(Record::size_bytes).sum();
        let per_chunk = (total / num_chunks.max(1) as u64).max(1);
        self.write_file_chunked(name, records, per_chunk)
    }

    fn write_file_chunked(
        &mut self,
        name: &str,
        records: Vec<Record>,
        chunk_bytes: u64,
    ) -> DfsFile {
        let mut placement = Placement::new(
            self.cluster.num_nodes(),
            self.config.seed ^ fx_hash_bytes(name.as_bytes()),
        );
        let dead = self.dead.clone();
        // Write boundary: when the integrity layer is armed, checksum each
        // chunk as it is sealed so read boundaries have something to
        // verify against. Quiet runs skip this entirely (the lazy cell
        // covers files that predate an installed plan).
        let checksum_on_write = self.verifies_chunks();
        let mut chunks = Vec::new();
        let mut current = Vec::new();
        let mut current_bytes = 0u64;
        let mut flush = |current: &mut Vec<Record>, current_bytes: &mut u64| {
            if current.is_empty() {
                return;
            }
            let crc = OnceLock::new();
            if checksum_on_write {
                let _ = crc.set(encoded_crc(current, None));
            }
            chunks.push(StoredChunk {
                hosts: placement.pick_avoiding(self.config.replication, &dead),
                bytes: *current_bytes,
                records: std::mem::take(current).into(),
                crc,
            });
            *current_bytes = 0;
        };
        for rec in records {
            let sz = rec.size_bytes();
            if current_bytes + sz > chunk_bytes && !current.is_empty() {
                flush(&mut current, &mut current_bytes);
            }
            current_bytes += sz;
            current.push(rec);
        }
        flush(&mut current, &mut current_bytes);
        // An empty file still exists in the namespace with zero chunks.
        let meta = DfsFile {
            name: name.to_owned(),
            chunks: chunks
                .iter()
                .enumerate()
                .map(|(index, c)| ChunkMeta {
                    index,
                    bytes: c.bytes,
                    records: c.records.len(),
                    hosts: c.hosts.clone(),
                })
                .collect(),
        };
        self.files.insert(name.to_owned(), chunks);
        meta
    }

    /// Returns the metadata handle of an existing file.
    pub fn stat(&self, name: &str) -> Result<DfsFile> {
        let chunks = self
            .files
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("dfs file {name}")))?;
        Ok(DfsFile {
            name: name.to_owned(),
            chunks: chunks
                .iter()
                .enumerate()
                .map(|(index, c)| ChunkMeta {
                    index,
                    bytes: c.bytes,
                    records: c.records.len(),
                    hosts: c.hosts.clone(),
                })
                .collect(),
        })
    }

    /// Reads the records of one chunk.
    pub fn read_chunk(&self, name: &str, chunk: usize) -> Result<&[Record]> {
        let chunks = self
            .files
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("dfs file {name}")))?;
        let c = chunks
            .get(chunk)
            .ok_or_else(|| Error::NotFound(format!("chunk {chunk} of {name}")))?;
        if c.hosts.is_empty() {
            return Err(Error::DataLoss(format!(
                "all replicas of chunk {chunk} of {name} lost to node crashes"
            )));
        }
        self.verify_chunk(name, chunk, c)?;
        Ok(&c.records[..])
    }

    /// Reads one chunk as a shared handle — a refcount bump, no record
    /// copies. Map tasks stream their input straight off shared chunk
    /// storage instead of materializing a private `Vec` first.
    pub fn read_chunk_shared(&self, name: &str, chunk: usize) -> Result<Arc<[Record]>> {
        let chunks = self
            .files
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("dfs file {name}")))?;
        let c = chunks
            .get(chunk)
            .ok_or_else(|| Error::NotFound(format!("chunk {chunk} of {name}")))?;
        if c.hosts.is_empty() {
            return Err(Error::DataLoss(format!(
                "all replicas of chunk {chunk} of {name} lost to node crashes"
            )));
        }
        self.verify_chunk(name, chunk, c)?;
        Ok(c.records.clone())
    }

    /// Reads a whole file in chunk order.
    pub fn read_file(&self, name: &str) -> Result<Vec<Record>> {
        let chunks = self
            .files
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("dfs file {name}")))?;
        if let Some(idx) = chunks.iter().position(|c| c.hosts.is_empty()) {
            return Err(Error::DataLoss(format!(
                "all replicas of chunk {idx} of {name} lost to node crashes"
            )));
        }
        for (idx, c) in chunks.iter().enumerate() {
            self.verify_chunk(name, idx, c)?;
        }
        Ok(chunks
            .iter()
            .flat_map(|c| c.records.iter().cloned())
            .collect())
    }

    /// Read-boundary verification: fail fast with
    /// [`Error::DataCorruption`] — naming file, chunk, and the replica
    /// set — when *every* replica of the chunk fails its CRC. With at
    /// least one clean replica the read proceeds (callers charge the
    /// wasted fetches via [`Dfs::chunk_integrity`]).
    fn verify_chunk(&self, name: &str, chunk: usize, c: &StoredChunk) -> Result<()> {
        if !self.verifies_chunks() {
            return Ok(());
        }
        let stored = chunk_crc(c);
        let clean = c
            .hosts
            .iter()
            .any(|&h| self.replica_crc(name, chunk, c, h) == stored);
        if clean {
            return Ok(());
        }
        Err(Error::DataCorruption(format!(
            "all {} replicas of chunk {chunk} of {name} failed checksum verification (hosts {:?})",
            c.hosts.len(),
            c.hosts.iter().map(|h| h.0).collect::<Vec<_>>(),
        )))
    }

    /// The CRC a reader observes fetching this chunk from `host`: the
    /// write-time digest for a clean replica, the digest of the perturbed
    /// payload when the corruption plan flipped a byte in that copy.
    fn replica_crc(&self, name: &str, chunk: usize, c: &StoredChunk, host: NodeId) -> u32 {
        if self.corruption.chunk_replica_corrupt(name, chunk, host) {
            encoded_crc(&c.records, Some(host.0 as usize))
        } else {
            chunk_crc(c)
        }
    }

    /// Replicas of one chunk whose payload fails CRC verification, in
    /// host order. Pure in the DFS state — every read of the same chunk
    /// discovers the same set. Empty when the integrity layer is quiet,
    /// verification is off, or the file/chunk does not exist.
    pub fn corrupt_replicas(&self, name: &str, chunk: usize) -> Vec<NodeId> {
        if !self.verifies_chunks() {
            return Vec::new();
        }
        let Some(c) = self.files.get(name).and_then(|cs| cs.get(chunk)) else {
            return Vec::new();
        };
        let stored = chunk_crc(c);
        c.hosts
            .iter()
            .copied()
            .filter(|&h| self.replica_crc(name, chunk, c, h) != stored)
            .collect()
    }

    /// What a verified read of this chunk discovers and what it costs:
    /// the corrupt replicas plus one wasted remote retrieve per bad copy.
    /// `None` when every replica is clean (the common case — callers can
    /// skip all integrity accounting).
    pub fn chunk_integrity(&self, name: &str, chunk: usize) -> Option<ChunkIntegrity> {
        let corrupt = self.corrupt_replicas(name, chunk);
        if corrupt.is_empty() {
            return None;
        }
        let bytes = self
            .files
            .get(name)
            .and_then(|cs| cs.get(chunk))
            .map_or(0, |c| c.bytes);
        let reread_cost = self
            .retrieve_cost_remote(bytes)
            .mul_f64(corrupt.len() as f64);
        Some(ChunkIntegrity {
            corrupt,
            reread_cost,
        })
    }

    /// Removes replicas that failed verification from a chunk's host set
    /// so they are never served again, returning the quarantined hosts.
    /// At least one clean replica must remain (an all-corrupt chunk is
    /// left untouched — reads of it fail fast instead). The chunk drops
    /// below its replication target, so the next [`Dfs::re_replicate`]
    /// sweep restores it from a clean copy.
    pub fn quarantine_corrupt_replicas(&mut self, name: &str, chunk: usize) -> Vec<NodeId> {
        let bad = self.corrupt_replicas(name, chunk);
        if bad.is_empty() {
            return bad;
        }
        if let Some(c) = self.files.get_mut(name).and_then(|cs| cs.get_mut(chunk)) {
            if bad.len() >= c.hosts.len() {
                return Vec::new();
            }
            c.hosts.retain(|h| !bad.contains(h));
        }
        bad
    }

    /// Removes a file; removing a missing file is a no-op.
    pub fn delete(&mut self, name: &str) {
        self.files.remove(name);
    }

    /// True if `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Time for a task to durably store `bytes`: a local disk write plus one
    /// (pipelined) network hop when replication > 1.
    pub fn store_cost(&self, bytes: u64) -> SimDuration {
        let mut d = self.cluster.disk.write(bytes);
        if self.config.replication > 1 {
            d += self.cluster.network.volume(bytes);
        }
        d
    }

    /// Time to retrieve `bytes` from a local replica.
    pub fn retrieve_cost_local(&self, bytes: u64) -> SimDuration {
        self.cluster.disk.read(bytes)
    }

    /// Time to retrieve `bytes` from a remote replica.
    pub fn retrieve_cost_remote(&self, bytes: u64) -> SimDuration {
        self.cluster.disk.read(bytes) + self.cluster.network.transfer(bytes)
    }

    /// Declares `node` dead: every replica it held is gone and future
    /// placements avoid it. Idempotent. Returns the chunks that lost their
    /// *last* replica — permanently unavailable data — sorted by
    /// `(file, chunk index)` for determinism.
    pub fn crash_node(&mut self, node: NodeId) -> Vec<(String, usize)> {
        if self.dead.contains(&node) {
            return Vec::new();
        }
        self.dead.push(node);
        let mut lost = Vec::new();
        for (name, chunks) in &mut self.files {
            for (idx, c) in chunks.iter_mut().enumerate() {
                let before = c.hosts.len();
                c.hosts.retain(|h| *h != node);
                if before > 0 && c.hosts.is_empty() {
                    lost.push((name.clone(), idx));
                }
            }
        }
        lost.sort();
        lost
    }

    /// Nodes declared dead so far, in crash order.
    pub fn dead_nodes(&self) -> &[NodeId] {
        &self.dead
    }

    /// True if `node` has been declared dead.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead.contains(&node)
    }

    /// Live replica count of one chunk. 0 means the data is lost.
    pub fn live_replicas(&self, name: &str, chunk: usize) -> Result<usize> {
        let chunks = self
            .files
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("dfs file {name}")))?;
        chunks
            .get(chunk)
            .map(|c| c.hosts.len())
            .ok_or_else(|| Error::NotFound(format!("chunk {chunk} of {name}")))
    }

    /// The replication target given the current live-node count: the
    /// configured factor, capped at the number of surviving nodes.
    fn target_replication(&self) -> usize {
        let live = (self.cluster.num_nodes() as usize).saturating_sub(self.dead.len());
        self.config.replication.min(live.max(1))
    }

    /// Chunks holding fewer live replicas than the target (but at least
    /// one — lost chunks cannot be re-replicated), as
    /// `(file, chunk index, live replicas)` sorted for determinism.
    pub fn under_replicated(&self) -> Vec<(String, usize, usize)> {
        let target = self.target_replication();
        let mut out = Vec::new();
        for (name, chunks) in &self.files {
            for (idx, c) in chunks.iter().enumerate() {
                if !c.hosts.is_empty() && c.hosts.len() < target {
                    out.push((name.clone(), idx, c.hosts.len()));
                }
            }
        }
        out.sort();
        out
    }

    /// Number of currently under-replicated chunks — the health counter
    /// reports and tests assert re-replication progress against.
    pub fn under_replicated_count(&self) -> usize {
        self.under_replicated().len()
    }

    /// Background re-replication sweep: every under-replicated chunk gains
    /// replicas on live nodes until it reaches the target. New hosts are
    /// chosen by a seeded hash over `(file, chunk)`, so the sweep is a pure
    /// function of the DFS state. The returned [`ReReplication`] prices the
    /// copies (network transfer + disk write per new replica) for the
    /// caller to record; the sweep itself does not advance any clock.
    pub fn re_replicate(&mut self) -> ReReplication {
        let target = self.target_replication();
        let live: Vec<NodeId> = self
            .cluster
            .nodes()
            .filter(|n| !self.dead.contains(n))
            .collect();
        let mut rep = ReReplication::default();
        if live.is_empty() {
            return rep;
        }
        let names: Vec<String> = self.files.keys().cloned().collect();
        let seed = self.config.seed;
        for name in names {
            let chunks = self.files.get_mut(&name).expect("name from keys()");
            for (idx, c) in chunks.iter_mut().enumerate() {
                if c.hosts.is_empty() || c.hosts.len() >= target {
                    continue;
                }
                let mut buf = Vec::with_capacity(name.len() + 16);
                buf.extend_from_slice(&seed.to_le_bytes());
                buf.extend_from_slice(name.as_bytes());
                buf.extend_from_slice(&(idx as u64).to_le_bytes());
                let offset = fx_hash_bytes(&buf) as usize % live.len();
                let mut added = false;
                for k in 0..live.len() {
                    if c.hosts.len() >= target {
                        break;
                    }
                    let candidate = live[(offset + k) % live.len()];
                    if !c.hosts.contains(&candidate) {
                        c.hosts.push(candidate);
                        rep.bytes += c.bytes;
                        rep.duration += self.cluster.network.transfer(c.bytes)
                            + self.cluster.disk.write(c.bytes);
                        added = true;
                    }
                }
                if added {
                    rep.chunks += 1;
                }
            }
        }
        rep
    }

    /// The Table 1 `f` term: average store+retrieve cost per byte, in
    /// seconds. The retrieve half averages local and remote reads weighted
    /// by the expected locality of `replication` replicas on this cluster.
    pub fn f_per_byte(&self) -> f64 {
        let probe = 1u64 << 20;
        let store = self.store_cost(probe).as_secs_f64();
        let p_local = (self.config.replication as f64 / self.cluster.num_nodes() as f64).min(1.0);
        let retrieve = p_local * self.retrieve_cost_local(probe).as_secs_f64()
            + (1.0 - p_local) * self.retrieve_cost_remote(probe).as_secs_f64();
        (store + retrieve) / probe as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efind_common::Datum;

    fn dfs() -> Dfs {
        Dfs::new(
            Cluster::edbt_testbed(),
            DfsConfig {
                chunk_size_bytes: 1024,
                replication: 3,
                seed: 1,
            },
        )
    }

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(i as i64, Datum::Bytes(vec![0u8; 100])))
            .collect()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = dfs();
        let data = records(50);
        let meta = d.write_file("input", data.clone());
        assert!(meta.chunks.len() > 1, "should split: {}", meta.chunks.len());
        assert_eq!(meta.total_records(), 50);
        assert_eq!(d.read_file("input").unwrap(), data);
    }

    #[test]
    fn chunks_respect_size_limit() {
        let mut d = dfs();
        let meta = d.write_file("input", records(50));
        for c in &meta.chunks {
            assert!(c.bytes <= 1024 + 200, "chunk of {} bytes", c.bytes);
            assert_eq!(c.hosts.len(), 3);
        }
    }

    #[test]
    fn chunk_order_preserved() {
        let mut d = dfs();
        let data = records(30);
        let meta = d.write_file("input", data.clone());
        let mut collected = Vec::new();
        for c in &meta.chunks {
            collected.extend(d.read_chunk("input", c.index).unwrap().iter().cloned());
        }
        assert_eq!(collected, data);
    }

    #[test]
    fn target_chunk_count() {
        let mut d = dfs();
        let meta = d.write_file_with_chunks("input", records(100), 10);
        assert!(
            (8..=12).contains(&meta.chunks.len()),
            "{} chunks",
            meta.chunks.len()
        );
    }

    #[test]
    fn missing_files_error() {
        let d = dfs();
        assert!(d.stat("nope").is_err());
        assert!(d.read_chunk("nope", 0).is_err());
        assert!(d.read_file("nope").is_err());
    }

    #[test]
    fn overwrite_replaces() {
        let mut d = dfs();
        d.write_file("f", records(10));
        d.write_file("f", records(2));
        assert_eq!(d.read_file("f").unwrap().len(), 2);
    }

    #[test]
    fn delete_and_exists() {
        let mut d = dfs();
        d.write_file("f", records(1));
        assert!(d.exists("f"));
        d.delete("f");
        assert!(!d.exists("f"));
        d.delete("f"); // no-op
    }

    #[test]
    fn empty_file_is_stattable() {
        let mut d = dfs();
        let meta = d.write_file("empty", vec![]);
        assert_eq!(meta.chunks.len(), 0);
        assert!(d.exists("empty"));
        assert_eq!(d.read_file("empty").unwrap().len(), 0);
    }

    #[test]
    fn crash_strips_replicas_and_tracks_health() {
        let mut d = dfs();
        let meta = d.write_file("input", records(50));
        let victim = meta.chunks[0].hosts[0];
        assert_eq!(d.live_replicas("input", 0).unwrap(), 3);
        assert_eq!(d.under_replicated_count(), 0);
        let lost = d.crash_node(victim);
        assert!(lost.is_empty(), "3x replication survives one crash");
        assert!(d.is_dead(victim));
        assert_eq!(d.live_replicas("input", 0).unwrap(), 2);
        assert!(d.under_replicated_count() > 0);
        // Idempotent: crashing the same node again changes nothing.
        assert!(d.crash_node(victim).is_empty());
        assert_eq!(d.dead_nodes(), &[victim]);
        // Reads still work off the surviving replicas.
        assert_eq!(d.read_file("input").unwrap().len(), 50);
    }

    #[test]
    fn re_replication_restores_the_target() {
        let mut d = dfs();
        let meta = d.write_file("input", records(50));
        let victim = meta.chunks[0].hosts[0];
        d.crash_node(victim);
        let before = d.under_replicated_count();
        assert!(before > 0);
        let rep = d.re_replicate();
        assert_eq!(rep.chunks, before);
        assert!(rep.bytes > 0);
        assert!(!rep.duration.is_zero());
        assert_eq!(d.under_replicated_count(), 0);
        // New replicas never land on the dead node; a repeat sweep is a
        // no-op; double-run determinism.
        for c in &d.stat("input").unwrap().chunks {
            assert!(!c.hosts.contains(&victim));
            let mut hosts = c.hosts.clone();
            hosts.sort();
            hosts.dedup();
            assert_eq!(hosts.len(), c.hosts.len(), "duplicate replica host");
        }
        assert_eq!(d.re_replicate(), ReReplication::default());
    }

    #[test]
    fn losing_every_replica_is_a_diagnosable_data_loss() {
        let mut d = Dfs::new(
            Cluster::edbt_testbed(),
            DfsConfig {
                chunk_size_bytes: 1024,
                replication: 1,
                seed: 1,
            },
        );
        let meta = d.write_file("input", records(50));
        let victim = meta.chunks[0].hosts[0];
        let lost = d.crash_node(victim);
        assert!(lost.contains(&("input".to_owned(), 0)), "{lost:?}");
        let err = d.read_chunk("input", 0).unwrap_err();
        assert!(
            matches!(err, Error::DataLoss(_)),
            "expected DataLoss, got {err}"
        );
        assert!(err.to_string().contains("input"));
        assert!(d.read_chunk_shared("input", 0).is_err());
        assert!(d.read_file("input").is_err());
        assert_eq!(d.live_replicas("input", 0).unwrap(), 0);
        // A lost chunk cannot be re-replicated — there is no source copy.
        d.re_replicate();
        assert_eq!(d.live_replicas("input", 0).unwrap(), 0);
    }

    #[test]
    fn writes_after_a_crash_avoid_the_dead_node() {
        let mut d = dfs();
        d.crash_node(NodeId(3));
        let meta = d.write_file("fresh", records(50));
        for c in &meta.chunks {
            assert!(!c.hosts.contains(&NodeId(3)), "{:?}", c.hosts);
        }
    }

    #[test]
    fn costs_scale_with_bytes() {
        let d = dfs();
        assert!(d.store_cost(1 << 20) < d.store_cost(1 << 24));
        assert!(d.retrieve_cost_local(1 << 20) < d.retrieve_cost_remote(1 << 20));
        let f = d.f_per_byte();
        assert!(f > 0.0 && f < 1e-6, "f = {f} s/byte");
    }

    #[test]
    fn quiet_corruption_plan_checks_nothing() {
        let mut d = dfs();
        let data = records(50);
        d.write_file("input", data.clone());
        d.set_corruption(CorruptionPlan::new(9));
        assert!(d.corrupt_replicas("input", 0).is_empty());
        assert!(d.chunk_integrity("input", 0).is_none());
        assert!(d.quarantine_corrupt_replicas("input", 0).is_empty());
        assert_eq!(d.read_file("input").unwrap(), data);
    }

    #[test]
    fn partial_corruption_serves_clean_data_and_prices_rereads() {
        let mut d = dfs();
        let data = records(50);
        d.write_file("input", data.clone());
        // High per-replica rate: at 3x replication, some chunk ends up
        // with 1–2 corrupt copies but a clean one surviving somewhere.
        let mut hit = None;
        for seed in 0..64 {
            d.set_corruption(CorruptionPlan::new(seed).chunks(0.4));
            let stat = d.stat("input").unwrap();
            let per_chunk: Vec<_> = stat
                .chunks
                .iter()
                .map(|c| (c.index, c.hosts.len(), d.corrupt_replicas("input", c.index)))
                .collect();
            // Need a seed where some chunk is partially corrupt and no
            // chunk lost every replica (reads must still succeed).
            if per_chunk.iter().any(|(_, hosts, bad)| bad.len() >= *hosts) {
                continue;
            }
            if let Some((idx, _, bad)) = per_chunk
                .into_iter()
                .find(|(_, hosts, bad)| !bad.is_empty() && bad.len() < *hosts)
            {
                hit = Some((seed, idx, bad));
                break;
            }
        }
        let (seed, chunk, bad) = hit.expect("some seed produces partial corruption");
        d.set_corruption(CorruptionPlan::new(seed).chunks(0.4));
        // The read still succeeds (clean replica exists) and returns the
        // exact written records — corruption costs time, never answers.
        let mut collected = Vec::new();
        for c in &d.stat("input").unwrap().chunks {
            collected.extend(d.read_chunk("input", c.index).unwrap().iter().cloned());
        }
        assert_eq!(collected, data);
        let integ = d.chunk_integrity("input", chunk).unwrap();
        assert_eq!(integ.corrupt, bad);
        assert!(!integ.reread_cost.is_zero());
        // Quarantine drops the bad replicas; re-replication restores the
        // target from the clean copy.
        let q = d.quarantine_corrupt_replicas("input", chunk);
        assert_eq!(q, bad);
        assert!(d.live_replicas("input", chunk).unwrap() < 3);
        // Repair on a corruption-free DFS state (the plan stays pure, so
        // fresh hosts may draw corrupt again; quiet it for the assert).
        d.set_corruption(CorruptionPlan::none());
        let rep = d.re_replicate();
        assert!(rep.chunks >= 1);
        assert_eq!(d.live_replicas("input", chunk).unwrap(), 3);
    }

    #[test]
    fn all_replicas_corrupt_is_a_diagnosable_data_corruption() {
        let mut d = dfs();
        d.write_file("input", records(50));
        d.set_corruption(CorruptionPlan::new(1).chunks(1.0));
        let err = d.read_chunk("input", 0).unwrap_err();
        assert!(
            matches!(err, Error::DataCorruption(_)),
            "expected DataCorruption, got {err}"
        );
        let msg = err.to_string();
        assert!(msg.contains("input") && msg.contains("chunk 0"), "{msg}");
        assert!(d.read_chunk_shared("input", 0).is_err());
        assert!(d.read_file("input").is_err());
        // All-corrupt chunks are not quarantined: there is no clean
        // replica to keep, and the read path already fails fast.
        assert!(d.quarantine_corrupt_replicas("input", 0).is_empty());
        assert_eq!(d.live_replicas("input", 0).unwrap(), 3);
    }

    #[test]
    fn verification_off_serves_without_checking() {
        let mut d = dfs();
        let data = records(20);
        d.write_file("input", data.clone());
        d.set_corruption(CorruptionPlan::new(1).chunks(1.0).without_verification());
        // Undetected by construction: reads pass, integrity reports are
        // empty. The analyzer warns about this configuration (EF018).
        assert_eq!(d.read_file("input").unwrap(), data);
        assert!(d.corrupt_replicas("input", 0).is_empty());
    }
}
