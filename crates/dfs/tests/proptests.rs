//! Property-based tests for the DFS: chunking must preserve content and
//! order, respect size bounds, and place valid replicas for any input.

use efind_cluster::Cluster;
use efind_common::{Datum, Record};
use efind_dfs::{Dfs, DfsConfig};
use proptest::prelude::*;

fn arb_records() -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(
        (any::<i64>(), proptest::collection::vec(any::<u8>(), 0..120)),
        0..150,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .map(|(k, payload)| Record::new(k, Datum::Bytes(payload)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_read_roundtrip(records in arb_records(), chunk_kb in 1u64..8, replication in 1usize..5) {
        let cluster = Cluster::builder().nodes(4).build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: chunk_kb * 256,
                replication,
                seed: 1,
            },
        );
        let meta = dfs.write_file("f", records.clone());
        prop_assert_eq!(dfs.read_file("f").unwrap(), records.clone());
        prop_assert_eq!(meta.total_records(), records.len());

        // Chunk-by-chunk reads concatenate to the file.
        let mut joined = Vec::new();
        for c in &meta.chunks {
            prop_assert!(!c.hosts.is_empty());
            prop_assert!(c.hosts.len() <= replication.min(4));
            let mut hosts = c.hosts.clone();
            hosts.sort();
            hosts.dedup();
            prop_assert_eq!(hosts.len(), c.hosts.len(), "duplicate replicas");
            joined.extend(dfs.read_chunk("f", c.index).unwrap().iter().cloned());
        }
        prop_assert_eq!(joined, records);
    }

    #[test]
    fn chunk_sizes_respect_the_limit(records in arb_records()) {
        let limit = 1024u64;
        let cluster = Cluster::builder().nodes(3).build();
        let mut dfs = Dfs::new(
            cluster,
            DfsConfig {
                chunk_size_bytes: limit,
                replication: 2,
                seed: 9,
            },
        );
        let meta = dfs.write_file("f", records.clone());
        for c in &meta.chunks {
            // A chunk may exceed the limit only by a single record (a
            // record is never split).
            if c.records > 1 {
                prop_assert!(c.bytes <= limit + 200, "chunk {} bytes", c.bytes);
            }
        }
    }

    #[test]
    fn target_chunk_counts_are_roughly_honored(records in arb_records(), target in 1usize..20) {
        prop_assume!(records.len() >= target);
        let cluster = Cluster::builder().nodes(3).build();
        let mut dfs = Dfs::new(cluster, DfsConfig::default());
        let meta = dfs.write_file_with_chunks("f", records.clone(), target);
        // Equal-size records split near the target; arbitrary ones within 2×.
        prop_assert!(meta.chunks.len() <= target * 2 + 1);
        prop_assert_eq!(dfs.read_file("f").unwrap(), records);
    }
}
