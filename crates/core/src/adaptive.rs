//! Adaptive optimization (§4, Algorithm 1, Figs. 9–10).
//!
//! `Dynamic` mode starts a job with the baseline plan and no statistics.
//! When the first map wave completes (one task per map slot — the natural
//! statistics checkpoint the paper exploits), the runtime:
//!
//! 1. gates on cross-task variance of the collected statistics
//!    (Algorithm 1 lines 1–3),
//! 2. extracts operator statistics from the wave's counters and FM
//!    sketches, scaled to the remaining input,
//! 3. re-optimizes the map-side operators (line 5–6: operators at the
//!    reduce phase are ignored because their statistics do not exist yet),
//! 4. switches plans only if the predicted improvement exceeds the
//!    plan-change overhead (line 10).
//!
//! On a plan change, the completed wave's map outputs are *reused*: the
//! remaining input splits flow through the new plan's job chain, and the
//! final job's reduce consumes both the new plan's map outputs and the
//! wave-1 outputs — exactly the merge of Fig. 10(a). The plan changes at
//! most once per job.

use efind_cluster::{SimDuration, SimTime};
use efind_common::{Error, FxHashMap, Result};
use efind_mapreduce::{
    Counters, JobStats, PartitionLog, PhaseStats, RecoveryLog, Runner, Sketches, TaskStats,
};

use crate::compile::compile_pipeline;
use crate::cost::cost_baseline;
use crate::jobconf::IndexJobConf;
use crate::plan::{forced_plan, optimize_operator, OperatorPlan, Strategy};
use crate::runtime::{EFindJobResult, EFindRuntime};
use crate::statsx::{extract_operator_stats, variance_ok};

/// A runner carrying the runtime's node-crash and corruption plans, so
/// every adaptive sub-step (wave execution, scheduling, re-planned
/// sub-jobs) sees the same planned crashes and byte flips as a plain
/// `run_with_plans` execution.
fn runner<'r>(rt: &'r mut EFindRuntime<'_>) -> Runner<'r> {
    Runner::with_chaos(rt.cluster, rt.dfs, rt.config.chaos.clone())
        .with_corruption(rt.config.corruption.clone())
}

/// Applies every planned crash at or before `upto` to the DFS and records
/// it in `log`. `Dfs::crash_node` is idempotent, so crashes a sub-job's
/// runner already applied are no-ops here (and re-replication of an
/// already-healed chunk moves zero bytes).
fn apply_chaos_to_dfs(rt: &mut EFindRuntime<'_>, upto: SimTime, log: &mut RecoveryLog) {
    if rt.config.chaos.is_quiet() {
        return;
    }
    for e in rt.config.chaos.events().to_vec() {
        if e.at <= upto && !rt.dfs.is_dead(e.node) {
            log.crashes.push(e);
            rt.dfs.crash_node(e.node);
            let rep = rt.dfs.re_replicate();
            log.rereplicated_chunks += rep.chunks;
            log.rereplicated_bytes += rep.bytes;
            log.rereplication_time += rep.duration;
        }
    }
}

/// Computes warm-start plans from the attached store's measured history.
///
/// Returns `None` — meaning "run the full adaptive protocol" — when no
/// store is attached, the store is empty, or any indexed, non-volatile
/// operator lacks a matching fingerprint. Volatile and index-less
/// operators take the baseline plan (as every mode forces), and an
/// operator whose history shows a failing index is pinned to baseline by
/// the same degradation gate the mid-job pass applies.
fn warm_start_plans(
    rt: &EFindRuntime<'_>,
    ijob: &IndexJobConf,
) -> Option<(
    FxHashMap<String, OperatorPlan>,
    Vec<crate::statstore::MeasuredOp>,
)> {
    let store = rt.store.as_ref()?;
    if store.is_empty() {
        return None;
    }
    let env = rt.cost_env();
    let degrade = rt.config.faults.degrade_threshold();
    let mut plans = FxHashMap::default();
    let mut measured = Vec::new();
    for (bound, placement) in ijob.operators() {
        let name = bound.op.name().to_owned();
        if bound.volatile || bound.indices.is_empty() {
            plans.insert(name, forced_plan(&bound.caps(), Strategy::Baseline));
            continue;
        }
        let (shape, mut stats) = rt.measured_for(bound, placement)?;
        // Partition-scheme availability is structural — refresh it from
        // the bound accessors, as every planning path does.
        for (j, (_, scheme)) in bound.caps().iter().enumerate() {
            if let Some(idx) = stats.indices.get_mut(j) {
                idx.has_partition_scheme = *scheme;
            }
        }
        if stats.indices.iter().any(|i| i.failure_rate > degrade) {
            plans.insert(name, forced_plan(&bound.caps(), Strategy::Baseline));
            continue;
        }
        let plan = optimize_operator(&stats, &env, placement, rt.config.enumeration);
        measured.push(crate::statstore::MeasuredOp::probe(
            &name, shape, &stats, &env, placement,
        ));
        plans.insert(name, plan);
    }
    Some((plans, measured))
}

/// Runs an enhanced job in dynamic (adaptive) mode.
pub(crate) fn run_dynamic(
    rt: &mut EFindRuntime<'_>,
    ijob: &IndexJobConf,
) -> Result<EFindJobResult> {
    let baseline_plans: FxHashMap<String, OperatorPlan> = ijob
        .operators()
        .map(|(b, _)| {
            (
                b.op.name().to_owned(),
                forced_plan(&b.caps(), Strategy::Baseline),
            )
        })
        .collect();

    // Without any operators there is nothing to re-plan at all; run the
    // baseline plan statically (statistics still collected). Jobs with
    // only tail operators still flow through the main path so the
    // reduce-phase branch of Algorithm 1 gets its chance.
    if ijob.head.is_empty() && ijob.body.is_empty() && ijob.tail.is_empty() {
        return rt.run_with_plans(ijob, baseline_plans, false);
    }

    // A mid-job plan change reuses the completed wave's outputs, which is
    // only sound when every lookup is a pure function of its key (§3.2).
    // A non-deterministic accessor (EF012, warned at compile time) thus
    // statically disables adaptive re-optimization: the job runs its
    // baseline plan end to end.
    if crate::analysis::has_nondeterministic_accessor(ijob) {
        return rt.run_with_plans(ijob, baseline_plans, false);
    }

    // Warm start from the cross-job store: when *every* indexed,
    // non-volatile operator has measured history for its fingerprint, the
    // winning plans are computed up front and the job runs statically —
    // no statistics wave, no mid-job replan. Any missing fingerprint
    // falls through to the full adaptive run below (a partial warm start
    // would skip the statistics wave the cold operators still need).
    if let Some((plans, measured)) = warm_start_plans(rt, ijob) {
        return rt.run_with_plans_measured(ijob, plans, false, measured);
    }

    let compiled = compile_pipeline(ijob, &baseline_plans, &rt.runtime_env())?;
    debug_assert_eq!(
        compiled.jobs.len(),
        1,
        "the baseline plan never inserts shuffle jobs"
    );
    let conf = compiled
        .jobs
        .into_iter()
        .next()
        .ok_or_else(|| Error::Internal("empty compiled pipeline".into()))?;

    let chunks = runner(rt).chunks(&conf)?;
    // When the whole map phase fits one wave there is no map-side
    // remainder to re-plan (remaining_in = 0 disables that branch), but
    // the reduce-phase branch below still applies.
    let wave_n = runner(rt).first_wave_count(chunks.len()).min(chunks.len());

    // ---- Wave 1 under the baseline plan (real execution). ----
    let mut exec1 = runner(rt).execute_maps(&conf, &chunks[..wave_n], 0)?;
    let mut wave_counters = Counters::new();
    let mut wave_sketches = Sketches::new();
    for t in &exec1.tasks {
        wave_counters.merge(&t.stats.counters);
        wave_sketches.merge(&t.stats.sketches);
    }
    let task_refs: Vec<&TaskStats> = exec1.tasks.iter().map(|t| &t.stats).collect();

    // ---- Algorithm 1: re-optimize map-side operators. ----
    let env = rt.cost_env();
    let wave_in: u64 = exec1.tasks.iter().map(|t| t.stats.input_records).sum();
    let total_in: u64 = chunks.iter().map(|c| c.records as u64).sum();
    let remaining_in = total_in.saturating_sub(wave_in);

    let mut new_plans = baseline_plans.clone();
    let mut predicted_gain = 0.0f64;
    if wave_in > 0 && remaining_in > 0 {
        for (bound, placement) in ijob
            .head
            .iter()
            .map(|b| (b, crate::cost::Placement::Head))
            .chain(ijob.body.iter().map(|b| (b, crate::cost::Placement::Body)))
        {
            if bound.volatile {
                continue; // §3.2: non-idempotent lookups stay baseline
            }
            let desc = bound.descriptor();
            if !variance_ok(&task_refs, &desc, rt.config.variance_threshold) {
                continue;
            }
            let Some(mut stats) = extract_operator_stats(&wave_counters, &wave_sketches, &desc)
            else {
                continue;
            };
            // Graceful degradation: when wave-1 counters show an index
            // failing or timing out beyond the configured threshold, the
            // operator stays on the baseline plan — committing a shuffle
            // job (or cached reuse) to an index that may be black-holed
            // compounds the damage, and baseline keeps the retry/breaker
            // machinery on the simplest path.
            let degrade = rt.config.faults.degrade_threshold();
            if stats.indices.iter().any(|i| i.failure_rate > degrade) {
                continue;
            }
            // Scale the volume statistic to the remaining input; averages
            // and ratios carry over unchanged.
            stats.n1 *= remaining_in as f64 / wave_in as f64;
            let current: f64 = (0..stats.indices.len())
                .map(|j| cost_baseline(&env, &stats, j))
                .sum();
            let plan = optimize_operator(&stats, &env, placement, rt.config.enumeration);
            if plan.est_cost_secs < current {
                predicted_gain += current - plan.est_cost_secs;
                new_plans.insert(bound.op.name().to_owned(), plan);
            }
        }
    }
    let replan = env.wall_secs(predicted_gain) > rt.config.plan_change_cost_secs;

    if !replan {
        // Continue with the baseline plan map-side: execute the remaining
        // splits. Algorithm 1's else-branch still applies — once the job
        // reaches its reduce phase, the tail operators (whose statistics
        // only exist now) get their own re-optimization chance.
        let exec2 = runner(rt).execute_maps(&conf, &chunks[wave_n..], wave_n)?;
        exec1.tasks.extend(exec2.tasks);
        if let Some(result) = try_reduce_phase_replan(rt, ijob, &conf, &mut exec1, &baseline_plans)?
        {
            return Ok(result);
        }
        let res = runner(rt).finish(&conf, &mut exec1, SimTime::ZERO)?;
        let total_time = res.stats.makespan();
        rt.absorb_stats(ijob, std::slice::from_ref(&res.stats), &baseline_plans);
        return Ok(EFindJobResult {
            output: res.output,
            total_time,
            jobs: vec![res.stats],
            // efind-lint: allow(unordered-iter, map-to-map collect; the destination is keyed and no order survives)
            plans: baseline_plans.into_iter().collect(),
            replanned: false,
        });
    }

    // ---- Plan change (Fig. 10(a)). ----
    // Wave-1 tasks have already run; their elapsed time and outputs are
    // kept. The plan-change overhead models job resubmission.
    let wave_sched = runner(rt).schedule_maps(&exec1, SimTime::ZERO);
    let mut t = wave_sched.makespan + SimDuration::from_secs_f64(rt.config.plan_change_cost_secs);

    // Crash-surviving re-plan: a wave-1 result on a node with a planned
    // death cannot be served to the re-planned job's (much later) reduce —
    // the node-local spill dies with the node. Those tasks are *lost*: the
    // re-plan reuses exactly the surviving results and sends the lost
    // tasks' input splits back through the new plan. The ledger records
    // both sets, so reports (and tests) can check the reuse is exact.
    let mut recovery = RecoveryLog {
        crashed_attempts: wave_sched.crashed_attempts,
        ..RecoveryLog::default()
    };
    let mut lost: Vec<usize> = Vec::new();
    if !rt.config.chaos.is_quiet() {
        for a in &wave_sched.assignments {
            if rt.config.chaos.crash_time(a.node).is_some() {
                lost.push(a.task_id);
            }
        }
        lost.sort_unstable();
        apply_chaos_to_dfs(rt, SimTime::from_nanos(u64::MAX), &mut recovery);
        recovery.lost_tasks = lost.clone();
        recovery.surviving_tasks = wave_sched
            .assignments
            .iter()
            .map(|a| a.task_id)
            .filter(|id| !lost.contains(id))
            .collect();
        recovery.surviving_tasks.sort_unstable();
        exec1.tasks.retain(|x| !lost.contains(&x.task_id));
    }

    // The remaining splits — plus the lost wave-1 splits, which must be
    // re-mapped — become the new plan's input (namespace bookkeeping only:
    // no data moves, so no time is charged). Wave-1 task ids equal their
    // chunk indices, and a read whose last replica died with a node fails
    // with a diagnosable `DataLoss` instead of silently dropping input.
    let remaining_name = format!("{}.remaining", ijob.name);
    let mut remaining_records = Vec::new();
    for id in &lost {
        remaining_records.extend_from_slice(rt.dfs.read_chunk(&conf.input, *id)?);
    }
    for chunk in &chunks[wave_n..] {
        remaining_records.extend_from_slice(rt.dfs.read_chunk(&conf.input, chunk.index)?);
    }
    rt.dfs.write_file_with_chunks(
        &remaining_name,
        remaining_records,
        chunks.len() - wave_n + lost.len(),
    );

    let mut ijob2 = ijob.clone();
    ijob2.name = format!("{}-replan", ijob.name);
    ijob2.input = remaining_name.clone();
    debug_assert!(
        crate::analysis::passes(&ijob2, &new_plans),
        "adaptive map-side replan produced an analyzer-rejected plan"
    );
    let compiled2 = compile_pipeline(&ijob2, &new_plans, &rt.runtime_env())?;

    let mut job_stats: Vec<JobStats> = Vec::new();
    let n_jobs = compiled2.jobs.len();
    for conf2 in &compiled2.jobs[..n_jobs - 1] {
        let res = runner(rt).run(conf2, t)?;
        t = res.stats.finished;
        job_stats.push(res.stats);
    }

    let last = &compiled2.jobs[n_jobs - 1];
    let (output, total_end) = if last.has_reduce() {
        let lchunks = runner(rt).chunks(last)?;
        let mut lexec = runner(rt).execute_maps(last, &lchunks, 0)?;
        let lsched = runner(rt).schedule_maps(&lexec, t);
        let map_end = lsched.makespan;
        // Merge: new-plan map outputs plus the reused wave-1 outputs.
        let mut sources = lexec.take_outputs();
        sources.extend(exec1.take_outputs());
        let outcome = runner(rt).run_reduce_from(last, sources, map_end)?;
        let end = outcome.phase.schedule.makespan.max(map_end);

        let mut counters = Counters::new();
        let mut sketches = Sketches::new();
        for ts in lexec
            .tasks
            .iter()
            .map(|x| &x.stats)
            .chain(outcome.phase.tasks.iter())
        {
            counters.merge(&ts.counters);
            sketches.merge(&ts.sketches);
        }
        recovery.crashed_attempts +=
            lsched.crashed_attempts + outcome.phase.schedule.crashed_attempts;
        let mut integrity = runner(rt).integrity_sweep(last);
        integrity.shuffle_refetches = outcome.shuffle_refetches;
        integrity.shuffle_refetch_time = outcome.shuffle_refetch_time;
        integrity.collect_lookup_counters(&counters);
        recovery.add_counters(&mut counters);
        integrity.add_counters(&mut counters);
        let output_bytes = outcome.output.total_bytes();
        job_stats.push(JobStats {
            name: last.name.clone(),
            started: t,
            finished: end,
            map: PhaseStats {
                tasks: lexec.tasks.iter().map(|x| x.stats.clone()).collect(),
                schedule: lsched,
            },
            reduce: Some(outcome.phase),
            counters,
            sketches,
            shuffle_bytes: outcome.shuffle_bytes,
            output_bytes,
            recovery: std::mem::take(&mut recovery),
            integrity,
            partition: PartitionLog::default(),
        });
        (outcome.output, end)
    } else {
        // Map-only enhanced job: append the reused wave-1 outputs to the
        // new plan's output.
        let mut res = runner(rt).run(last, t)?;
        // The sub-job carries its own window's ledger; graft the re-plan's
        // reuse decision onto it so `result.jobs` tells the whole story.
        if !recovery.surviving_tasks.is_empty() {
            res.stats.counters.add(
                "mr.recovery.reused.tasks",
                recovery.surviving_tasks.len() as i64,
            );
        }
        res.stats.recovery.surviving_tasks = std::mem::take(&mut recovery.surviving_tasks);
        res.stats.recovery.lost_tasks = std::mem::take(&mut recovery.lost_tasks);
        let end = res.stats.finished;
        job_stats.push(res.stats);
        let mut all: Vec<_> = exec1.take_outputs().into_iter().flatten().collect();
        all.extend(rt.dfs.read_file(&ijob.output)?);
        let output = rt.dfs.write_file(&ijob.output, all);
        (output, end)
    };

    if !rt.config.keep_intermediates {
        for tmp in &compiled2.temp_files {
            rt.dfs.delete(tmp);
        }
        rt.dfs.delete(&remaining_name);
    }

    // Catalog and store: wave-1 statistics plus everything the new plan
    // collected, recorded under the plans that actually executed.
    let mut counters = wave_counters;
    let mut sketches = wave_sketches;
    for j in &job_stats {
        counters.merge(&j.counters);
        sketches.merge(&j.sketches);
    }
    rt.record_observations(ijob, &counters, &sketches, &new_plans);

    Ok(EFindJobResult {
        output,
        total_time: total_end.since(SimTime::ZERO),
        jobs: job_stats,
        plans: new_plans.into_iter().collect(),
        replanned: true,
    })
}

/// Fig. 10(b) / Algorithm 1's reduce-phase branch: when the final job's
/// reduce runs in multiple waves and the tail operators (running baseline
/// inside `reduce_post`) turn out to be worth a shuffle strategy, the
/// completed wave's outputs move to the job output, the remaining reduce
/// tasks run *without* the tail chains, and a re-planned tail pipeline
/// processes their outputs. Returns `None` when the preconditions do not
/// hold or the gain does not cover the plan-change cost.
fn try_reduce_phase_replan(
    rt: &mut EFindRuntime<'_>,
    ijob: &IndexJobConf,
    conf: &efind_mapreduce::JobConf,
    exec: &mut efind_mapreduce::MapPhaseExec,
    baseline_plans: &FxHashMap<String, OperatorPlan>,
) -> Result<Option<EFindJobResult>> {
    let reduce_slots = rt.cluster.total_reduce_slots();
    if ijob.tail.is_empty() || !conf.has_reduce() || conf.num_reducers <= reduce_slots {
        // The caller's normal finish path still owns the map outputs.
        return Ok(None);
    }

    // Map phase timeline and shuffle partitioning.
    let map_schedule = runner(rt).schedule_maps(exec, SimTime::ZERO);
    let map_end = map_schedule.makespan;
    let sources = exec.take_outputs();
    let (partitions, shuffle_bytes) = runner(rt).partition_for_reduce(conf, sources);

    // ---- Reduce wave 1 under the current (tail-baseline) plan. ----
    let wave_refs: Vec<(usize, &[efind_common::Record])> = partitions[..reduce_slots]
        .iter()
        .enumerate()
        .map(|(i, p)| (i, p.as_slice()))
        .collect();
    let wave1 = runner(rt).execute_reduce_partitions(conf, &wave_refs)?;
    let wave_specs: Vec<_> = wave1.iter().map(|t| t.spec.clone()).collect();
    let wave_schedule = efind_cluster::sched::schedule_phase_chaos(
        rt.cluster,
        &wave_specs,
        map_end,
        &rt.config.chaos,
    );
    let wave_end = wave_schedule.makespan;

    // ---- Re-optimize the tail operators from wave-1 statistics. ----
    let mut wave_counters = Counters::new();
    let mut wave_sketches = Sketches::new();
    for t in &wave1 {
        wave_counters.merge(&t.stats.counters);
        wave_sketches.merge(&t.stats.sketches);
    }
    let task_stats: Vec<&TaskStats> = wave1.iter().map(|t| &t.stats).collect();
    let wave_in: u64 = wave1.iter().map(|t| t.stats.input_records).sum();
    let remaining_in: u64 = partitions[reduce_slots..]
        .iter()
        .map(|p| p.len() as u64)
        .sum();

    let mut change = false;
    let mut tail_plans: FxHashMap<String, OperatorPlan> = FxHashMap::default();
    if wave_in > 0 && remaining_in > 0 {
        let env = rt.cost_env();
        let mut predicted_gain = 0.0f64;
        for bound in &ijob.tail {
            // Operators skipped by a gate stay on the baseline plan — but
            // the compiled tail pipeline still needs a plan entry for them.
            let fallback = || forced_plan(&bound.caps(), Strategy::Baseline);
            if bound.volatile {
                // §3.2: non-idempotent lookups stay baseline
                tail_plans.insert(bound.op.name().to_owned(), fallback());
                continue;
            }
            let desc = bound.descriptor();
            if !variance_ok(&task_stats, &desc, rt.config.variance_threshold) {
                tail_plans.insert(bound.op.name().to_owned(), fallback());
                continue;
            }
            let Some(mut stats) = extract_operator_stats(&wave_counters, &wave_sketches, &desc)
            else {
                tail_plans.insert(bound.op.name().to_owned(), fallback());
                continue;
            };
            // Same degradation rule as the map-side pass: a failing index
            // keeps its operator on the baseline plan.
            let degrade = rt.config.faults.degrade_threshold();
            if stats.indices.iter().any(|i| i.failure_rate > degrade) {
                tail_plans.insert(bound.op.name().to_owned(), fallback());
                continue;
            }
            stats.n1 *= remaining_in as f64 / wave_in as f64;
            let current: f64 = (0..stats.indices.len())
                .map(|j| cost_baseline(&env, &stats, j))
                .sum();
            let plan = optimize_operator(
                &stats,
                &env,
                crate::cost::Placement::Tail,
                rt.config.enumeration,
            );
            if plan.est_cost_secs < current {
                predicted_gain += current - plan.est_cost_secs;
            }
            tail_plans.insert(bound.op.name().to_owned(), plan);
        }
        // Any beneficial plan (cache or a shuffle strategy) justifies the
        // change: the re-planned tail pipeline runs map-side either way.
        let improved = tail_plans
            .values()
            .any(|p| p.choices.iter().any(|c| c.strategy != Strategy::Baseline));
        change = env.wall_secs(predicted_gain) > rt.config.plan_change_cost_secs && improved;
    }

    if !change {
        // No plan change: the map outputs were already consumed above, so
        // complete the job here — execute the remaining reduce waves under
        // the current plan and assemble an uninterrupted-equivalent run.
        let rest_refs: Vec<(usize, &[efind_common::Record])> = partitions[reduce_slots..]
            .iter()
            .enumerate()
            .map(|(i, p)| (reduce_slots + i, p.as_slice()))
            .collect();
        let rest = runner(rt).execute_reduce_partitions(conf, &rest_refs)?;
        let mut specs: Vec<_> = wave1.iter().map(|t| t.spec.clone()).collect();
        specs.extend(rest.iter().map(|t| t.spec.clone()));
        let reduce_schedule = efind_cluster::sched::schedule_phase_chaos(
            rt.cluster,
            &specs,
            map_end,
            &rt.config.chaos,
        );
        let finished = reduce_schedule.makespan;
        let all_output: Vec<efind_common::Record> = wave1
            .iter()
            .chain(rest.iter())
            .flat_map(|x| x.output.iter().cloned())
            .collect();
        let output = rt.dfs.write_file(&ijob.output, all_output);

        let mut counters = wave_counters;
        let mut sketches = wave_sketches;
        for x in exec
            .tasks
            .iter()
            .map(|x| &x.stats)
            .chain(rest.iter().map(|x| &x.stats))
        {
            counters.merge(&x.counters);
            sketches.merge(&x.sketches);
        }
        rt.record_observations(ijob, &counters, &sketches, baseline_plans);
        let mut recovery = RecoveryLog {
            crashed_attempts: map_schedule.crashed_attempts + reduce_schedule.crashed_attempts,
            ..RecoveryLog::default()
        };
        apply_chaos_to_dfs(rt, finished, &mut recovery);
        let mut integrity = runner(rt).integrity_sweep(conf);
        integrity.collect_lookup_counters(&counters);
        recovery.add_counters(&mut counters);
        integrity.add_counters(&mut counters);
        let mut reduce_tasks: Vec<TaskStats> = wave1.iter().map(|x| x.stats.clone()).collect();
        reduce_tasks.extend(rest.iter().map(|x| x.stats.clone()));
        let output_bytes = output.total_bytes();
        let stats = JobStats {
            name: conf.name.clone(),
            started: SimTime::ZERO,
            finished,
            map: PhaseStats {
                tasks: exec.tasks.iter().map(|x| x.stats.clone()).collect(),
                schedule: map_schedule,
            },
            reduce: Some(PhaseStats {
                tasks: reduce_tasks,
                schedule: reduce_schedule,
            }),
            counters,
            sketches,
            shuffle_bytes,
            output_bytes,
            recovery,
            integrity,
            partition: PartitionLog::default(),
        };
        return Ok(Some(EFindJobResult {
            output,
            total_time: finished.since(SimTime::ZERO),
            jobs: vec![stats],
            plans: baseline_plans.clone().into_iter().collect(),
            replanned: false,
        }));
    }

    // ---- Plan change (Fig. 10(b)). ----
    // Completed wave-1 outputs move straight to the job output; the
    // remaining reduce tasks run without the tail chains.
    let mut stripped = conf.clone();
    stripped.reduce_post = Vec::new();
    let rest_refs: Vec<(usize, &[efind_common::Record])> = partitions[reduce_slots..]
        .iter()
        .enumerate()
        .map(|(i, p)| (reduce_slots + i, p.as_slice()))
        .collect();
    let rest = runner(rt).execute_reduce_partitions(&stripped, &rest_refs)?;
    let rest_specs: Vec<_> = rest.iter().map(|t| t.spec.clone()).collect();
    let rest_start = wave_end + SimDuration::from_secs_f64(rt.config.plan_change_cost_secs);
    let rest_schedule = efind_cluster::sched::schedule_phase_chaos(
        rt.cluster,
        &rest_specs,
        rest_start,
        &rt.config.chaos,
    );
    let mut t = rest_schedule.makespan;

    // The re-planned tail pipeline consumes the stripped outputs.
    let rest_records: Vec<efind_common::Record> =
        rest.iter().flat_map(|x| x.output.iter().cloned()).collect();
    let tmp_in = format!("{}.tail-replan.in", ijob.name);
    rt.dfs
        .write_file_with_chunks(&tmp_in, rest_records, rt.cluster.total_map_slots());
    let tmp_out = format!("{}.tail-replan.out", ijob.name);
    let mut tail_ijob = IndexJobConf::new(format!("{}-tailreplan", ijob.name), &tmp_in, &tmp_out);
    tail_ijob.head = ijob.tail.clone();
    tail_ijob.cpu_per_record = ijob.cpu_per_record;
    debug_assert!(
        crate::analysis::passes(&tail_ijob, &tail_plans),
        "adaptive reduce-phase replan produced an analyzer-rejected plan"
    );
    let compiled = compile_pipeline(&tail_ijob, &tail_plans, &rt.runtime_env())?;
    let mut job_stats: Vec<JobStats> = Vec::new();
    for tconf in &compiled.jobs {
        let res = runner(rt).run(tconf, t)?;
        t = res.stats.finished;
        job_stats.push(res.stats);
    }

    // Merge: completed wave-1 outputs + the tail pipeline's outputs.
    let mut final_records: Vec<efind_common::Record> = wave1
        .iter()
        .flat_map(|x| x.output.iter().cloned())
        .collect();
    final_records.extend(rt.dfs.read_file(&tmp_out)?);
    let output = rt.dfs.write_file(&ijob.output, final_records);
    if !rt.config.keep_intermediates {
        rt.dfs.delete(&tmp_in);
        rt.dfs.delete(&tmp_out);
        for tmp in &compiled.temp_files {
            rt.dfs.delete(tmp);
        }
    }

    // Assemble stats: the split reduce phases plus the tail jobs. The
    // first JobStats carries only its own tasks' counters — the tail
    // jobs are appended as separate entries, so merging theirs here
    // would double-count for anyone summing over `result.jobs`.
    let mut counters = wave_counters;
    let mut sketches = wave_sketches;
    for x in exec
        .tasks
        .iter()
        .map(|x| &x.stats)
        .chain(rest.iter().map(|x| &x.stats))
    {
        counters.merge(&x.counters);
        sketches.merge(&x.sketches);
    }
    let mut absorb_counters = counters.clone();
    let mut absorb_sketches = sketches.clone();
    for j in &job_stats {
        absorb_counters.merge(&j.counters);
        absorb_sketches.merge(&j.sketches);
    }
    // Head/body operators executed under the baseline plans; the tail
    // operators under their re-planned strategies.
    let mut final_plans = baseline_plans.clone();
    // efind-lint: allow(unordered-iter, map-to-map merge; the destination is keyed and no order survives)
    final_plans.extend(tail_plans.iter().map(|(k, v)| (k.clone(), v.clone())));
    rt.record_observations(ijob, &absorb_counters, &absorb_sketches, &final_plans);

    let mut reduce_tasks: Vec<TaskStats> = wave1.iter().map(|x| x.stats.clone()).collect();
    reduce_tasks.extend(rest.iter().map(|x| x.stats.clone()));
    let mut reduce_schedule = wave_schedule;
    reduce_schedule
        .assignments
        .extend(rest_schedule.assignments);
    reduce_schedule.makespan = reduce_schedule.makespan.max(rest_schedule.makespan);
    let mut recovery = RecoveryLog {
        crashed_attempts: map_schedule.crashed_attempts + reduce_schedule.crashed_attempts,
        ..RecoveryLog::default()
    };
    apply_chaos_to_dfs(rt, reduce_schedule.makespan, &mut recovery);
    let mut integrity = runner(rt).integrity_sweep(conf);
    integrity.collect_lookup_counters(&counters);
    recovery.add_counters(&mut counters);
    integrity.add_counters(&mut counters);
    let output_bytes = output.total_bytes();
    let mut jobs = vec![JobStats {
        name: conf.name.clone(),
        started: SimTime::ZERO,
        finished: reduce_schedule.makespan,
        map: PhaseStats {
            tasks: exec.tasks.iter().map(|x| x.stats.clone()).collect(),
            schedule: map_schedule,
        },
        reduce: Some(PhaseStats {
            tasks: reduce_tasks,
            schedule: reduce_schedule,
        }),
        counters,
        sketches,
        shuffle_bytes,
        output_bytes,
        recovery,
        integrity,
        partition: PartitionLog::default(),
    }];
    jobs.extend(job_stats);

    Ok(Some(EFindJobResult {
        output,
        total_time: t.since(SimTime::ZERO),
        jobs,
        // efind-lint: allow(unordered-iter, map-to-map collect; the destination is keyed and no order survives)
        plans: tail_plans.into_iter().collect(),
        replanned: true,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accessor::testutil::MemIndex;
    use crate::jobconf::BoundOperator;
    use crate::operator::{operator_fn, IndexInput, IndexOutput};
    use crate::runtime::{EFindConfig, Mode};
    use efind_cluster::Cluster;
    use efind_common::{Datum, Record};
    use efind_dfs::{Dfs, DfsConfig};
    use efind_mapreduce::{mapper_fn, reducer_fn, Collector};
    use std::sync::Arc;

    /// A workload with heavy global key duplication and an expensive
    /// index, so the optimizer should switch to re-partitioning.
    fn setup(n: i64, distinct: i64, serve_ms: u64) -> (Cluster, Dfs, IndexJobConf) {
        let cluster = Cluster::builder()
            .nodes(2)
            .map_slots(2)
            .reduce_slots(2)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 2048,
                replication: 2,
                seed: 11,
            },
        );
        let records: Vec<Record> = (0..n)
            .map(|i| Record::new(i, Datum::Int((i * 7919) % distinct)))
            .collect();
        dfs.write_file("in", records);

        let mut index = MemIndex::new(
            "vals",
            (0..distinct)
                .map(|i| (Datum::Int(i), vec![Datum::Bytes(vec![7u8; 256])]))
                .collect(),
        );
        index.serve = SimDuration::from_millis(serve_ms);
        let op = operator_fn(
            "join",
            1,
            |rec: &mut Record, keys: &mut IndexInput| keys.put(0, rec.value.clone()),
            |rec: Record, values: &IndexOutput, out: &mut dyn Collector| {
                let hit = !values.first(0).is_empty();
                out.collect(Record::new(rec.value, i64::from(hit)));
            },
        );
        let ijob = IndexJobConf::new("dyn", "in", "out")
            .add_head_index_operator(BoundOperator::new(op).add_index(Arc::new(index)))
            .set_mapper(mapper_fn(|rec, out, _| out.collect(rec)))
            .set_reducer(
                reducer_fn(|key, values, out, _| {
                    out.collect(Record::new(key, values.len() as i64));
                }),
                2,
            );
        (cluster, dfs, ijob)
    }

    fn cheap_change_config() -> EFindConfig {
        EFindConfig {
            plan_change_cost_secs: 0.01,
            variance_threshold: 5.0,
            ..EFindConfig::default()
        }
    }

    #[test]
    fn dynamic_replans_under_heavy_duplication() {
        let (cluster, mut dfs, ijob) = setup(2000, 10, 5);
        let mut rt = EFindRuntime::with_config(&cluster, &mut dfs, cheap_change_config());
        let res = rt.run(&ijob, Mode::Dynamic).unwrap();
        assert!(res.replanned, "expected a plan change");
        let plan = &res.plans.iter().find(|(n, _)| n == "join").unwrap().1;
        assert!(plan.has_shuffle(), "expected a shuffle strategy: {plan:?}");
    }

    #[test]
    fn dynamic_output_matches_baseline_after_replan() {
        let (cluster, mut dfs, ijob) = setup(2000, 10, 5);
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        rt.run(&ijob, Mode::Uniform(Strategy::Baseline)).unwrap();
        let mut expected = rt.dfs.read_file("out").unwrap();
        expected.sort();

        let (cluster2, mut dfs2, ijob2) = setup(2000, 10, 5);
        let mut rt2 = EFindRuntime::with_config(&cluster2, &mut dfs2, cheap_change_config());
        let res = rt2.run(&ijob2, Mode::Dynamic).unwrap();
        assert!(res.replanned);
        let mut got = rt2.dfs.read_file("out").unwrap();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn dynamic_beats_pure_baseline_when_replanning() {
        let (cluster, mut dfs, ijob) = setup(2000, 10, 5);
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        let base = rt.run(&ijob, Mode::Uniform(Strategy::Baseline)).unwrap();

        let (cluster2, mut dfs2, ijob2) = setup(2000, 10, 5);
        let mut rt2 = EFindRuntime::with_config(&cluster2, &mut dfs2, cheap_change_config());
        let dynamic = rt2.run(&ijob2, Mode::Dynamic).unwrap();
        assert!(
            dynamic.total_time < base.total_time,
            "dynamic {} vs baseline {}",
            dynamic.total_time,
            base.total_time
        );
    }

    #[test]
    fn dynamic_keeps_baseline_when_change_is_expensive() {
        let (cluster, mut dfs, ijob) = setup(2000, 10, 5);
        let config = EFindConfig {
            plan_change_cost_secs: 1.0e9, // prohibitive
            ..EFindConfig::default()
        };
        let mut rt = EFindRuntime::with_config(&cluster, &mut dfs, config);
        let res = rt.run(&ijob, Mode::Dynamic).unwrap();
        assert!(!res.replanned);
    }

    #[test]
    fn dynamic_keeps_baseline_when_no_redundancy() {
        // Unique keys, tiny serve time: baseline is already optimal.
        let (cluster, mut dfs, ijob) = setup(500, 1_000_000, 0);
        let mut rt = EFindRuntime::with_config(&cluster, &mut dfs, cheap_change_config());
        let res = rt.run(&ijob, Mode::Dynamic).unwrap();
        assert!(!res.replanned);
    }

    /// A job whose only expensive index is a *tail* operator with heavy
    /// global key duplication: the map-side pass finds nothing to re-plan,
    /// and the reduce-phase branch of Algorithm 1 must fire instead.
    fn tail_heavy_setup(n: i64) -> (Cluster, Dfs, IndexJobConf) {
        let cluster = Cluster::builder()
            .nodes(2)
            .map_slots(2)
            .reduce_slots(1)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 2048,
                replication: 2,
                seed: 13,
            },
        );
        let records: Vec<Record> = (0..n)
            .map(|i| Record::new(i, Datum::Int((i * 31) % 500)))
            .collect();
        dfs.write_file("in", records);

        let mut index = MemIndex::new(
            "enrichment",
            (0..8i64)
                .map(|i| (Datum::Int(i), vec![Datum::Text(format!("e{i}"))]))
                .collect(),
        );
        index.serve = SimDuration::from_millis(5);
        let tail_op = operator_fn(
            "tail-enrich",
            1,
            |rec: &mut Record, keys: &mut IndexInput| {
                // Only 8 distinct keys over all reduce outputs → Θ is huge.
                keys.put(0, rec.key.as_int().unwrap_or(0) % 8);
            },
            |rec: Record, values: &IndexOutput, out: &mut dyn Collector| {
                let v = values.first(0).first().cloned().unwrap_or(Datum::Null);
                out.collect(Record {
                    key: rec.key,
                    value: Datum::List(vec![rec.value, v]),
                });
            },
        );
        // A trivially cheap head operator keeps the map-side branch alive
        // but unprofitable.
        let head_op = operator_fn(
            "cheap-head",
            1,
            |rec: &mut Record, keys: &mut IndexInput| keys.put(0, rec.key.clone()),
            |rec: Record, _values: &IndexOutput, out: &mut dyn Collector| out.collect(rec),
        );
        let cheap = MemIndex::new("noop", vec![]);
        let ijob = IndexJobConf::new("tailjob", "in", "out")
            .add_head_index_operator(BoundOperator::new(head_op).add_index(Arc::new(cheap)))
            .set_mapper(mapper_fn(|rec, out, _| out.collect(rec)))
            .set_reducer(
                reducer_fn(|key, values, out, _| {
                    out.collect(Record::new(key, values.len() as i64));
                }),
                // More reducers than the 2 reduce slots → multiple waves.
                6,
            )
            .add_tail_index_operator(BoundOperator::new(tail_op).add_index(Arc::new(index)));
        (cluster, dfs, ijob)
    }

    #[test]
    fn reduce_phase_replan_fires_for_expensive_tail_ops() {
        let (cluster, mut dfs, ijob) = tail_heavy_setup(3000);
        let mut rt = EFindRuntime::with_config(&cluster, &mut dfs, cheap_change_config());
        let res = rt.run(&ijob, Mode::Dynamic).unwrap();
        assert!(
            res.replanned,
            "tail operator should trigger a reduce-phase plan change"
        );
        let plan = &res
            .plans
            .iter()
            .find(|(n, _)| n == "tail-enrich")
            .unwrap()
            .1;
        assert!(
            plan.choices
                .iter()
                .all(|c| c.strategy != Strategy::Baseline),
            "the re-planned tail must leave the baseline: {plan:?}"
        );
    }

    #[test]
    fn reduce_phase_replan_preserves_output() {
        let (cluster, mut dfs, ijob) = tail_heavy_setup(3000);
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        rt.run(&ijob, Mode::Uniform(Strategy::Baseline)).unwrap();
        let mut expected = rt.dfs.read_file("out").unwrap();
        expected.sort();

        let (cluster2, mut dfs2, ijob2) = tail_heavy_setup(3000);
        let mut rt2 = EFindRuntime::with_config(&cluster2, &mut dfs2, cheap_change_config());
        let res = rt2.run(&ijob2, Mode::Dynamic).unwrap();
        assert!(res.replanned);
        let mut got = rt2.dfs.read_file("out").unwrap();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn reduce_phase_replan_beats_tail_baseline() {
        let (cluster, mut dfs, ijob) = tail_heavy_setup(3000);
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        let base = rt.run(&ijob, Mode::Uniform(Strategy::Baseline)).unwrap();

        let (cluster2, mut dfs2, ijob2) = tail_heavy_setup(3000);
        let mut rt2 = EFindRuntime::with_config(&cluster2, &mut dfs2, cheap_change_config());
        let dynamic = rt2.run(&ijob2, Mode::Dynamic).unwrap();
        assert!(
            dynamic.total_time < base.total_time,
            "dynamic {} vs baseline {}",
            dynamic.total_time,
            base.total_time
        );
    }

    #[test]
    fn tail_no_change_path_preserves_all_output() {
        // Regression: when the reduce-phase branch evaluates a change and
        // declines (cheap tail lookups), the job must still produce the
        // complete output — the map outputs were already consumed by the
        // wave split and must not be lost.
        let (cluster, mut dfs, mut ijob) = tail_heavy_setup(2500);
        // Make the tail index too cheap to justify any plan change.
        let cheap = MemIndex::new(
            "enrichment",
            (0..8i64)
                .map(|i| (Datum::Int(i), vec![Datum::Text(format!("e{i}"))]))
                .collect(),
        );
        ijob.tail[0].indices[0] = Arc::new(cheap);

        let mut rt1 = EFindRuntime::new(&cluster, &mut dfs);
        rt1.run(&ijob, Mode::Uniform(Strategy::Baseline)).unwrap();
        let mut expected = rt1.dfs.read_file("out").unwrap();
        expected.sort();
        assert!(!expected.is_empty());

        let (cluster2, mut dfs2, mut ijob2) = tail_heavy_setup(2500);
        let cheap2 = MemIndex::new(
            "enrichment",
            (0..8i64)
                .map(|i| (Datum::Int(i), vec![Datum::Text(format!("e{i}"))]))
                .collect(),
        );
        ijob2.tail[0].indices[0] = Arc::new(cheap2);
        let mut rt2 = EFindRuntime::with_config(&cluster2, &mut dfs2, cheap_change_config());
        let res = rt2.run(&ijob2, Mode::Dynamic).unwrap();
        let mut got = rt2.dfs.read_file("out").unwrap();
        got.sort();
        assert_eq!(
            got.len(),
            expected.len(),
            "output lost on the no-change path"
        );
        assert_eq!(got, expected);
        let _ = res.replanned; // either decision is fine; output must match
    }

    #[test]
    fn no_reduce_phase_replan_when_reducers_fit_one_wave() {
        let (cluster, mut dfs, mut ijob) = tail_heavy_setup(2000);
        ijob.num_reducers = 2; // fits the 2 reduce slots → single wave
        let mut rt = EFindRuntime::with_config(&cluster, &mut dfs, cheap_change_config());
        let res = rt.run(&ijob, Mode::Dynamic).unwrap();
        assert!(!res.replanned);
    }

    /// Wraps an accessor and declares its lookups non-deterministic.
    struct NonDetIndex(MemIndex);

    impl crate::accessor::IndexAccessor for NonDetIndex {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn lookup(&self, key: &Datum) -> Vec<Datum> {
            self.0.lookup(key)
        }
        fn serve_time(&self, key: &Datum, result_bytes: u64) -> SimDuration {
            self.0.serve_time(key, result_bytes)
        }
        fn partition_scheme(&self) -> Option<Arc<dyn crate::accessor::PartitionScheme>> {
            self.0.partition_scheme()
        }
        fn deterministic(&self) -> bool {
            false
        }
    }

    #[test]
    fn non_deterministic_accessor_disables_result_reuse() {
        // The identical workload replans in
        // `dynamic_replans_under_heavy_duplication`; the only difference
        // here is the accessor declaring itself non-deterministic, which
        // must statically disable the adaptive path (EF012).
        let (cluster, mut dfs, mut ijob) = setup(2000, 10, 5);
        let mut index = MemIndex::new(
            "vals",
            (0..10i64)
                .map(|i| (Datum::Int(i), vec![Datum::Bytes(vec![7u8; 256])]))
                .collect(),
        );
        index.serve = SimDuration::from_millis(5);
        ijob.head[0].indices[0] = Arc::new(NonDetIndex(index));
        let mut rt = EFindRuntime::with_config(&cluster, &mut dfs, cheap_change_config());
        let res = rt.run(&ijob, Mode::Dynamic).unwrap();
        assert!(
            !res.replanned,
            "result reuse must stay disabled for non-deterministic accessors"
        );
        let plan = &res.plans.iter().find(|(n, _)| n == "join").unwrap().1;
        assert!(
            plan.choices
                .iter()
                .all(|c| c.strategy == Strategy::Baseline),
            "the job must run its baseline plan end to end: {plan:?}"
        );
    }

    #[test]
    fn failing_index_blocks_replanning() {
        use crate::fault::{FaultConfig, FaultPlan, RetryPolicy};
        // The identical workload replans in
        // `dynamic_replans_under_heavy_duplication`; here the index fails
        // 70% of its attempts — past the 50% degradation threshold — so
        // the adaptive runtime must keep the operator on baseline instead
        // of committing a shuffle job to a failing index.
        let (cluster, mut dfs, ijob) = setup(2000, 10, 5);
        let mut config = cheap_change_config();
        config.faults = FaultConfig::disabled().with_plan(FaultPlan::new(42).failures(0.7));
        config.faults.retry =
            RetryPolicy::bounded(8, SimDuration::from_micros(50), SimDuration::from_millis(5));
        let mut rt = EFindRuntime::with_config(&cluster, &mut dfs, config);
        let res = rt.run(&ijob, Mode::Dynamic).unwrap();
        assert!(
            !res.replanned,
            "a failing index must pin its operator to baseline"
        );
        // The harvested catalog carries the observed failure rate.
        let stats = rt.catalog.get("join").unwrap();
        assert!(
            stats.indices[0].failure_rate > 0.5,
            "failure rate {} should reflect the injected 70%",
            stats.indices[0].failure_rate
        );
    }

    #[test]
    fn healthy_fault_config_does_not_block_replanning() {
        use crate::fault::FaultConfig;
        // An *armed but quiet* fault layer (plan with zero rates) must not
        // change the adaptive decision.
        let (cluster, mut dfs, ijob) = setup(2000, 10, 5);
        let mut config = cheap_change_config();
        config.faults = FaultConfig::disabled().with_plan(crate::fault::FaultPlan::new(1));
        let mut rt = EFindRuntime::with_config(&cluster, &mut dfs, config);
        let res = rt.run(&ijob, Mode::Dynamic).unwrap();
        assert!(res.replanned, "quiet fault layer must not block the replan");
    }

    #[test]
    fn variance_gate_blocks_replanning() {
        let (cluster, mut dfs, ijob) = setup(2000, 10, 5);
        let config = EFindConfig {
            plan_change_cost_secs: 0.01,
            // Even zero-variance statistics fail a negative threshold, so
            // the gate rejects everything.
            variance_threshold: -1.0,
            ..EFindConfig::default()
        };
        let mut rt = EFindRuntime::with_config(&cluster, &mut dfs, config);
        let res = rt.run(&ijob, Mode::Dynamic).unwrap();
        assert!(!res.replanned);
    }
}
