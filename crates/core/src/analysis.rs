//! Bridge to the `efind-analyze` static plan verifier.
//!
//! The analyzer crate knows nothing about the runtime types; this module
//! lowers an [`IndexJobConf`] plus per-operator [`OperatorPlan`]s into its
//! neutral IR and runs the checks. [`crate::compile::compile_pipeline`]
//! calls [`analyze_job`] before building any stage — analyzer errors abort
//! compilation, warnings ride along in the compiled pipeline and are
//! printed at job start. [`analyze_costs`] additionally exercises the
//! statistics-dependent checks (`EF009`–`EF011`, `EF013`) from catalog
//! statistics, for `explain`-style reporting.

use efind_analyze::{
    analyze, CacheModel, ChaosModel, ChoiceModel, FaultModel, HedgeModel, IndexModel,
    IndexStatsModel, IntegrityModel, MeasuredStatsModel, OperatorCosts, OperatorModel,
    PartitionModel, PlacementKind, PlanModel, RateLimitModel, Report, StrategyKind, TenancyModel,
    TenantModel,
};
use efind_cluster::{ChaosPlan, CorruptionPlan, DetectorConfig, PartitionPlan, TenancyConfig};
use efind_common::{Error, FxHashMap, Result};

use crate::cost::{s_min, CostEnv, OperatorStatsEstimate, Placement};
use crate::fault::{FaultConfig, MissPolicy};
use crate::jobconf::{BoundOperator, IndexJobConf};
use crate::plan::{forced_plan, optimize_operator, Enumeration, OperatorPlan, Strategy};
use crate::statsx::Catalog;

fn strategy_kind(s: Strategy) -> StrategyKind {
    match s {
        Strategy::Baseline => StrategyKind::Baseline,
        Strategy::Cache => StrategyKind::Cache,
        Strategy::Repartition => StrategyKind::Repartition,
        Strategy::IndexLocality => StrategyKind::IndexLocality,
    }
}

fn placement_kind(p: Placement) -> PlacementKind {
    match p {
        Placement::Head => PlacementKind::Head,
        Placement::Body => PlacementKind::Body,
        Placement::Tail => PlacementKind::Tail,
    }
}

fn operator_model(
    bound: &BoundOperator,
    placement: Placement,
    plan: &OperatorPlan,
) -> OperatorModel {
    let indices = bound
        .indices
        .iter()
        .map(|acc| {
            let scheme = acc.partition_scheme();
            IndexModel {
                name: acc.name().to_owned(),
                deterministic: acc.deterministic(),
                // Shuffleability (exactly one key per record) is a runtime
                // property; statically it is assumed, matching `caps()`.
                shuffleable: true,
                has_partition_scheme: scheme.is_some(),
                partitions: scheme.map(|s| s.num_partitions()).unwrap_or(0),
                key_kind: acc.key_kind(),
                nik: None,
                stats: None,
            }
        })
        .collect();
    OperatorModel {
        name: bound.op.name().to_owned(),
        placement: placement_kind(placement),
        declared_arity: bound.op.num_indices(),
        volatile: bound.volatile,
        indices,
        lookup_key_kinds: bound.key_kinds.clone(),
        choices: plan
            .choices
            .iter()
            .map(|c| ChoiceModel {
                slot: c.index,
                strategy: strategy_kind(c.strategy),
                est_cost_secs: c.est_cost_secs,
            })
            .collect(),
        est_cost_secs: plan.est_cost_secs,
        costs: None,
    }
}

/// Lowers a job and its plans into the analyzer's IR. A missing plan is an
/// internal error, exactly as the compiler reported it before the analyzer
/// existed.
pub fn job_model(
    ijob: &IndexJobConf,
    plans: &FxHashMap<String, OperatorPlan>,
) -> Result<PlanModel> {
    let mut operators = Vec::new();
    for (bound, placement) in ijob.operators() {
        let plan = plans
            .get(bound.op.name())
            .ok_or_else(|| Error::Internal(format!("no plan for operator {}", bound.op.name())))?;
        operators.push(operator_model(bound, placement, plan));
    }
    Ok(PlanModel {
        job: ijob.name.clone(),
        has_reduce: ijob.has_reduce(),
        operators,
        faults: None,
        integrity: None,
        chaos: None,
        cache: None,
        measured: Vec::new(),
        tenancy: None,
        partition: None,
        hedge: None,
    })
}

/// Lowers the runtime fault configuration into the analyzer's IR. Only an
/// `Armed` configuration ([`FaultConfig::layer_state`]) is lowered — the
/// fault checks are meaningless for the Quiet path, which never retries,
/// pauses, or times out. This mirrors the quiet guards of
/// [`integrity_model`] and [`chaos_model`]: a configured-but-quiet plan
/// takes the plain lookup path at runtime, so the analyzer must not treat
/// it as armed either (and EF022's armed-but-quiet warning stays reserved
/// for hand-built models that bypass this lowering).
pub fn fault_model(config: &FaultConfig) -> Option<FaultModel> {
    if !config.layer_state().is_armed() {
        return None;
    }
    let plan = config.plan.as_ref()?;
    Some(FaultModel {
        inject_failure_rate: plan.failure_rate,
        inject_timeout_rate: plan.timeout_rate,
        inject_slowdown_rate: plan.slowdown_rate,
        max_retries: config.retry.max_retries,
        backoff_base_nanos: config.retry.backoff_base.as_nanos(),
        max_backoff_nanos: config.retry.max_backoff.as_nanos(),
        timeout_nanos: config.timeout.map(|t| t.as_nanos()),
        fail_job_on_exhaustion: matches!(config.miss_policy, MissPolicy::FailJob),
        breaker_threshold: config.breaker_threshold(),
        breaker_min_samples: config.breaker_min_samples,
    })
}

/// Lowers the runtime corruption configuration into the analyzer's IR.
/// Only an armed (non-quiet) plan is lowered — the integrity checks are
/// meaningless for the corruption-free path, which never flips a byte.
pub fn integrity_model(
    corruption: &CorruptionPlan,
    dfs_replication: usize,
) -> Option<IntegrityModel> {
    if corruption.is_quiet() {
        return None;
    }
    Some(IntegrityModel {
        dfs_replication,
        corrupts_chunks: corruption.corrupts_chunks(),
        corrupts_cache: corruption.corrupts_cache(),
        verification: corruption.verification_enabled(),
    })
}

/// Lowers the node-crash plan into the analyzer's IR. Only an armed
/// (non-quiet) plan is lowered — the conflict checks are meaningless for
/// the crash-free path, which never kills a node.
pub fn chaos_model(
    chaos: &ChaosPlan,
    cluster_nodes: usize,
    dfs_replication: usize,
) -> Option<ChaosModel> {
    if chaos.is_quiet() {
        return None;
    }
    Some(ChaosModel {
        kill_events: chaos.events().len(),
        cluster_nodes,
        dfs_replication,
    })
}

/// Lowers the network-partition plan and failure-detector configuration
/// into the analyzer's IR. Only an armed (non-quiet) plan is lowered —
/// the gray-failure checks are meaningless for the partition-free path,
/// which never cuts a link, and the detector is only consulted when a
/// partition plan is armed.
pub fn partition_model(
    netsplit: &PartitionPlan,
    detector: &DetectorConfig,
    cluster_nodes: usize,
    dfs_replication: usize,
) -> Option<PartitionModel> {
    if netsplit.is_quiet() {
        return None;
    }
    let permanently_isolated = netsplit
        .events()
        .iter()
        .filter(|e| e.is_permanent())
        .map(|e| e.nodes.len())
        .sum();
    Some(PartitionModel {
        partition_events: netsplit.events().len(),
        slow_links: netsplit.slow_links().len(),
        permanently_isolated,
        cluster_nodes,
        dfs_replication,
        heartbeat_interval_nanos: detector.interval.as_nanos(),
        suspicion_nanos: detector.suspicion.as_nanos(),
    })
}

/// Lowers the hedged-lookup configuration into the analyzer's IR. Only an
/// armed configuration (a latency threshold set) is lowered — `EF026` is
/// meaningless when no lookup ever hedges.
pub fn hedge_model(
    hedge: &crate::accessor::HedgeConfig,
    dfs_replication: usize,
) -> Option<HedgeModel> {
    let threshold = hedge.threshold?;
    Some(HedgeModel {
        threshold_nanos: threshold.as_nanos(),
        charge_both: matches!(hedge.policy, crate::accessor::HedgePolicy::ChargeBoth),
        dfs_replication,
    })
}

/// Lowers the lookup-cache configuration into the analyzer's IR. Always
/// lowered when analyzing in a runtime environment — `EF021` itself only
/// fires when some operator actually planned a cache-strategy access.
pub fn cache_model(capacity: usize, t_cache_secs: f64) -> CacheModel {
    CacheModel {
        capacity,
        t_cache_secs,
    }
}

/// Lowers the multi-tenant serving configuration into the analyzer's IR.
/// Only an armed configuration ([`TenancyConfig::layer_state`]) is lowered
/// — the tenancy checks are meaningless for the quiet single-job path,
/// which never queues, throttles, or meters anything. `job_tenant` is the
/// tenant the analyzed job resolves to (the job's own tag, falling back to
/// the runtime default), so `EF024` can catch an unknown-tenant tag before
/// the scheduler rejects it at submit time.
pub fn tenancy_model(cfg: &TenancyConfig, job_tenant: Option<&str>) -> Option<TenancyModel> {
    if !cfg.layer_state().is_armed() {
        return None;
    }
    Some(TenancyModel {
        tenants: cfg
            .tenants
            .iter()
            .map(|t| TenantModel {
                name: t.name.clone(),
                weight: t.weight,
                max_queued: t.max_queued,
                max_running: t.max_running,
                cache_share: t.cache_share,
            })
            .collect(),
        queue_capacity: cfg.queue_capacity,
        max_concurrent: cfg.max_concurrent,
        rate_limits: cfg
            .rate_limits
            .iter()
            .map(|rl| RateLimitModel {
                index: rl.index.clone(),
                rate_per_sec: rl.rate_per_sec,
                burst: rl.burst,
            })
            .collect(),
        degrade_threshold_secs: cfg.degrade_threshold.as_secs_f64(),
        scan_fallback_cost_secs: cfg.scan_fallback_cost.as_secs_f64(),
        job_tenant: job_tenant.map(str::to_string),
    })
}

/// Runs the structural checks over a job and its plans.
pub fn analyze_job(ijob: &IndexJobConf, plans: &FxHashMap<String, OperatorPlan>) -> Result<Report> {
    analyze_job_with_faults(ijob, plans, &FaultConfig::disabled())
}

/// [`analyze_job`] with the runtime fault configuration lowered alongside
/// the plan, so the fault checks (`EF015`, `EF016`) run when the fault
/// layer is armed.
pub fn analyze_job_with_faults(
    ijob: &IndexJobConf,
    plans: &FxHashMap<String, OperatorPlan>,
    faults: &FaultConfig,
) -> Result<Report> {
    analyze_job_with_injections(ijob, plans, faults, &CorruptionPlan::none(), usize::MAX)
}

/// [`analyze_job`] with both injection layers lowered alongside the plan:
/// the fault checks (`EF015`, `EF016`) run when the fault layer is armed
/// and the integrity checks (`EF017`, `EF018`) when corruption is
/// injected. This is the variant the compiler calls.
pub fn analyze_job_with_injections(
    ijob: &IndexJobConf,
    plans: &FxHashMap<String, OperatorPlan>,
    faults: &FaultConfig,
    corruption: &CorruptionPlan,
    dfs_replication: usize,
) -> Result<Report> {
    let mut model = job_model(ijob, plans)?;
    model.faults = fault_model(faults);
    model.integrity = integrity_model(corruption, dfs_replication);
    Ok(analyze(&model))
}

/// [`analyze_job`] with the *whole* runtime environment lowered alongside
/// the plan: fault, integrity, chaos, and partition injection layers
/// (`EF015`–`EF018`, `EF020`, `EF022`, `EF025`) plus the lookup-cache
/// (`EF021`), tenancy (`EF024`), and hedged-lookup (`EF026`)
/// configurations. This is the variant the compiler calls.
pub fn analyze_job_in_env(
    ijob: &IndexJobConf,
    plans: &FxHashMap<String, OperatorPlan>,
    env: &crate::compile::RuntimeEnv,
) -> Result<Report> {
    let mut model = job_model(ijob, plans)?;
    model.faults = fault_model(&env.faults);
    model.integrity = integrity_model(&env.corruption, env.dfs_replication);
    model.chaos = chaos_model(&env.chaos, env.cluster_nodes, env.dfs_replication);
    model.cache = Some(cache_model(env.cache_capacity, env.t_cache.as_secs_f64()));
    model.measured = env.measured.iter().map(measured_model).collect();
    model.tenancy = tenancy_model(
        &env.tenancy,
        ijob.tenant.as_deref().or(env.tenant.as_deref()),
    );
    model.partition = partition_model(
        &env.netsplit,
        &env.detector,
        env.cluster_nodes,
        env.dfs_replication,
    );
    model.hedge = hedge_model(&env.hedge, env.dfs_replication);
    Ok(analyze(&model))
}

/// Lowers one cross-job store injection into the analyzer's IR for the
/// `EF023` measured-stats checks.
fn measured_model(m: &crate::statstore::MeasuredOp) -> MeasuredStatsModel {
    MeasuredStatsModel {
        operator: m.operator.clone(),
        n1: m.stats.n1,
        nik: m.stats.indices.iter().map(|i| i.nik).collect(),
        indices: m
            .stats
            .indices
            .iter()
            .map(|s| IndexStatsModel {
                sik_bytes: s.sik,
                siv_bytes: s.siv,
                tj_secs: s.tj_secs,
                miss_ratio: s.miss_ratio,
                theta: s.theta,
                failure_rate: s.failure_rate,
            })
            .collect(),
        full_est_secs: m.full_est_secs,
        est_at_double_n1_secs: m.est_at_double_n1_secs,
    }
}

/// Runs the full check set — structural plus the statistics-dependent
/// cost-model checks — from catalog statistics. Operators without catalog
/// entries are verified structurally under a forced baseline plan.
pub fn analyze_costs(
    ijob: &IndexJobConf,
    catalog: &Catalog,
    env: &CostEnv,
    enumeration: Enumeration,
) -> Report {
    let mut operators = Vec::new();
    for (bound, placement) in ijob.operators() {
        let Some(stats) = catalog.get(bound.op.name()) else {
            let plan = forced_plan(&bound.caps(), Strategy::Baseline);
            operators.push(operator_model(bound, placement, &plan));
            continue;
        };
        let mut stats = stats.clone();
        // Partition-scheme availability is structural, not statistical —
        // refresh it from the bound accessors (as `plans_for` does).
        for (j, (_, scheme)) in bound.caps().iter().enumerate() {
            if let Some(idx) = stats.indices.get_mut(j) {
                idx.has_partition_scheme = *scheme;
            }
        }
        let plan = optimize_operator(&stats, env, placement, enumeration);
        let mut model = operator_model(bound, placement, &plan);
        // Enrich the structural model with what the statistics know.
        for (m, s) in model.indices.iter_mut().zip(&stats.indices) {
            m.shuffleable = s.shuffleable;
            m.nik = Some(s.nik);
            if s.partitions > 0 {
                m.partitions = s.partitions;
            }
            m.stats = Some(IndexStatsModel {
                sik_bytes: s.sik,
                siv_bytes: s.siv,
                tj_secs: s.tj_secs,
                miss_ratio: s.miss_ratio,
                theta: s.theta,
                failure_rate: s.failure_rate,
            });
        }
        model.costs = Some(operator_costs(&stats, env, placement, &plan, enumeration));
        operators.push(model);
    }
    analyze(&PlanModel {
        job: ijob.name.clone(),
        has_reduce: ijob.has_reduce(),
        operators,
        faults: None,
        integrity: None,
        chaos: None,
        cache: None,
        measured: Vec::new(),
        tenancy: None,
        partition: None,
        hedge: None,
    })
}

fn operator_costs(
    stats: &OperatorStatsEstimate,
    env: &CostEnv,
    placement: Placement,
    plan: &OperatorPlan,
    enumeration: Enumeration,
) -> OperatorCosts {
    let full = optimize_operator(stats, env, placement, Enumeration::Full);
    let krepart_k = match enumeration {
        Enumeration::KRepart(k) => k.max(1),
        Enumeration::Full => 2,
    };
    let krepart = optimize_operator(stats, env, placement, Enumeration::KRepart(krepart_k));
    // Monotonicity probe (EF019): the Eq. 1–4 estimates are sums of terms
    // linear in `N1`, so doubling the input cardinality must not lower the
    // best full-enumeration cost.
    let doubled_est = {
        let mut doubled = stats.clone();
        doubled.n1 *= 2.0;
        optimize_operator(&doubled, env, placement, Enumeration::Full).est_cost_secs
    };
    let mut s_min_by_position = Vec::with_capacity(plan.choices.len());
    let mut carried_by_position = Vec::with_capacity(plan.choices.len());
    let mut accessed: Vec<usize> = Vec::with_capacity(plan.choices.len());
    for choice in &plan.choices {
        let carried = stats.carried_size(&accessed);
        s_min_by_position.push(s_min(stats, choice.index, placement, carried));
        carried_by_position.push(carried);
        accessed.push(choice.index);
    }
    OperatorCosts {
        n1: stats.n1,
        t_cache_secs: env.t_cache_secs,
        full_est_secs: full.est_cost_secs,
        krepart_est_secs: krepart.est_cost_secs,
        krepart_k,
        est_at_double_n1_secs: Some(doubled_est),
        s_min_by_position,
        carried_by_position,
    }
}

/// Property 4 as a predicate over a runtime plan: no shuffle-strategy
/// access after a baseline/cache access. Used in debug assertions on every
/// planner exit path.
pub fn respects_property4(plan: &OperatorPlan) -> bool {
    let mut seen_non_shuffle = false;
    for c in &plan.choices {
        if c.strategy.is_shuffle() {
            if seen_non_shuffle {
                return false;
            }
        } else {
            seen_non_shuffle = true;
        }
    }
    true
}

/// True when the job and plans pass structural analysis without errors —
/// the invariant the adaptive runtime debug-asserts before compiling a
/// mid-job replacement pipeline.
pub fn passes(ijob: &IndexJobConf, plans: &FxHashMap<String, OperatorPlan>) -> bool {
    analyze_job(ijob, plans)
        .map(|r| r.is_passing())
        .unwrap_or(false)
}

/// True when any bound accessor reports non-deterministic lookups — the
/// static gate (`EF012`) that disables the adaptive runtime's wave-1
/// result reuse.
pub fn has_nondeterministic_accessor(ijob: &IndexJobConf) -> bool {
    ijob.operators()
        .any(|(b, _)| b.indices.iter().any(|a| !a.deterministic()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accessor::testutil::MemIndex;
    use crate::accessor::IndexAccessor;
    use crate::cost::IndexStatsEstimate;
    use crate::operator::{operator_fn, IndexInput, IndexOutput};
    use crate::plan::IndexChoice;
    use efind_analyze::DiagCode;
    use efind_common::{Datum, KeyKind, Record};
    use efind_mapreduce::{mapper_fn, reducer_fn, Collector};
    use std::sync::Arc;

    fn sample_bound(name: &str) -> BoundOperator {
        let op = operator_fn(
            name,
            1,
            |rec: &mut Record, keys: &mut IndexInput| keys.put(0, rec.key.clone()),
            |rec: Record, _v: &IndexOutput, out: &mut dyn Collector| out.collect(rec),
        );
        BoundOperator::new(op).add_index(Arc::new(MemIndex::new("mem", vec![])))
    }

    fn sample_job(bound: BoundOperator) -> IndexJobConf {
        IndexJobConf::new("j", "in", "out")
            .add_head_index_operator(bound)
            .set_mapper(mapper_fn(|rec, out, _| out.collect(rec)))
            .set_reducer(
                reducer_fn(|key, values, out, _| {
                    out.collect(Record::new(key, values.len() as i64));
                }),
                2,
            )
    }

    fn plans_with(ijob: &IndexJobConf, strategy: Strategy) -> FxHashMap<String, OperatorPlan> {
        ijob.operators()
            .map(|(b, _)| (b.op.name().to_owned(), forced_plan(&b.caps(), strategy)))
            .collect()
    }

    #[test]
    fn lowering_preserves_shape() {
        let ijob = sample_job(sample_bound("op"));
        let plans = plans_with(&ijob, Strategy::Cache);
        let model = job_model(&ijob, &plans).unwrap();
        assert_eq!(model.operators.len(), 1);
        assert_eq!(model.operators[0].name, "op");
        assert_eq!(model.operators[0].declared_arity, 1);
        assert_eq!(model.operators[0].indices[0].name, "mem");
        assert!(model.has_reduce);
        assert!(analyze(&model).is_clean());
    }

    #[test]
    fn missing_plan_is_internal_error() {
        let ijob = sample_job(sample_bound("op"));
        assert!(job_model(&ijob, &FxHashMap::default()).is_err());
    }

    #[test]
    fn fault_lowering_requires_an_armed_plan() {
        use crate::fault::{FaultPlan, RetryPolicy};
        use efind_cluster::SimDuration;

        assert!(fault_model(&FaultConfig::disabled()).is_none());

        let mut config = FaultConfig::disabled().with_plan(FaultPlan::new(7).failures(0.1));
        config.retry =
            RetryPolicy::bounded(5, SimDuration::from_micros(50), SimDuration::from_millis(1));
        config.timeout = Some(SimDuration::from_millis(2));
        config.miss_policy = MissPolicy::FailJob;
        let model = fault_model(&config).expect("armed config lowers");
        assert_eq!(model.max_retries, 5);
        assert_eq!(model.backoff_base_nanos, 50_000);
        assert_eq!(model.max_backoff_nanos, 1_000_000);
        assert_eq!(model.timeout_nanos, Some(2_000_000));
        assert!(model.fail_job_on_exhaustion);
    }

    #[test]
    fn zero_timeout_fault_config_fails_analysis() {
        use crate::fault::FaultPlan;
        use efind_cluster::SimDuration;

        let ijob = sample_job(sample_bound("op"));
        let plans = plans_with(&ijob, Strategy::Cache);
        let mut config = FaultConfig::disabled().with_plan(FaultPlan::new(7).failures(0.1));
        config.timeout = Some(SimDuration::ZERO);
        let report = analyze_job_with_faults(&ijob, &plans, &config).unwrap();
        assert!(report.has_code(efind_analyze::DiagCode::EF015));
        assert!(report.into_result().is_err());

        // The same job analyzed without faults stays clean.
        assert!(analyze_job(&ijob, &plans).unwrap().is_clean());
    }

    #[test]
    fn chunk_corruption_on_unreplicated_dfs_fails_analysis() {
        let ijob = sample_job(sample_bound("op"));
        let plans = plans_with(&ijob, Strategy::Cache);
        let plan = CorruptionPlan::new(1).chunks(0.1);
        let faults = FaultConfig::disabled();
        let report = analyze_job_with_injections(&ijob, &plans, &faults, &plan, 1).unwrap();
        assert!(report.has_code(efind_analyze::DiagCode::EF017));
        assert!(report.into_result().is_err());

        // With an intact replica to fall back on, the same plan is clean.
        let report = analyze_job_with_injections(&ijob, &plans, &faults, &plan, 3).unwrap();
        assert!(report.is_clean(), "{}", report.to_text());

        // A quiet plan is never lowered at all.
        assert!(integrity_model(&CorruptionPlan::none(), 1).is_none());
    }

    #[test]
    fn unverified_cache_corruption_warns_but_passes() {
        let ijob = sample_job(sample_bound("op"));
        let plans = plans_with(&ijob, Strategy::Cache);
        let plan = CorruptionPlan::new(1).cache(0.2).without_verification();
        let faults = FaultConfig::disabled();
        let report = analyze_job_with_injections(&ijob, &plans, &faults, &plan, 3).unwrap();
        assert!(report.has_code(efind_analyze::DiagCode::EF018));
        assert!(report.is_passing());

        // Baseline plans have no cache to poison.
        let plans = plans_with(&ijob, Strategy::Baseline);
        let report = analyze_job_with_injections(&ijob, &plans, &faults, &plan, 3).unwrap();
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn property4_predicate() {
        let choice = |index, strategy| IndexChoice {
            index,
            strategy,
            est_cost_secs: 0.0,
        };
        let good = OperatorPlan {
            choices: vec![choice(1, Strategy::Repartition), choice(0, Strategy::Cache)],
            est_cost_secs: 0.0,
        };
        assert!(respects_property4(&good));
        let bad = OperatorPlan {
            choices: vec![choice(0, Strategy::Cache), choice(1, Strategy::Repartition)],
            est_cost_secs: 0.0,
        };
        assert!(!respects_property4(&bad));
    }

    #[test]
    fn volatile_non_baseline_plan_fails_analysis() {
        let mut bound = sample_bound("op");
        bound.volatile = true;
        let ijob = sample_job(bound);
        let plans = plans_with(&ijob, Strategy::Cache);
        let report = analyze_job(&ijob, &plans).unwrap();
        assert!(report.has_code(DiagCode::EF014));
        assert!(!passes(&ijob, &plans));
    }

    /// An accessor that declares a concrete key kind and non-determinism.
    struct TypedIndex {
        kind: KeyKind,
        det: bool,
    }

    impl IndexAccessor for TypedIndex {
        fn name(&self) -> &str {
            "typed"
        }
        fn lookup(&self, _key: &Datum) -> Vec<Datum> {
            vec![]
        }
        fn serve_time(&self, _: &Datum, _: u64) -> efind_cluster::SimDuration {
            efind_cluster::SimDuration::ZERO
        }
        fn deterministic(&self) -> bool {
            self.det
        }
        fn key_kind(&self) -> KeyKind {
            self.kind
        }
    }

    #[test]
    fn key_kind_mismatch_is_ef007() {
        let op = operator_fn(
            "op",
            1,
            |rec: &mut Record, keys: &mut IndexInput| keys.put(0, rec.key.clone()),
            |rec: Record, _v: &IndexOutput, out: &mut dyn Collector| out.collect(rec),
        );
        let bound = BoundOperator::new(op)
            .add_index(Arc::new(TypedIndex {
                kind: KeyKind::Int,
                det: true,
            }))
            .key_kinds(vec![KeyKind::Text]);
        let ijob = sample_job(bound);
        let plans = plans_with(&ijob, Strategy::Baseline);
        let report = analyze_job(&ijob, &plans).unwrap();
        assert!(report.has_code(DiagCode::EF007));
        assert!(report.has_errors());
    }

    #[test]
    fn non_deterministic_accessor_warns_but_passes() {
        let op = operator_fn(
            "op",
            1,
            |rec: &mut Record, keys: &mut IndexInput| keys.put(0, rec.key.clone()),
            |rec: Record, _v: &IndexOutput, out: &mut dyn Collector| out.collect(rec),
        );
        let bound = BoundOperator::new(op).add_index(Arc::new(TypedIndex {
            kind: KeyKind::Any,
            det: false,
        }));
        let ijob = sample_job(bound);
        assert!(has_nondeterministic_accessor(&ijob));
        let plans = plans_with(&ijob, Strategy::Baseline);
        let report = analyze_job(&ijob, &plans).unwrap();
        assert!(report.has_code(DiagCode::EF012));
        assert!(report.is_passing());
    }

    fn catalog_with(name: &str, theta: f64) -> Catalog {
        let mut cat = Catalog::new();
        cat.put(
            name,
            OperatorStatsEstimate {
                n1: 1.0e6,
                s1: 100.0,
                spre: 80.0,
                spost: 60.0,
                smap: 40.0,
                indices: vec![IndexStatsEstimate {
                    nik: 1.0,
                    sik: 10.0,
                    siv: 500.0,
                    tj_secs: 1.0e-3,
                    miss_ratio: 0.2,
                    theta,
                    has_partition_scheme: false,
                    shuffleable: true,
                    partitions: 0,
                    failure_rate: 0.0,
                }],
            },
        );
        cat
    }

    fn cost_env() -> CostEnv {
        CostEnv {
            bw_bytes_per_sec: 125.0e6,
            f_per_byte: 2.0e-8,
            t_cache_secs: 1.0e-6,
            lookup_latency_secs: 1.0e-4,
            shuffle_secs_per_byte: 3.6e-8,
            job_overhead_secs: 0.0,
            reduce_parallelism: 48.0,
            parallelism: 96.0,
        }
    }

    #[test]
    fn cost_analysis_on_sane_statistics_is_passing() {
        let ijob = sample_job(sample_bound("op"));
        let report = analyze_costs(
            &ijob,
            &catalog_with("op", 2.0),
            &cost_env(),
            Enumeration::Full,
        );
        assert!(report.is_passing(), "{}", report.to_text());
        assert!(!report.has_code(DiagCode::EF009));
        assert!(!report.has_code(DiagCode::EF011));
    }

    #[test]
    fn cost_analysis_without_catalog_is_structural_only() {
        let ijob = sample_job(sample_bound("op"));
        let report = analyze_costs(&ijob, &Catalog::new(), &cost_env(), Enumeration::Full);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn chaos_lowering_requires_an_armed_plan() {
        use efind_cluster::SimTime;

        assert!(chaos_model(&ChaosPlan::none(), 8, 3).is_none());
        let plan = ChaosPlan::new(11)
            .kill(efind_cluster::NodeId(0), SimTime::from_nanos(1_000_000_000))
            .kill(efind_cluster::NodeId(1), SimTime::from_nanos(2_000_000_000));
        let model = chaos_model(&plan, 8, 3).expect("armed plan lowers");
        assert_eq!(model.kill_events, 2);
        assert_eq!(model.cluster_nodes, 8);
        assert_eq!(model.dfs_replication, 3);
    }

    fn sample_env() -> crate::compile::RuntimeEnv {
        use efind_cluster::{NetworkModel, SimDuration};
        crate::compile::RuntimeEnv {
            network: NetworkModel::gigabit(),
            t_cache: SimDuration::from_micros(1),
            cache_capacity: 64,
            shuffle_reducers: 4,
            intermediate_chunks: 8,
            hard_colocation: false,
            faults: FaultConfig::disabled(),
            corruption: CorruptionPlan::none(),
            dfs_replication: 3,
            chaos: ChaosPlan::none(),
            cluster_nodes: 4,
            netsplit: efind_cluster::PartitionPlan::none(),
            detector: efind_cluster::DetectorConfig::default(),
            hedge: crate::accessor::HedgeConfig::disabled(),
            measured: Vec::new(),
            tenancy: efind_cluster::TenancyConfig::none(),
            tenant: None,
        }
    }

    #[test]
    fn killing_every_node_fails_env_analysis() {
        use efind_cluster::SimTime;

        let ijob = sample_job(sample_bound("op"));
        let plans = plans_with(&ijob, Strategy::Cache);
        let mut env = sample_env();
        env.chaos = ChaosPlan::new(5)
            .kill(efind_cluster::NodeId(0), SimTime::from_nanos(1_000_000_000))
            .kill(efind_cluster::NodeId(1), SimTime::from_nanos(1_000_000_000))
            .kill(efind_cluster::NodeId(2), SimTime::from_nanos(1_000_000_000))
            .kill(efind_cluster::NodeId(3), SimTime::from_nanos(1_000_000_000));
        let report = analyze_job_in_env(&ijob, &plans, &env).unwrap();
        assert!(report.has_code(DiagCode::EF020));
        assert!(report.into_result().is_err());

        // Killing fewer nodes than the cluster holds (with replicas to
        // recover from) survives analysis.
        env.chaos =
            ChaosPlan::new(5).kill(efind_cluster::NodeId(0), SimTime::from_nanos(1_000_000_000));
        let report = analyze_job_in_env(&ijob, &plans, &env).unwrap();
        assert!(report.is_passing(), "{}", report.to_text());
    }

    #[test]
    fn unhealed_full_cluster_partition_fails_env_analysis() {
        use efind_cluster::{NodeId, SimTime};

        let ijob = sample_job(sample_bound("op"));
        let plans = plans_with(&ijob, Strategy::Cache);
        let mut env = sample_env();
        env.netsplit = efind_cluster::PartitionPlan::new(7).split(
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            SimTime::ZERO,
            None,
        );
        let report = analyze_job_in_env(&ijob, &plans, &env).unwrap();
        assert!(report.has_code(DiagCode::EF025));
        assert!(report.into_result().is_err());

        // The same cut with a heal time is transient — a survivable
        // experiment, clean under EF025.
        env.netsplit = efind_cluster::PartitionPlan::new(7).split(
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            SimTime::ZERO,
            Some(SimTime::from_nanos(1_000_000)),
        );
        let report = analyze_job_in_env(&ijob, &plans, &env).unwrap();
        assert!(report.is_passing(), "{}", report.to_text());
    }

    #[test]
    fn miscalibrated_detector_warns_under_env_analysis() {
        use efind_cluster::{NodeId, SimDuration, SimTime};

        let ijob = sample_job(sample_bound("op"));
        let plans = plans_with(&ijob, Strategy::Cache);
        let mut env = sample_env();
        env.netsplit = efind_cluster::PartitionPlan::new(7).split(
            &[NodeId(1)],
            SimTime::ZERO,
            Some(SimTime::from_nanos(1_000_000)),
        );
        env.detector = efind_cluster::DetectorConfig {
            interval: SimDuration::from_micros(500),
            suspicion: SimDuration::from_micros(500),
        };
        let report = analyze_job_in_env(&ijob, &plans, &env).unwrap();
        assert!(report.has_code(DiagCode::EF025), "{}", report.to_text());
        assert!(report.is_passing(), "detector miscalibration is a warning");

        // A quiet partition plan never lowers a model: the detector is
        // not consulted, so its calibration is irrelevant.
        env.netsplit = efind_cluster::PartitionPlan::none();
        let report = analyze_job_in_env(&ijob, &plans, &env).unwrap();
        assert!(!report.has_code(DiagCode::EF025));
    }

    #[test]
    fn hedging_against_unreplicated_dfs_warns_under_env_analysis() {
        use efind_cluster::SimDuration;

        let ijob = sample_job(sample_bound("op"));
        let plans = plans_with(&ijob, Strategy::Cache);
        let mut env = sample_env();
        env.hedge.threshold = Some(SimDuration::from_micros(2));
        env.dfs_replication = 1;
        let report = analyze_job_in_env(&ijob, &plans, &env).unwrap();
        assert!(report.has_code(DiagCode::EF026), "{}", report.to_text());
        assert!(report.is_passing(), "EF026 is a warning");

        // With replicas to race against, hedging is clean — and a
        // disabled hedge lowers no model at all.
        env.dfs_replication = 3;
        let report = analyze_job_in_env(&ijob, &plans, &env).unwrap();
        assert!(report.is_passing(), "{}", report.to_text());
        assert!(!report.has_code(DiagCode::EF026));
        env.hedge = crate::accessor::HedgeConfig::disabled();
        env.dfs_replication = 1;
        let report = analyze_job_in_env(&ijob, &plans, &env).unwrap();
        assert!(!report.has_code(DiagCode::EF026));
    }

    #[test]
    fn zero_capacity_cache_plan_fails_env_analysis() {
        let ijob = sample_job(sample_bound("op"));
        let plans = plans_with(&ijob, Strategy::Cache);
        let mut env = sample_env();
        env.cache_capacity = 0;
        let report = analyze_job_in_env(&ijob, &plans, &env).unwrap();
        assert!(report.has_code(DiagCode::EF021));
        assert!(report.into_result().is_err());

        // A baseline plan never probes the cache, so the degenerate
        // capacity is irrelevant to it.
        let plans = plans_with(&ijob, Strategy::Baseline);
        let report = analyze_job_in_env(&ijob, &plans, &env).unwrap();
        assert!(report.is_passing(), "{}", report.to_text());
    }

    #[test]
    fn out_of_range_statistics_trigger_ef019() {
        let ijob = sample_job(sample_bound("op"));
        let mut cat = catalog_with("op", 2.0);
        let mut stats = cat.get("op").unwrap().clone();
        stats.indices[0].miss_ratio = 1.5;
        cat.put("op", stats);
        let report = analyze_costs(&ijob, &cat, &cost_env(), Enumeration::Full);
        assert!(report.has_code(DiagCode::EF019), "{}", report.to_text());

        // Sane statistics pass the same gate, and the monotonicity probe
        // is populated on every operator with catalog statistics.
        let report = analyze_costs(
            &ijob,
            &catalog_with("op", 2.0),
            &cost_env(),
            Enumeration::Full,
        );
        assert!(!report.has_code(DiagCode::EF019), "{}", report.to_text());
    }

    #[test]
    fn corrupt_statistics_trigger_ef009() {
        let ijob = sample_job(sample_bound("op"));
        let mut cat = catalog_with("op", 2.0);
        let mut stats = cat.get("op").unwrap().clone();
        stats.n1 = -5.0;
        cat.put("op", stats);
        let report = analyze_costs(&ijob, &cat, &cost_env(), Enumeration::Full);
        assert!(report.has_code(DiagCode::EF009), "{}", report.to_text());
    }
}
