//! The EFind-enhanced job configuration (`IndexJobConf`, Fig. 5).

use std::sync::Arc;

use efind_cluster::SimDuration;
use efind_common::{Error, FxHashSet, KeyKind, Result};
use efind_mapreduce::{HashPartitioner, MapperFactory, Partitioner, ReducerFactory};

use crate::accessor::IndexAccessor;
use crate::operator::IndexOperator;
use crate::statsx::OpDescriptor;

/// An [`IndexOperator`] bound to its concrete [`IndexAccessor`]s (the
/// paper's `I1.addIndex("indexaccessor.UserProfileAccessor", …)`).
#[derive(Clone)]
pub struct BoundOperator {
    /// The job-specific operator.
    pub op: Arc<dyn IndexOperator>,
    /// One accessor per index the operator declares, in index order.
    pub indices: Vec<Arc<dyn IndexAccessor>>,
    /// §3.2 escape hatch: the strategies assume lookups are idempotent
    /// ("an index lookup with the same key returns the same result during
    /// an EFind enhanced job"). When that is false, mark the operator
    /// volatile and every mode pins it to the baseline strategy.
    pub volatile: bool,
    /// Key kinds the operator's `preProcess` emits, one per index slot.
    /// Empty (the default) means undeclared — every slot is treated as
    /// [`KeyKind::Any`] and skips static key-type checking.
    pub key_kinds: Vec<KeyKind>,
}

impl BoundOperator {
    /// Starts binding an operator.
    pub fn new(op: Arc<dyn IndexOperator>) -> Self {
        BoundOperator {
            op,
            indices: Vec::new(),
            volatile: false,
            key_kinds: Vec::new(),
        }
    }

    /// Binds the next index accessor (the paper's `addIndex`).
    pub fn add_index(mut self, accessor: Arc<dyn IndexAccessor>) -> Self {
        self.indices.push(accessor);
        self
    }

    /// Declares the operator's lookups non-idempotent: EFind will use the
    /// baseline strategy for it in every mode (§3.2, footnote 2).
    pub fn volatile(mut self) -> Self {
        self.volatile = true;
        self
    }

    /// Declares the key kinds `preProcess` emits, one per index slot, so
    /// the static analyzer can verify them against each accessor's
    /// declared key kind (`EF007`).
    pub fn key_kinds(mut self, kinds: Vec<KeyKind>) -> Self {
        self.key_kinds = kinds;
        self
    }

    /// The structural descriptor used for statistics extraction.
    pub fn descriptor(&self) -> OpDescriptor {
        OpDescriptor {
            name: self.op.name().to_owned(),
            num_indices: self.indices.len(),
            schemes: self
                .indices
                .iter()
                .map(|a| a.partition_scheme().is_some())
                .collect(),
            partition_counts: self
                .indices
                .iter()
                .map(|a| {
                    a.partition_scheme()
                        .map(|s| s.num_partitions())
                        .unwrap_or(0)
                })
                .collect(),
        }
    }

    /// Capability tuples `(shuffleable, has_partition_scheme)` for forced
    /// plans. Shuffleability is a runtime property (exactly one key per
    /// record), unknowable statically, so it is assumed and enforced
    /// during execution.
    pub fn caps(&self) -> Vec<(bool, bool)> {
        self.indices
            .iter()
            .map(|a| (true, a.partition_scheme().is_some()))
            .collect()
    }

    fn validate(&self) -> Result<()> {
        if self.op.num_indices() != self.indices.len() {
            return Err(Error::InvalidConfig(format!(
                "operator {} declares {} indices but {} accessors are bound",
                self.op.name(),
                self.op.num_indices(),
                self.indices.len()
            )));
        }
        Ok(())
    }
}

/// An EFind-enhanced MapReduce job: a vanilla job plus index operators
/// placed before Map (*head*), between Map and Reduce (*body*), and after
/// Reduce (*tail*).
#[derive(Clone)]
pub struct IndexJobConf {
    /// Job name.
    pub name: String,
    /// DFS input file.
    pub input: String,
    /// DFS output file.
    pub output: String,
    /// The original Map chain (empty = identity).
    pub map: Vec<MapperFactory>,
    /// The original Reduce function (`None` with `num_reducers > 0` =
    /// identity group-by).
    pub reducer: Option<ReducerFactory>,
    /// Reduce task count (0 = map-only job).
    pub num_reducers: usize,
    /// Shuffle partitioner for the job's own Reduce.
    pub partitioner: Arc<dyn Partitioner>,
    /// Operators before Map.
    pub head: Vec<BoundOperator>,
    /// Operators between Map and Reduce.
    pub body: Vec<BoundOperator>,
    /// Operators after Reduce.
    pub tail: Vec<BoundOperator>,
    /// Modeled CPU cost per record.
    pub cpu_per_record: SimDuration,
    /// The tenant this job runs as under a multi-tenant cluster config
    /// (`None` = the implicit default tenant). Ignored — and free — when
    /// the runtime's tenancy layer is quiet; when armed, `EF024` verifies
    /// the name resolves in the cluster's [`TenancyConfig`]
    /// (`efind_cluster::TenancyConfig`).
    pub tenant: Option<String>,
}

impl IndexJobConf {
    /// Creates an enhanced job configuration.
    pub fn new(
        name: impl Into<String>,
        input: impl Into<String>,
        output: impl Into<String>,
    ) -> Self {
        IndexJobConf {
            name: name.into(),
            input: input.into(),
            output: output.into(),
            map: Vec::new(),
            reducer: None,
            num_reducers: 0,
            partitioner: Arc::new(HashPartitioner),
            head: Vec::new(),
            body: Vec::new(),
            tail: Vec::new(),
            cpu_per_record: SimDuration::from_micros(1),
            tenant: None,
        }
    }

    /// Tags the job with the tenant it runs as.
    pub fn set_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Sets the Map function(s).
    pub fn set_mapper(mut self, m: MapperFactory) -> Self {
        self.map.push(m);
        self
    }

    /// Sets the Reduce function and task count.
    pub fn set_reducer(mut self, r: ReducerFactory, num_reducers: usize) -> Self {
        self.reducer = Some(r);
        self.num_reducers = num_reducers.max(1);
        self
    }

    /// Enables an identity group-by Reduce.
    pub fn set_identity_reducer(mut self, num_reducers: usize) -> Self {
        self.reducer = None;
        self.num_reducers = num_reducers.max(1);
        self
    }

    /// Overrides the job's own shuffle partitioner.
    pub fn set_partitioner(mut self, p: Arc<dyn Partitioner>) -> Self {
        self.partitioner = p;
        self
    }

    /// Overrides the per-record CPU model.
    pub fn set_cpu_per_record(mut self, d: SimDuration) -> Self {
        self.cpu_per_record = d;
        self
    }

    /// Inserts an operator before Map (the paper's
    /// `addHeadIndexOperator`).
    pub fn add_head_index_operator(mut self, op: BoundOperator) -> Self {
        self.head.push(op);
        self
    }

    /// Inserts an operator between Map and Reduce (`addBodyIndexOperator`).
    pub fn add_body_index_operator(mut self, op: BoundOperator) -> Self {
        self.body.push(op);
        self
    }

    /// Inserts an operator after Reduce (`addTailIndexOperator`).
    pub fn add_tail_index_operator(mut self, op: BoundOperator) -> Self {
        self.tail.push(op);
        self
    }

    /// True if the job has a reduce phase.
    pub fn has_reduce(&self) -> bool {
        self.num_reducers > 0
    }

    /// All operators with their placement, in data-flow order.
    pub fn operators(&self) -> impl Iterator<Item = (&BoundOperator, crate::cost::Placement)> {
        use crate::cost::Placement;
        self.head
            .iter()
            .map(|b| (b, Placement::Head))
            .chain(self.body.iter().map(|b| (b, Placement::Body)))
            .chain(self.tail.iter().map(|b| (b, Placement::Tail)))
    }

    /// Structural descriptors of all operators.
    pub fn descriptors(&self) -> Vec<OpDescriptor> {
        self.operators().map(|(b, _)| b.descriptor()).collect()
    }

    /// Validates arities, name uniqueness, and placement constraints.
    pub fn validate(&self) -> Result<()> {
        let mut seen = FxHashSet::default();
        for (bound, _) in self.operators() {
            bound.validate()?;
            if !seen.insert(bound.op.name().to_owned()) {
                return Err(Error::InvalidConfig(format!(
                    "duplicate operator name {}",
                    bound.op.name()
                )));
            }
        }
        if !self.tail.is_empty() && !self.has_reduce() {
            return Err(Error::InvalidConfig(
                "tail index operators require a reduce phase".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accessor::testutil::MemIndex;
    use crate::operator::operator_fn;

    fn noop_op(name: &str, m: usize) -> Arc<dyn IndexOperator> {
        operator_fn(name, m, |_rec, _keys| {}, |_rec, _vals, _out| {})
    }

    fn mem() -> Arc<dyn IndexAccessor> {
        Arc::new(MemIndex::new("mem", vec![]))
    }

    #[test]
    fn builder_places_operators() {
        let conf = IndexJobConf::new("j", "in", "out")
            .set_identity_reducer(2)
            .add_head_index_operator(BoundOperator::new(noop_op("a", 1)).add_index(mem()))
            .add_body_index_operator(BoundOperator::new(noop_op("b", 1)).add_index(mem()))
            .add_tail_index_operator(BoundOperator::new(noop_op("c", 1)).add_index(mem()));
        conf.validate().unwrap();
        let placements: Vec<_> = conf
            .operators()
            .map(|(b, p)| (b.op.name().to_owned(), p))
            .collect();
        assert_eq!(placements.len(), 3);
        assert_eq!(placements[0].0, "a");
        assert_eq!(placements[2].1, crate::cost::Placement::Tail);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let conf = IndexJobConf::new("j", "in", "out")
            .add_head_index_operator(BoundOperator::new(noop_op("a", 2)).add_index(mem()));
        assert!(conf.validate().is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let conf = IndexJobConf::new("j", "in", "out")
            .add_head_index_operator(BoundOperator::new(noop_op("a", 1)).add_index(mem()))
            .add_body_index_operator(BoundOperator::new(noop_op("a", 1)).add_index(mem()))
            .set_identity_reducer(1);
        assert!(conf.validate().is_err());
    }

    #[test]
    fn tail_without_reduce_rejected() {
        let conf = IndexJobConf::new("j", "in", "out")
            .add_tail_index_operator(BoundOperator::new(noop_op("t", 1)).add_index(mem()));
        assert!(conf.validate().is_err());
    }

    #[test]
    fn descriptor_reflects_schemes() {
        let bound = BoundOperator::new(noop_op("a", 1)).add_index(mem());
        let d = bound.descriptor();
        assert_eq!(d.name, "a");
        assert_eq!(d.schemes, vec![false]);
        assert_eq!(bound.caps(), vec![(true, false)]);
    }
}
