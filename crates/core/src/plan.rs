//! Index access strategies and the multi-index planning algorithms (§3.5).
//!
//! For an operator with `m` independent indices the planner exploits four
//! properties proved in the paper:
//!
//! 1. baseline/cache costs are order-independent;
//! 2. re-partitioning/index-locality costs depend on the access order
//!    (earlier lookup results ride along in the shuffled data);
//! 3. with a fixed order, each index's strategy cost is independent of the
//!    other indices' strategy choices;
//! 4. an optimal plan accesses shuffle-strategy indices before
//!    baseline/cache ones.
//!
//! **FullEnumerate** tries all `m!` orders; **k-Repart** tries all
//! `P(m, k)` prefixes of shuffle-eligible indices and handles the rest with
//! baseline/cache only.

use crate::cost::{
    cost_baseline, cost_cache, cost_index_locality, cost_repartition, CostEnv,
    OperatorStatsEstimate, Placement,
};

/// The four index access strategies of §3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// §3.1 — chained functions, every key looked up remotely.
    Baseline,
    /// §3.2 — per-task LRU lookup cache.
    Cache,
    /// §3.3 — extra shuffle job grouping equal keys; one lookup per
    /// distinct key.
    Repartition,
    /// §3.4 — shuffle co-partitioned with the index plus affinity
    /// scheduling; lookups become local.
    IndexLocality,
}

impl Strategy {
    /// True for the strategies that insert a shuffle job.
    pub fn is_shuffle(self) -> bool {
        matches!(self, Strategy::Repartition | Strategy::IndexLocality)
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Baseline => "base",
            Strategy::Cache => "cache",
            Strategy::Repartition => "repart",
            Strategy::IndexLocality => "idxloc",
        }
    }
}

/// The planned access of one index.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexChoice {
    /// Position of the index in the operator's declaration order.
    pub index: usize,
    /// Chosen strategy.
    pub strategy: Strategy,
    /// Estimated cost in cluster-total seconds (0 for forced plans).
    pub est_cost_secs: f64,
}

/// A complete plan for one operator: indices in access order with their
/// strategies.
#[derive(Clone, Debug, PartialEq)]
pub struct OperatorPlan {
    /// Choices in access order.
    pub choices: Vec<IndexChoice>,
    /// Total estimated cost in cluster-total seconds.
    pub est_cost_secs: f64,
}

impl OperatorPlan {
    /// The strategy chosen for declaration-order index `j`.
    pub fn strategy_of(&self, index: usize) -> Option<Strategy> {
        self.choices
            .iter()
            .find(|c| c.index == index)
            .map(|c| c.strategy)
    }

    /// True if any index uses a shuffle strategy.
    pub fn has_shuffle(&self) -> bool {
        self.choices.iter().any(|c| c.strategy.is_shuffle())
    }
}

/// Which planning algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enumeration {
    /// FullEnumerate: all `m!` access orders (falls back to `KRepart(2)`
    /// above [`FULL_ENUMERATE_LIMIT`] indices).
    Full,
    /// k-Repart: all `P(m, k)` shuffle-strategy prefixes.
    KRepart(usize),
}

/// FullEnumerate is used up to this many indices per operator (8! = 40320
/// orders — the paper argues m ≤ 5 in practice).
pub const FULL_ENUMERATE_LIMIT: usize = 8;

/// Evaluates one access order, choosing each position's best strategy
/// under Property 4 pruning. `shuffle_budget` caps how many leading
/// positions may pick a shuffle strategy (`usize::MAX` = unlimited).
fn evaluate_order(
    op: &OperatorStatsEstimate,
    env: &CostEnv,
    placement: Placement,
    order: &[usize],
    shuffle_budget: usize,
) -> OperatorPlan {
    let mut choices = Vec::with_capacity(order.len());
    let mut total = 0.0;
    let mut accessed: Vec<usize> = Vec::with_capacity(order.len());
    let mut shuffle_allowed = true;
    let mut shuffles_used = 0usize;

    for &j in order {
        let idx = &op.indices[j];
        let carried = op.carried_size(&accessed);
        let mut best = (Strategy::Baseline, cost_baseline(env, op, j));
        let cache = cost_cache(env, op, j);
        if cache < best.1 {
            best = (Strategy::Cache, cache);
        }
        if shuffle_allowed && shuffles_used < shuffle_budget && idx.shuffleable {
            // Each shuffle strategy adds one MapReduce job; charge its
            // fixed overhead so shuffles are only chosen when the lookup
            // savings pay for a whole extra job (§3.5's observation).
            let overhead = env.job_overhead_secs * env.parallelism;
            let repart = cost_repartition(env, op, j, placement, carried) + overhead;
            if repart < best.1 {
                best = (Strategy::Repartition, repart);
            }
            if idx.has_partition_scheme {
                let loc = cost_index_locality(env, op, j, placement, carried) + overhead;
                if loc < best.1 {
                    best = (Strategy::IndexLocality, loc);
                }
            }
        }
        if best.0.is_shuffle() {
            shuffles_used += 1;
        } else {
            // Property 4: once a non-shuffle strategy is chosen, only
            // baseline/cache are considered for the rest.
            shuffle_allowed = false;
        }
        total += best.1;
        choices.push(IndexChoice {
            index: j,
            strategy: best.0,
            est_cost_secs: best.1,
        });
        accessed.push(j);
    }
    OperatorPlan {
        choices,
        est_cost_secs: total,
    }
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

fn k_permutations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    if k == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in k_permutations(&rest, k - 1) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// Computes the best plan for one operator given its statistics.
pub fn optimize_operator(
    op: &OperatorStatsEstimate,
    env: &CostEnv,
    placement: Placement,
    enumeration: Enumeration,
) -> OperatorPlan {
    let m = op.indices.len();
    if m == 0 {
        return OperatorPlan {
            choices: vec![],
            est_cost_secs: 0.0,
        };
    }
    let all: Vec<usize> = (0..m).collect();
    let effective = match enumeration {
        Enumeration::Full if m <= FULL_ENUMERATE_LIMIT => Enumeration::Full,
        Enumeration::Full => Enumeration::KRepart(2),
        other => other,
    };
    match effective {
        Enumeration::Full => permutations(&all)
            .into_iter()
            .map(|order| evaluate_order(op, env, placement, &order, usize::MAX))
            .min_by(|a, b| a.est_cost_secs.total_cmp(&b.est_cost_secs))
            .expect("at least one permutation"),
        Enumeration::KRepart(k) => {
            let k = k.min(m);
            let mut best: Option<OperatorPlan> = None;
            for prefix in k_permutations(&all, k) {
                let mut order = prefix.clone();
                for j in 0..m {
                    if !prefix.contains(&j) {
                        order.push(j);
                    }
                }
                let plan = evaluate_order(op, env, placement, &order, k);
                if best
                    .as_ref()
                    .is_none_or(|b| plan.est_cost_secs < b.est_cost_secs)
                {
                    best = Some(plan);
                }
            }
            best.expect("at least one k-permutation")
        }
    }
}

/// Builds a plan forcing `strategy` on every index, degrading gracefully:
/// index locality without a partition scheme falls back to re-partitioning;
/// shuffle strategies on a non-shuffleable index fall back to cache.
pub fn forced_plan(op_caps: &[(bool, bool)], strategy: Strategy) -> OperatorPlan {
    // op_caps[j] = (shuffleable, has_partition_scheme)
    let choices = op_caps
        .iter()
        .enumerate()
        .map(|(j, &(shuffleable, scheme))| {
            let s = match strategy {
                Strategy::IndexLocality if !scheme => {
                    if shuffleable {
                        Strategy::Repartition
                    } else {
                        Strategy::Cache
                    }
                }
                Strategy::IndexLocality | Strategy::Repartition if !shuffleable => Strategy::Cache,
                s => s,
            };
            IndexChoice {
                index: j,
                strategy: s,
                est_cost_secs: 0.0,
            }
        })
        .collect();
    OperatorPlan {
        choices,
        est_cost_secs: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::testutil::{env, one_index_op};
    use crate::cost::IndexStatsEstimate;

    fn idx(siv: f64, theta: f64, miss: f64, scheme: bool) -> IndexStatsEstimate {
        IndexStatsEstimate {
            nik: 1.0,
            sik: 10.0,
            siv,
            tj_secs: 1.0e-3,
            miss_ratio: miss,
            theta,
            has_partition_scheme: scheme,
            shuffleable: true,
            partitions: if scheme { 32 } else { 0 },
            failure_rate: 0.0,
        }
    }

    #[test]
    fn single_index_picks_cache_under_high_hit_rate() {
        let env = env();
        let op = one_index_op(1.0, 500.0, 1.0e-3, 0.05, 2.0);
        let plan = optimize_operator(&op, &env, Placement::Head, Enumeration::Full);
        assert_eq!(plan.choices.len(), 1);
        assert_eq!(plan.choices[0].strategy, Strategy::Cache);
    }

    #[test]
    fn single_index_picks_repartition_under_global_duplication() {
        let env = env();
        // All cache misses (no locality) but heavy global duplication.
        let op = one_index_op(1.0, 500.0, 1.0e-3, 1.0, 10.0);
        let plan = optimize_operator(&op, &env, Placement::Body, Enumeration::Full);
        assert!(plan.choices[0].strategy.is_shuffle());
    }

    #[test]
    fn property4_shuffles_come_first() {
        let env = env();
        let mut op = one_index_op(1.0, 500.0, 1.0e-3, 1.0, 10.0);
        // Add a cache-friendly index and a baseline-ish one.
        op.indices.push(idx(100.0, 1.0, 0.05, false));
        op.indices.push(idx(50.0, 1.0, 1.0, false));
        let plan = optimize_operator(&op, &env, Placement::Body, Enumeration::Full);
        let mut seen_non_shuffle = false;
        for c in &plan.choices {
            if c.strategy.is_shuffle() {
                assert!(!seen_non_shuffle, "shuffle after non-shuffle: {plan:?}");
            } else {
                seen_non_shuffle = true;
            }
        }
    }

    #[test]
    fn full_and_krepart_agree_when_one_shuffle_suffices() {
        let env = env();
        let mut op = one_index_op(1.0, 500.0, 1.0e-3, 1.0, 10.0);
        op.indices.push(idx(100.0, 1.0, 0.05, false));
        let full = optimize_operator(&op, &env, Placement::Body, Enumeration::Full);
        let k1 = optimize_operator(&op, &env, Placement::Body, Enumeration::KRepart(1));
        assert!((full.est_cost_secs - k1.est_cost_secs).abs() < 1e-9);
    }

    #[test]
    fn krepart_never_beats_full() {
        let env = env();
        let mut op = one_index_op(1.0, 2000.0, 1.0e-3, 1.0, 8.0);
        op.indices.push(idx(1500.0, 6.0, 1.0, true));
        op.indices.push(idx(100.0, 1.0, 0.5, false));
        let full = optimize_operator(&op, &env, Placement::Body, Enumeration::Full);
        for k in 0..=3 {
            let kp = optimize_operator(&op, &env, Placement::Body, Enumeration::KRepart(k));
            assert!(
                kp.est_cost_secs >= full.est_cost_secs - 1e-9,
                "k={k}: {} < {}",
                kp.est_cost_secs,
                full.est_cost_secs
            );
        }
    }

    #[test]
    fn index_locality_requires_scheme() {
        let env = env();
        let mut op = one_index_op(1.0, 30_000.0, 1.0e-4, 1.0, 2.0);
        op.indices[0].has_partition_scheme = false;
        let plan = optimize_operator(&op, &env, Placement::Head, Enumeration::Full);
        assert_ne!(plan.choices[0].strategy, Strategy::IndexLocality);
        op.indices[0].has_partition_scheme = true;
        let plan = optimize_operator(&op, &env, Placement::Head, Enumeration::Full);
        assert_eq!(plan.choices[0].strategy, Strategy::IndexLocality);
    }

    #[test]
    fn forced_plan_fallbacks() {
        let plan = forced_plan(
            &[(true, true), (true, false), (false, false)],
            Strategy::IndexLocality,
        );
        assert_eq!(plan.choices[0].strategy, Strategy::IndexLocality);
        assert_eq!(plan.choices[1].strategy, Strategy::Repartition);
        assert_eq!(plan.choices[2].strategy, Strategy::Cache);
        let plan = forced_plan(&[(false, false)], Strategy::Repartition);
        assert_eq!(plan.choices[0].strategy, Strategy::Cache);
    }

    #[test]
    fn empty_operator_plan() {
        let env = env();
        let op = OperatorStatsEstimate {
            n1: 0.0,
            s1: 0.0,
            spre: 0.0,
            spost: 0.0,
            smap: 0.0,
            indices: vec![],
        };
        let plan = optimize_operator(&op, &env, Placement::Head, Enumeration::Full);
        assert!(plan.choices.is_empty());
        assert_eq!(plan.est_cost_secs, 0.0);
    }

    #[test]
    fn permutation_counts() {
        assert_eq!(permutations(&[0, 1, 2]).len(), 6);
        assert_eq!(k_permutations(&[0, 1, 2, 3], 2).len(), 12);
        assert_eq!(k_permutations(&[0, 1], 0).len(), 1);
    }
}
