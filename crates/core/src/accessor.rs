//! The index accessor interface and the cost-charging lookup wrapper.
//!
//! An [`IndexAccessor`] is "implemented once for each type of index and can
//! be reused" (§2). EFind treats the index as a black box: `lookup` does
//! the real work, `serve_time` reports the modeled index-side latency `T_j`
//! (Table 1), and `partition_scheme` optionally exposes how the index is
//! partitioned — the hook that enables the index locality strategy (§3.4):
//! *"The partition scheme of an index can be communicated to EFind by
//! implementing a partition method and setting a flag in the class of
//! IndexAccessor."*

use std::sync::Arc;

use efind_cluster::{NetworkModel, NodeId, SimDuration};
use efind_common::{Datum, KeyKind};
use efind_mapreduce::{CounterHandle, TaskCtx};

/// How a distributed index is partitioned, and where partitions live.
pub trait PartitionScheme: Send + Sync {
    /// Number of partitions.
    fn num_partitions(&self) -> usize;
    /// Partition owning `key`.
    fn partition_of(&self, key: &Datum) -> usize;
    /// Replica hosts of a partition.
    fn hosts(&self, partition: usize) -> Vec<NodeId>;
}

/// A selectively accessible side data source (the paper's broad "index").
pub trait IndexAccessor: Send + Sync {
    /// Stable name used in counters and reports.
    fn name(&self) -> &str;

    /// Looks up `key`, returning the (possibly empty) list of values.
    /// Must be idempotent for the duration of a job (§3.2's assumption).
    fn lookup(&self, key: &Datum) -> Vec<Datum>;

    /// Modeled index-side service time `T_j` for one lookup, excluding
    /// network transfer (which EFind charges itself).
    fn serve_time(&self, key: &Datum, result_bytes: u64) -> SimDuration;

    /// The index's partition scheme, if it exposes one. Returning `Some`
    /// is the flag that makes the index eligible for index locality.
    fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
        None
    }

    /// Whether `lookup` is a pure function of its key for the duration of
    /// a job. Accessors backed by mutable or sampled sources return
    /// `false`; the static analyzer then emits `EF012` and the adaptive
    /// runtime disables mid-job result reuse (§3.2's idempotence
    /// assumption).
    fn deterministic(&self) -> bool {
        true
    }

    /// The key kind this accessor accepts. [`KeyKind::Any`] (the default)
    /// opts out of static key-type checking; a concrete kind lets the
    /// analyzer flag mismatched operators with `EF007`.
    fn key_kind(&self) -> KeyKind {
        KeyKind::Any
    }
}

/// How a lookup's network leg is charged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupMode {
    /// The task may run anywhere; the lookup always crosses the network
    /// (baseline, cache, and re-partitioning strategies).
    Remote,
    /// Index-locality: the service time is always paid, but the network
    /// leg becomes an affinity penalty — charged only if the scheduler
    /// fails to place the task on an index partition host.
    Local,
}

/// Wraps an accessor with cost charging and statistics counters.
///
/// Every EFind strategy funnels lookups through this wrapper so the
/// counters of §4.2 (`Nik`, `Sik`, `Siv`, `T_j` samples, FM distinct
/// sketches) are collected uniformly.
pub struct ChargedLookup {
    accessor: Arc<dyn IndexAccessor>,
    network: NetworkModel,
    /// Counter prefix, `efind.<operator>.<index>.`.
    prefix: String,
    /// Per-index counter names, resolved once at construction so the
    /// per-lookup path never formats or allocates a name.
    c_lookups: CounterHandle,
    c_sik_bytes: CounterHandle,
    c_siv_bytes: CounterHandle,
    c_tj_nanos: CounterHandle,
    c_nik: CounterHandle,
    c_key_bytes: CounterHandle,
    c_distinct: CounterHandle,
}

impl ChargedLookup {
    /// Creates a charging wrapper; `prefix` follows the
    /// `efind.<operator>.<index>.` convention. All per-lookup counter
    /// names are interned here, once.
    pub fn new(accessor: Arc<dyn IndexAccessor>, network: NetworkModel, prefix: String) -> Self {
        let h = |suffix: &str| CounterHandle::new(&format!("{prefix}{suffix}"));
        ChargedLookup {
            accessor,
            network,
            c_lookups: h("lookups"),
            c_sik_bytes: h("sik.bytes"),
            c_siv_bytes: h("siv.bytes"),
            c_tj_nanos: h("tj.nanos"),
            c_nik: h("nik"),
            c_key_bytes: h("key.bytes"),
            c_distinct: h("distinct"),
            prefix,
        }
    }

    /// The wrapped accessor.
    pub fn accessor(&self) -> &Arc<dyn IndexAccessor> {
        &self.accessor
    }

    /// The counter prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Performs one real lookup, charging virtual time and updating
    /// statistics counters on `ctx`. The result list is a shared handle
    /// suitable for caching without deep copies.
    pub fn lookup(&self, key: &Datum, mode: LookupMode, ctx: &mut TaskCtx) -> Arc<[Datum]> {
        let values: Arc<[Datum]> = self.accessor.lookup(key).into();
        let sik = key.size_bytes();
        let siv: u64 = values.iter().map(Datum::size_bytes).sum();
        let serve = self.accessor.serve_time(key, siv);
        // The remote leg pays per-request latency plus volume; a local
        // lookup (index locality hit) avoids both.
        let transfer = self.network.transfer(sik + siv);
        match mode {
            LookupMode::Remote => ctx.charge(serve + transfer),
            LookupMode::Local => {
                ctx.charge(serve);
                ctx.charge_affinity_penalty(transfer);
            }
        }
        ctx.counters.bump(self.c_lookups, 1);
        ctx.counters.bump(self.c_sik_bytes, sik as i64);
        ctx.counters.bump(self.c_siv_bytes, siv as i64);
        ctx.counters.bump(self.c_tj_nanos, serve.as_nanos() as i64);
        values
    }

    /// Records one requested key (before caching/dedup) for `Nik` and the
    /// Θ distinct-count sketch.
    pub fn note_key(&self, key: &Datum, ctx: &mut TaskCtx) {
        ctx.counters.bump(self.c_nik, 1);
        ctx.counters.bump(self.c_key_bytes, key.size_bytes() as i64);
        ctx.sketches.observe_handle(self.c_distinct, key);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use efind_common::FxHashMap;

    /// A simple in-memory accessor for unit tests.
    pub struct MemIndex {
        pub name: String,
        pub data: FxHashMap<Datum, Vec<Datum>>,
        pub serve: SimDuration,
        pub scheme: Option<Arc<dyn PartitionScheme>>,
    }

    impl MemIndex {
        pub fn new(name: &str, pairs: Vec<(Datum, Vec<Datum>)>) -> Self {
            MemIndex {
                name: name.into(),
                data: pairs.into_iter().collect(),
                serve: SimDuration::from_micros(100),
                scheme: None,
            }
        }
    }

    impl IndexAccessor for MemIndex {
        fn name(&self) -> &str {
            &self.name
        }
        fn lookup(&self, key: &Datum) -> Vec<Datum> {
            self.data.get(key).cloned().unwrap_or_default()
        }
        fn serve_time(&self, _key: &Datum, _result_bytes: u64) -> SimDuration {
            self.serve
        }
        fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
            self.scheme.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::MemIndex;
    use super::*;

    fn charged() -> ChargedLookup {
        let idx = MemIndex::new(
            "users",
            vec![(Datum::Int(1), vec![Datum::Text("alice".into())])],
        );
        ChargedLookup::new(Arc::new(idx), NetworkModel::gigabit(), "efind.op.0.".into())
    }

    #[test]
    fn remote_lookup_charges_serve_plus_transfer() {
        let cl = charged();
        let mut ctx = TaskCtx::new(0);
        let vals = cl.lookup(&Datum::Int(1), LookupMode::Remote, &mut ctx);
        assert_eq!(vals[..], [Datum::Text("alice".into())]);
        assert!(ctx.charged() >= SimDuration::from_micros(100));
        assert_eq!(ctx.affinity_penalty(), SimDuration::ZERO);
        assert_eq!(ctx.counters.get("efind.op.0.lookups"), 1);
        assert!(ctx.counters.get("efind.op.0.siv.bytes") > 0);
    }

    #[test]
    fn local_mode_moves_transfer_to_penalty() {
        let cl = charged();
        let mut remote_ctx = TaskCtx::new(0);
        cl.lookup(&Datum::Int(1), LookupMode::Remote, &mut remote_ctx);
        let mut local_ctx = TaskCtx::new(0);
        cl.lookup(&Datum::Int(1), LookupMode::Local, &mut local_ctx);
        assert!(local_ctx.charged() < remote_ctx.charged());
        assert!(local_ctx.affinity_penalty() > SimDuration::ZERO);
        assert_eq!(
            local_ctx.charged() + local_ctx.affinity_penalty(),
            remote_ctx.charged()
        );
    }

    #[test]
    fn missing_key_returns_empty() {
        let cl = charged();
        let mut ctx = TaskCtx::new(0);
        assert!(cl
            .lookup(&Datum::Int(99), LookupMode::Remote, &mut ctx)
            .is_empty());
        assert_eq!(ctx.counters.get("efind.op.0.siv.bytes"), 0);
    }

    #[test]
    fn per_lookup_counter_path_is_allocation_free() {
        // Acceptance criterion: once a ChargedLookup has resolved its
        // handles, 10k lookups + key notes must not grow the intern
        // table — i.e. the per-lookup counter path allocates no names.
        let cl = charged();
        let mut ctx = TaskCtx::new(0);
        cl.lookup(&Datum::Int(1), LookupMode::Remote, &mut ctx);
        cl.note_key(&Datum::Int(1), &mut ctx);
        let before = efind_common::intern::table_len();
        for i in 0..10_000i64 {
            let key = Datum::Int(i % 7);
            cl.note_key(&key, &mut ctx);
            cl.lookup(&key, LookupMode::Remote, &mut ctx);
        }
        assert_eq!(efind_common::intern::table_len(), before);
        assert_eq!(ctx.counters.get("efind.op.0.lookups"), 10_001);
        assert_eq!(ctx.counters.get("efind.op.0.nik"), 10_001);
    }

    #[test]
    fn note_key_feeds_nik_and_sketch() {
        let cl = charged();
        let mut ctx = TaskCtx::new(0);
        for i in 0..10 {
            cl.note_key(&Datum::Int(i % 5), &mut ctx);
        }
        assert_eq!(ctx.counters.get("efind.op.0.nik"), 10);
        let distinct = ctx.sketches.estimate("efind.op.0.distinct");
        assert!((3.0..=8.0).contains(&distinct), "distinct={distinct}");
    }
}
