//! The index accessor interface and the cost-charging lookup wrapper.
//!
//! An [`IndexAccessor`] is "implemented once for each type of index and can
//! be reused" (§2). EFind treats the index as a black box: `lookup` does
//! the real work, `serve_time` reports the modeled index-side latency `T_j`
//! (Table 1), and `partition_scheme` optionally exposes how the index is
//! partitioned — the hook that enables the index locality strategy (§3.4):
//! *"The partition scheme of an index can be communicated to EFind by
//! implementing a partition method and setting a flag in the class of
//! IndexAccessor."*

use std::sync::Arc;

use crate::fault::{Breaker, FaultConfig, FaultKind, FaultPlan, MissPolicy, RetryPolicy};
use efind_cluster::{CorruptionPlan, NetworkModel, NodeId, SimDuration};
use efind_common::{Datum, KeyKind};
use efind_mapreduce::{CounterHandle, TaskCtx};

/// How a distributed index is partitioned, and where partitions live.
pub trait PartitionScheme: Send + Sync {
    /// Number of partitions.
    fn num_partitions(&self) -> usize;
    /// Partition owning `key`.
    fn partition_of(&self, key: &Datum) -> usize;
    /// Replica hosts of a partition.
    fn hosts(&self, partition: usize) -> Vec<NodeId>;
}

/// Outcome of a fallible lookup: distinguishes "the key is absent" from
/// "the service failed", which an infallible `Vec` return conflates into
/// an empty result.
#[derive(Clone, Debug, PartialEq)]
pub enum LookupResult {
    /// The service answered; the list may legitimately be empty.
    Hit(Vec<Datum>),
    /// The service answered: the key has no entry.
    Miss,
    /// The service failed to answer (connection/service error). Fed into
    /// the retry path and counted separately from misses.
    Failed(String),
}

/// A selectively accessible side data source (the paper's broad "index").
pub trait IndexAccessor: Send + Sync {
    /// Stable name used in counters and reports.
    fn name(&self) -> &str;

    /// Looks up `key`, returning the (possibly empty) list of values.
    /// Must be idempotent for the duration of a job (§3.2's assumption).
    fn lookup(&self, key: &Datum) -> Vec<Datum>;

    /// Fallible lookup. The default wraps [`lookup`](Self::lookup) in
    /// [`LookupResult::Hit`] — infallible accessors need no change.
    /// Accessors that can distinguish absent keys (or fail) override this
    /// so misses and failures land in separate counters.
    fn try_lookup(&self, key: &Datum) -> LookupResult {
        LookupResult::Hit(self.lookup(key))
    }

    /// Modeled index-side service time `T_j` for one lookup, excluding
    /// network transfer (which EFind charges itself).
    fn serve_time(&self, key: &Datum, result_bytes: u64) -> SimDuration;

    /// The index's partition scheme, if it exposes one. Returning `Some`
    /// is the flag that makes the index eligible for index locality.
    fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
        None
    }

    /// Whether `lookup` is a pure function of its key for the duration of
    /// a job. Accessors backed by mutable or sampled sources return
    /// `false`; the static analyzer then emits `EF012` and the adaptive
    /// runtime disables mid-job result reuse (§3.2's idempotence
    /// assumption).
    fn deterministic(&self) -> bool {
        true
    }

    /// The key kind this accessor accepts. [`KeyKind::Any`] (the default)
    /// opts out of static key-type checking; a concrete kind lets the
    /// analyzer flag mismatched operators with `EF007`.
    fn key_kind(&self) -> KeyKind {
        KeyKind::Any
    }
}

/// Which attempts of a hedged lookup pay virtual time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HedgePolicy {
    /// Only the winning attempt's wall time is charged: the loser is
    /// cancelled for free the instant the first answer lands (the
    /// optimistic tail-latency model).
    #[default]
    ChargeWinner,
    /// The winner's wall time plus the loser's spent time are charged:
    /// the losing attempt's work is real resource usage the index side
    /// performed before the cancel arrived.
    ChargeBoth,
}

/// Configuration of hedged index lookups: after `threshold` of modeled
/// latency, a backup request races the primary against a different
/// replica / partition side and the first answer wins.
///
/// Hedging is a *virtual-cost race*: exactly one real
/// [`IndexAccessor::try_lookup`] runs either way (the accessor is
/// idempotent for the job, §3.2, so both attempts would return the same
/// bytes), which keeps hedged answers bit-identical to unhedged ones.
/// Only the charged virtual time — and the `hedge.*` counters — differ.
/// With `threshold: None` the layer is quiet: [`ChargedLookup`] installs
/// no state and takes the literal plain path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Seed for the backup attempt's latency draw.
    pub seed: u64,
    /// Modeled primary latency after which the backup fires. `None`
    /// disables hedging entirely.
    pub threshold: Option<SimDuration>,
    /// How the losing attempt is charged.
    pub policy: HedgePolicy,
}

impl HedgeConfig {
    /// The disabled (quiet) configuration.
    pub fn disabled() -> Self {
        HedgeConfig::default()
    }

    /// True when lookups actually hedge.
    pub fn is_armed(&self) -> bool {
        self.threshold.is_some()
    }
}

/// How a lookup's network leg is charged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupMode {
    /// The task may run anywhere; the lookup always crosses the network
    /// (baseline, cache, and re-partitioning strategies).
    Remote,
    /// Index-locality: the service time is always paid, but the network
    /// leg becomes an affinity penalty — charged only if the scheduler
    /// fails to place the task on an index partition host.
    Local,
}

/// Wraps an accessor with cost charging and statistics counters.
///
/// Every EFind strategy funnels lookups through this wrapper so the
/// counters of §4.2 (`Nik`, `Sik`, `Siv`, `T_j` samples, FM distinct
/// sketches) are collected uniformly.
pub struct ChargedLookup {
    accessor: Arc<dyn IndexAccessor>,
    network: NetworkModel,
    /// Counter prefix, `efind.<operator>.<index>.`.
    prefix: String,
    /// Fault-tolerance state; `None` keeps the plain, zero-overhead path.
    fault: Option<FaultState>,
    /// Hedged-lookup state; `None` keeps the plain, race-free path.
    hedge: Option<HedgeState>,
    /// Corruption plan for response verification; a quiet plan keeps the
    /// plain, checksum-free path.
    corruption: CorruptionPlan,
    /// Per-index counter names, resolved once at construction so the
    /// per-lookup path never formats or allocates a name.
    c_lookups: CounterHandle,
    c_sik_bytes: CounterHandle,
    c_siv_bytes: CounterHandle,
    c_tj_nanos: CounterHandle,
    c_nik: CounterHandle,
    c_key_bytes: CounterHandle,
    c_distinct: CounterHandle,
    c_misses: CounterHandle,
    c_f_failures: CounterHandle,
    c_f_timeouts: CounterHandle,
    c_f_slowdowns: CounterHandle,
    c_f_retries: CounterHandle,
    c_f_backoff_nanos: CounterHandle,
    c_f_exhausted: CounterHandle,
    c_f_degraded: CounterHandle,
    c_i_refetch: CounterHandle,
    c_h_fired: CounterHandle,
    c_h_wins: CounterHandle,
    c_h_loser_nanos: CounterHandle,
}

/// The per-index slice of [`FaultConfig`] installed in a wrapper.
struct FaultState {
    plan: FaultPlan,
    retry: RetryPolicy,
    timeout: Option<SimDuration>,
    miss_policy: MissPolicy,
    breaker_threshold: f64,
    breaker_min_samples: u64,
    breaker_cooldown: Option<SimDuration>,
}

/// The resolved hedging state of a wrapper: only an armed [`HedgeConfig`]
/// installs one. The partition scheme is resolved once at install so the
/// per-lookup race never re-queries the accessor.
struct HedgeState {
    seed: u64,
    threshold: SimDuration,
    policy: HedgePolicy,
    /// The index's partition scheme, when it exposes one: the backup
    /// attempt races against the *other* partition side of the key, so
    /// its latency draw is keyed by that side.
    scheme: Option<Arc<dyn PartitionScheme>>,
}

impl ChargedLookup {
    /// Creates a charging wrapper; `prefix` follows the
    /// `efind.<operator>.<index>.` convention. All per-lookup counter
    /// names are interned here, once.
    pub fn new(accessor: Arc<dyn IndexAccessor>, network: NetworkModel, prefix: String) -> Self {
        let h = |suffix: &str| CounterHandle::new(&format!("{prefix}{suffix}"));
        ChargedLookup {
            accessor,
            network,
            fault: None,
            hedge: None,
            c_lookups: h("lookups"),
            c_sik_bytes: h("sik.bytes"),
            c_siv_bytes: h("siv.bytes"),
            c_tj_nanos: h("tj.nanos"),
            c_nik: h("nik"),
            c_key_bytes: h("key.bytes"),
            c_distinct: h("distinct"),
            c_misses: h("misses"),
            c_f_failures: h("fault.failures"),
            c_f_timeouts: h("fault.timeouts"),
            c_f_slowdowns: h("fault.slowdowns"),
            c_f_retries: h("fault.retries"),
            c_f_backoff_nanos: h("fault.backoff.nanos"),
            c_f_exhausted: h("fault.exhausted"),
            c_f_degraded: h("fault.degraded"),
            c_i_refetch: h("integrity.refetch"),
            c_h_fired: h("hedge.fired"),
            c_h_wins: h("hedge.wins"),
            c_h_loser_nanos: h("hedge.loser.nanos"),
            corruption: CorruptionPlan::none(),
            prefix,
        }
    }

    /// Installs the fault layer. The config is classified once here via
    /// [`FaultConfig::layer_state`]: a `Quiet` config — no plan, or a
    /// configured-but-quiet plan with no per-index timeout — leaves the
    /// wrapper on the plain path, so per-lookup fault draws, breaker
    /// bookkeeping, and timeout checks cost literally nothing. Only an
    /// `Armed` config (nonzero rates, or any timeout alongside a plan)
    /// installs [`FaultState`] and routes lookups through the guarded path.
    pub fn with_faults(mut self, config: &FaultConfig) -> Self {
        if !config.layer_state().is_armed() {
            self.fault = None;
            return self;
        }
        if let Some(plan) = config.plan {
            self.fault = Some(FaultState {
                plan,
                retry: config.retry,
                timeout: config.timeout,
                miss_policy: config.miss_policy.clone(),
                breaker_threshold: config.breaker_threshold(),
                breaker_min_samples: config.breaker_min_samples,
                breaker_cooldown: config.breaker_cooldown,
            });
        }
        self
    }

    /// Installs the corruption plan for response verification. A plan that
    /// does not corrupt responses (or has verification disabled) keeps the
    /// wrapper on the plain path.
    pub fn with_corruption(mut self, plan: &CorruptionPlan) -> Self {
        self.corruption = plan.clone();
        self
    }

    /// Installs the hedging layer. A disabled config (`threshold: None`)
    /// installs no state, so the wrapper keeps the literal plain path —
    /// not a single draw, comparison, or counter bump per lookup.
    pub fn with_hedging(mut self, config: &HedgeConfig) -> Self {
        self.hedge = config.threshold.map(|threshold| HedgeState {
            seed: config.seed,
            threshold,
            policy: config.policy,
            scheme: self.accessor.partition_scheme(),
        });
        self
    }

    /// True when lookups race a hedged backup past the threshold.
    pub fn hedges(&self) -> bool {
        self.hedge.is_some()
    }

    /// A fresh per-task circuit breaker, or `None` when the fault layer is
    /// not installed. Each mapper/reducer instance owns its breaker so
    /// degradation decisions never couple concurrent tasks.
    pub fn new_breaker(&self) -> Option<Breaker> {
        self.fault.as_ref().map(|f| {
            Breaker::new(f.breaker_threshold, f.breaker_min_samples)
                .with_cooldown(f.breaker_cooldown)
        })
    }

    /// The wrapped accessor.
    pub fn accessor(&self) -> &Arc<dyn IndexAccessor> {
        &self.accessor
    }

    /// The counter prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Performs one real lookup, charging virtual time and updating
    /// statistics counters on `ctx`. The result list is a shared handle
    /// suitable for caching without deep copies.
    pub fn lookup(&self, key: &Datum, mode: LookupMode, ctx: &mut TaskCtx) -> Arc<[Datum]> {
        self.lookup_guarded(key, mode, ctx, None)
    }

    /// [`lookup`](Self::lookup) with an optional per-task circuit breaker.
    /// Call sites that own a breaker (one per mapper/reducer instance)
    /// route through here; with no fault layer installed this is exactly
    /// the plain lookup path.
    pub fn lookup_guarded(
        &self,
        key: &Datum,
        mode: LookupMode,
        ctx: &mut TaskCtx,
        breaker: Option<&mut Breaker>,
    ) -> Arc<[Datum]> {
        match &self.fault {
            None => self.lookup_plain(key, mode, ctx),
            Some(fault) => self.lookup_faulty(fault, key, mode, ctx, breaker),
        }
    }

    /// Splits a lookup's cost between task time and affinity penalty.
    fn charge_split(
        &self,
        mode: LookupMode,
        ctx: &mut TaskCtx,
        serve: SimDuration,
        transfer: SimDuration,
    ) {
        // The remote leg pays per-request latency plus volume; a local
        // lookup (index locality hit) avoids both.
        match mode {
            LookupMode::Remote => ctx.charge(serve + transfer),
            LookupMode::Local => {
                ctx.charge(serve);
                ctx.charge_affinity_penalty(transfer);
            }
        }
    }

    /// Charges one *completed* lookup round trip, racing a hedged backup
    /// when the layer is armed and the primary's modeled latency exceeds
    /// the threshold. Exactly one real lookup happened either way — the
    /// race only decides how much virtual time the answer cost:
    ///
    /// * the backup fires at `threshold` against the other partition side
    ///   of the key (or another replica) and completes after a seeded
    ///   draw of its own latency,
    /// * the first answer wins the wall clock,
    /// * the loser's spent time is recorded — and, under
    ///   [`HedgePolicy::ChargeBoth`], charged on top.
    ///
    /// Index-locality lookups ([`LookupMode::Local`]) never hedge: their
    /// slow leg is the placement penalty, not index-side latency, and
    /// hedging it would double-charge the affinity machinery. Failed and
    /// timed-out attempts never reach this path.
    fn charge_completed(
        &self,
        key: &Datum,
        mode: LookupMode,
        ctx: &mut TaskCtx,
        serve: SimDuration,
        transfer: SimDuration,
    ) {
        let hedge = match &self.hedge {
            Some(h) if mode == LookupMode::Remote => h,
            _ => return self.charge_split(mode, ctx, serve, transfer),
        };
        let primary = serve + transfer;
        if primary <= hedge.threshold {
            return self.charge_split(mode, ctx, serve, transfer);
        }
        ctx.counters.bump(self.c_h_fired, 1);
        let mut payload = Vec::new();
        key.encode_into(&mut payload);
        // Key the backup's latency draw by the *other* partition side of
        // the key (unpartitioned indexes hedge against another replica of
        // the single side), so the two attempts see independent latency.
        if let Some(scheme) = &hedge.scheme {
            let n = scheme.num_partitions().max(1);
            let side = (scheme.partition_of(key) + 1) % n;
            payload.extend_from_slice(&(side as u64).to_le_bytes());
        }
        let draw = efind_common::det::draw_unit(hedge.seed, "hedge.backup", &payload);
        let backup = hedge.threshold + primary.mul_f64(draw);
        let wall = primary.min(backup);
        let loser_spent = if backup < primary {
            // Backup won: the primary ran from t=0 until the backup's
            // answer cancelled it.
            ctx.counters.bump(self.c_h_wins, 1);
            backup
        } else {
            // Primary won: the backup ran from the threshold until the
            // primary's answer cancelled it.
            primary.saturating_sub(hedge.threshold)
        };
        ctx.counters
            .bump(self.c_h_loser_nanos, loser_spent.as_nanos() as i64);
        match hedge.policy {
            HedgePolicy::ChargeWinner => ctx.charge(wall),
            HedgePolicy::ChargeBoth => ctx.charge(wall + loser_spent),
        }
    }

    /// Bumps the four per-lookup statistics counters of §4.2.
    fn bump_lookup_counters(&self, ctx: &mut TaskCtx, sik: u64, siv: u64, serve: SimDuration) {
        ctx.counters.bump(self.c_lookups, 1);
        ctx.counters.bump(self.c_sik_bytes, sik as i64);
        ctx.counters.bump(self.c_siv_bytes, siv as i64);
        ctx.counters.bump(self.c_tj_nanos, serve.as_nanos() as i64);
    }

    /// Verifies a completed response against the corruption plan: each
    /// corrupted transfer fails its checksum and is re-fetched, paying the
    /// full serve + transfer cost again. The draw is keyed by attempt
    /// number, so a re-fetch can itself be corrupted; rates below 1.0
    /// terminate with probability 1 and identical answers either way —
    /// response corruption costs virtual time, never correctness. Quiet
    /// or unverified plans return without a single draw.
    fn verify_response(
        &self,
        key: &Datum,
        mode: LookupMode,
        ctx: &mut TaskCtx,
        serve: SimDuration,
        transfer: SimDuration,
    ) {
        if !self.corruption.verifies_responses() {
            return;
        }
        let mut kb = Vec::new();
        key.encode_into(&mut kb);
        let mut attempt: u32 = 0;
        while self.corruption.response_corrupt(&self.prefix, &kb, attempt) {
            self.charge_split(mode, ctx, serve, transfer);
            ctx.counters.bump(self.c_i_refetch, 1);
            attempt += 1;
        }
    }

    /// The fault-free path; byte-for-byte the pre-fault-layer behavior for
    /// accessors whose `try_lookup` never reports a miss or failure.
    fn lookup_plain(&self, key: &Datum, mode: LookupMode, ctx: &mut TaskCtx) -> Arc<[Datum]> {
        let sik = key.size_bytes();
        match self.accessor.try_lookup(key) {
            LookupResult::Hit(values) => {
                let values: Arc<[Datum]> = values.into();
                let siv: u64 = values.iter().map(Datum::size_bytes).sum();
                let serve = self.accessor.serve_time(key, siv);
                let transfer = self.network.transfer(sik + siv);
                self.charge_completed(key, mode, ctx, serve, transfer);
                self.bump_lookup_counters(ctx, sik, siv, serve);
                self.verify_response(key, mode, ctx, serve, transfer);
                values
            }
            LookupResult::Miss => {
                // A miss is a completed round trip with an empty answer;
                // it costs the same as an empty hit but is counted apart.
                let serve = self.accessor.serve_time(key, 0);
                let transfer = self.network.transfer(sik);
                self.charge_completed(key, mode, ctx, serve, transfer);
                self.bump_lookup_counters(ctx, sik, 0, serve);
                ctx.counters.bump(self.c_misses, 1);
                self.verify_response(key, mode, ctx, serve, transfer);
                Vec::new().into()
            }
            LookupResult::Failed(_) => {
                // Without a fault layer there is no retry budget: charge
                // the failed round trip, count it, and surface an empty
                // result (the historical silent behavior, now visible).
                let serve = self.accessor.serve_time(key, 0);
                self.charge_split(mode, ctx, serve, self.network.transfer(sik));
                ctx.counters.bump(self.c_f_failures, 1);
                Vec::new().into()
            }
        }
    }

    /// The guarded path: injects faults from the plan, retries with
    /// virtual-time backoff, enforces the per-index timeout, and degrades
    /// through the breaker / miss policy. The real accessor is consulted
    /// only on attempts the plan lets through, so a lookup is
    /// exactly-once-effective no matter how many attempts it takes.
    fn lookup_faulty(
        &self,
        fault: &FaultState,
        key: &Datum,
        mode: LookupMode,
        ctx: &mut TaskCtx,
        mut breaker: Option<&mut Breaker>,
    ) -> Arc<[Datum]> {
        let now = ctx.charged();
        if breaker.as_deref_mut().is_some_and(|b| b.blocks_at(now)) {
            ctx.counters.bump(self.c_f_degraded, 1);
            return self.miss_result(fault, key, ctx);
        }
        let sik = key.size_bytes();
        let mut attempt: u32 = 0;
        loop {
            let kind = fault.plan.outcome(&self.prefix, key, attempt);
            match kind {
                FaultKind::Fail => {
                    // A refused/errored request still pays the request
                    // latency and the outbound key bytes.
                    let serve = self.accessor.serve_time(key, 0);
                    self.charge_split(mode, ctx, serve, self.network.transfer(sik));
                    ctx.counters.bump(self.c_f_failures, 1);
                }
                FaultKind::Timeout => {
                    // A hung request costs the full timeout budget (or the
                    // would-be round trip when no timeout is configured).
                    let serve = self.accessor.serve_time(key, 0);
                    let wait = fault.timeout.unwrap_or(serve + self.network.transfer(sik));
                    ctx.charge(wait);
                    ctx.counters.bump(self.c_f_timeouts, 1);
                }
                FaultKind::Ok | FaultKind::Slow => match self.accessor.try_lookup(key) {
                    LookupResult::Hit(values) => {
                        let values: Arc<[Datum]> = values.into();
                        let siv: u64 = values.iter().map(Datum::size_bytes).sum();
                        let mut serve = self.accessor.serve_time(key, siv);
                        if kind == FaultKind::Slow {
                            serve = serve.mul_f64(fault.plan.slowdown_factor);
                        }
                        let transfer = self.network.transfer(sik + siv);
                        if fault.timeout.is_some_and(|t| serve + transfer > t) {
                            // Too slow: the caller gives up at the
                            // deadline; the answer is discarded.
                            ctx.charge(fault.timeout.unwrap_or(SimDuration::ZERO));
                            ctx.counters.bump(self.c_f_timeouts, 1);
                        } else {
                            if kind == FaultKind::Slow {
                                ctx.counters.bump(self.c_f_slowdowns, 1);
                            }
                            self.charge_completed(key, mode, ctx, serve, transfer);
                            self.bump_lookup_counters(ctx, sik, siv, serve);
                            self.verify_response(key, mode, ctx, serve, transfer);
                            if let Some(b) = breaker.as_deref_mut() {
                                b.record_at(true, ctx.charged());
                            }
                            return values;
                        }
                    }
                    LookupResult::Miss => {
                        let mut serve = self.accessor.serve_time(key, 0);
                        if kind == FaultKind::Slow {
                            serve = serve.mul_f64(fault.plan.slowdown_factor);
                            ctx.counters.bump(self.c_f_slowdowns, 1);
                        }
                        let transfer = self.network.transfer(sik);
                        self.charge_completed(key, mode, ctx, serve, transfer);
                        self.bump_lookup_counters(ctx, sik, 0, serve);
                        ctx.counters.bump(self.c_misses, 1);
                        self.verify_response(key, mode, ctx, serve, transfer);
                        if let Some(b) = breaker.as_deref_mut() {
                            b.record_at(true, ctx.charged());
                        }
                        return Vec::new().into();
                    }
                    LookupResult::Failed(_) => {
                        let serve = self.accessor.serve_time(key, 0);
                        self.charge_split(mode, ctx, serve, self.network.transfer(sik));
                        ctx.counters.bump(self.c_f_failures, 1);
                    }
                },
            }
            // The attempt failed (injected or real). Update the breaker,
            // then either retry on the virtual clock or give up.
            if let Some(b) = breaker.as_deref_mut() {
                b.record_at(false, ctx.charged());
                if b.blocks_at(ctx.charged()) {
                    ctx.counters.bump(self.c_f_degraded, 1);
                    return self.miss_result(fault, key, ctx);
                }
            }
            if attempt >= fault.retry.max_retries {
                ctx.counters.bump(self.c_f_exhausted, 1);
                return self.miss_result(fault, key, ctx);
            }
            let pause = fault.retry.backoff(attempt);
            ctx.charge(pause);
            ctx.counters.bump(self.c_f_retries, 1);
            ctx.counters
                .bump(self.c_f_backoff_nanos, pause.as_nanos() as i64);
            attempt += 1;
        }
    }

    /// Resolves a given-up lookup through the miss policy.
    fn miss_result(&self, fault: &FaultState, key: &Datum, ctx: &mut TaskCtx) -> Arc<[Datum]> {
        match &fault.miss_policy {
            MissPolicy::Skip => Vec::new().into(),
            MissPolicy::Default(datum) => vec![datum.clone()].into(),
            MissPolicy::FailJob => {
                ctx.fail(format!(
                    "{}lookup for key {key:?} failed after exhausting retries",
                    self.prefix
                ));
                Vec::new().into()
            }
        }
    }

    /// Records one requested key (before caching/dedup) for `Nik` and the
    /// Θ distinct-count sketch.
    pub fn note_key(&self, key: &Datum, ctx: &mut TaskCtx) {
        ctx.counters.bump(self.c_nik, 1);
        ctx.counters.bump(self.c_key_bytes, key.size_bytes() as i64);
        ctx.sketches.observe_handle(self.c_distinct, key);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use efind_common::FxHashMap;

    /// A simple in-memory accessor for unit tests.
    pub struct MemIndex {
        pub name: String,
        pub data: FxHashMap<Datum, Vec<Datum>>,
        pub serve: SimDuration,
        pub scheme: Option<Arc<dyn PartitionScheme>>,
    }

    impl MemIndex {
        pub fn new(name: &str, pairs: Vec<(Datum, Vec<Datum>)>) -> Self {
            MemIndex {
                name: name.into(),
                data: pairs.into_iter().collect(),
                serve: SimDuration::from_micros(100),
                scheme: None,
            }
        }
    }

    impl IndexAccessor for MemIndex {
        fn name(&self) -> &str {
            &self.name
        }
        fn lookup(&self, key: &Datum) -> Vec<Datum> {
            self.data.get(key).cloned().unwrap_or_default()
        }
        fn serve_time(&self, _key: &Datum, _result_bytes: u64) -> SimDuration {
            self.serve
        }
        fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
            self.scheme.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::MemIndex;
    use super::*;

    fn charged() -> ChargedLookup {
        let idx = MemIndex::new(
            "users",
            vec![(Datum::Int(1), vec![Datum::Text("alice".into())])],
        );
        ChargedLookup::new(Arc::new(idx), NetworkModel::gigabit(), "efind.op.0.".into())
    }

    #[test]
    fn remote_lookup_charges_serve_plus_transfer() {
        let cl = charged();
        let mut ctx = TaskCtx::new(0);
        let vals = cl.lookup(&Datum::Int(1), LookupMode::Remote, &mut ctx);
        assert_eq!(vals[..], [Datum::Text("alice".into())]);
        assert!(ctx.charged() >= SimDuration::from_micros(100));
        assert_eq!(ctx.affinity_penalty(), SimDuration::ZERO);
        assert_eq!(ctx.counters.get("efind.op.0.lookups"), 1);
        assert!(ctx.counters.get("efind.op.0.siv.bytes") > 0);
    }

    #[test]
    fn local_mode_moves_transfer_to_penalty() {
        let cl = charged();
        let mut remote_ctx = TaskCtx::new(0);
        cl.lookup(&Datum::Int(1), LookupMode::Remote, &mut remote_ctx);
        let mut local_ctx = TaskCtx::new(0);
        cl.lookup(&Datum::Int(1), LookupMode::Local, &mut local_ctx);
        assert!(local_ctx.charged() < remote_ctx.charged());
        assert!(local_ctx.affinity_penalty() > SimDuration::ZERO);
        assert_eq!(
            local_ctx.charged() + local_ctx.affinity_penalty(),
            remote_ctx.charged()
        );
    }

    #[test]
    fn missing_key_returns_empty() {
        let cl = charged();
        let mut ctx = TaskCtx::new(0);
        assert!(cl
            .lookup(&Datum::Int(99), LookupMode::Remote, &mut ctx)
            .is_empty());
        assert_eq!(ctx.counters.get("efind.op.0.siv.bytes"), 0);
    }

    #[test]
    fn per_lookup_counter_path_is_allocation_free() {
        // Acceptance criterion: once a ChargedLookup has resolved its
        // handles, 10k lookups + key notes must not grow the intern
        // table — i.e. the per-lookup counter path allocates no names.
        let cl = charged();
        let mut ctx = TaskCtx::new(0);
        cl.lookup(&Datum::Int(1), LookupMode::Remote, &mut ctx);
        cl.note_key(&Datum::Int(1), &mut ctx);
        let before = efind_common::intern::table_len();
        for i in 0..10_000i64 {
            let key = Datum::Int(i % 7);
            cl.note_key(&key, &mut ctx);
            cl.lookup(&key, LookupMode::Remote, &mut ctx);
        }
        assert_eq!(efind_common::intern::table_len(), before);
        assert_eq!(ctx.counters.get("efind.op.0.lookups"), 10_001);
        assert_eq!(ctx.counters.get("efind.op.0.nik"), 10_001);
    }

    #[test]
    fn note_key_feeds_nik_and_sketch() {
        let cl = charged();
        let mut ctx = TaskCtx::new(0);
        for i in 0..10 {
            cl.note_key(&Datum::Int(i % 5), &mut ctx);
        }
        assert_eq!(ctx.counters.get("efind.op.0.nik"), 10);
        let distinct = ctx.sketches.estimate("efind.op.0.distinct");
        assert!((3.0..=8.0).contains(&distinct), "distinct={distinct}");
    }

    fn charged_with(config: FaultConfig) -> ChargedLookup {
        let idx = MemIndex::new(
            "users",
            vec![(Datum::Int(1), vec![Datum::Text("alice".into())])],
        );
        ChargedLookup::new(Arc::new(idx), NetworkModel::gigabit(), "efind.op.0.".into())
            .with_faults(&config)
    }

    #[test]
    fn quiet_fault_plan_is_observably_identical_to_plain_path() {
        let plain = charged();
        let quiet = charged_with(FaultConfig::disabled().with_plan(FaultPlan::new(5)));
        let mut a = TaskCtx::new(0);
        let mut b = TaskCtx::new(0);
        for i in 0..200i64 {
            let key = Datum::Int(i % 3);
            let va = plain.lookup(&key, LookupMode::Remote, &mut a);
            let vb = quiet.lookup_guarded(&key, LookupMode::Remote, &mut b, None);
            assert_eq!(va[..], vb[..]);
        }
        assert_eq!(a.charged(), b.charged());
        for c in ["lookups", "sik.bytes", "siv.bytes", "tj.nanos"] {
            let name = format!("efind.op.0.{c}");
            assert_eq!(a.counters.get(&name), b.counters.get(&name), "{c}");
        }
        assert_eq!(b.counters.get("efind.op.0.fault.failures"), 0);
        assert_eq!(b.counters.get("efind.op.0.fault.retries"), 0);
    }

    #[test]
    fn quiet_config_installs_no_fault_state_or_breaker() {
        // The tentpole contract: a configured-but-quiet fault layer is
        // classified Quiet once at install time, so the wrapper carries no
        // FaultState, hands out no breaker, and lookup_guarded dispatches
        // straight to the plain path.
        let quiet = charged_with(FaultConfig::disabled().with_plan(FaultPlan::new(5)));
        assert!(quiet.fault.is_none());
        assert!(quiet.new_breaker().is_none());
        // A per-index timeout re-arms the layer even under a quiet plan:
        // timeouts bound real serve times, not just injected ones.
        let mut timed = FaultConfig::disabled().with_plan(FaultPlan::new(5));
        timed.timeout = Some(SimDuration::from_micros(50));
        let armed = charged_with(timed);
        assert!(armed.fault.is_some());
        assert!(armed.new_breaker().is_some());
    }

    #[test]
    fn exhausted_retries_follow_the_miss_policy_and_charge_backoff() {
        let mut config = FaultConfig::disabled().with_plan(FaultPlan::new(1).failures(1.0));
        config.miss_policy = MissPolicy::Default(Datum::Text("fallback".into()));
        let cl = charged_with(config);
        let mut ctx = TaskCtx::new(0);
        let vals = cl.lookup(&Datum::Int(1), LookupMode::Remote, &mut ctx);
        assert_eq!(vals[..], [Datum::Text("fallback".into())]);
        // Default policy: 3 retries → 4 failed attempts, 1+2+4 ms backoff.
        assert_eq!(ctx.counters.get("efind.op.0.fault.failures"), 4);
        assert_eq!(ctx.counters.get("efind.op.0.fault.retries"), 3);
        assert_eq!(ctx.counters.get("efind.op.0.fault.exhausted"), 1);
        assert_eq!(
            ctx.counters.get("efind.op.0.fault.backoff.nanos"),
            SimDuration::from_millis(7).as_nanos() as i64
        );
        assert!(ctx.charged() >= SimDuration::from_millis(7));
        // No successful lookup was recorded.
        assert_eq!(ctx.counters.get("efind.op.0.lookups"), 0);
    }

    #[test]
    fn transient_failures_recover_without_changing_results() {
        let idx = MemIndex::new(
            "users",
            (0..50)
                .map(|i| (Datum::Int(i), vec![Datum::Int(i * 2)]))
                .collect(),
        );
        let mut config = FaultConfig::disabled().with_plan(FaultPlan::new(17).failures(0.4));
        // Deep retry budget: exhaustion probability 0.4^17 per key.
        config.retry = RetryPolicy::bounded(
            16,
            SimDuration::from_micros(100),
            SimDuration::from_millis(10),
        );
        let cl = ChargedLookup::new(Arc::new(idx), NetworkModel::gigabit(), "efind.op.0.".into())
            .with_faults(&config);
        let mut ctx = TaskCtx::new(0);
        for i in 0..50 {
            let vals = cl.lookup(&Datum::Int(i), LookupMode::Remote, &mut ctx);
            assert_eq!(vals[..], [Datum::Int(i * 2)], "key {i}");
        }
        assert_eq!(ctx.counters.get("efind.op.0.lookups"), 50);
        assert!(ctx.counters.get("efind.op.0.fault.retries") > 0);
        assert_eq!(ctx.counters.get("efind.op.0.fault.exhausted"), 0);
        assert!(ctx.error().is_none());
    }

    #[test]
    fn open_breaker_short_circuits_to_degraded_lookups() {
        let mut config = FaultConfig::disabled().with_plan(FaultPlan::new(2).failures(1.0));
        config.retry = RetryPolicy::none();
        config.breaker_threshold_x1000 = 200;
        config.breaker_min_samples = 4;
        let cl = charged_with(config);
        let mut breaker = cl.new_breaker();
        let mut ctx = TaskCtx::new(0);
        for i in 0..10i64 {
            let vals = cl.lookup_guarded(
                &Datum::Int(i),
                LookupMode::Remote,
                &mut ctx,
                breaker.as_mut(),
            );
            assert!(vals.is_empty());
        }
        // Lookups 1–3 exhaust their (empty) retry budget; lookup 4 trips
        // the breaker mid-flight; 5–10 short-circuit without an attempt.
        assert_eq!(ctx.counters.get("efind.op.0.fault.failures"), 4);
        assert_eq!(ctx.counters.get("efind.op.0.fault.exhausted"), 3);
        assert_eq!(ctx.counters.get("efind.op.0.fault.degraded"), 7);
        assert!(breaker.unwrap().is_open());
    }

    #[test]
    fn fail_job_miss_policy_reports_through_the_task_context() {
        let mut config = FaultConfig::disabled().with_plan(FaultPlan::new(3).failures(1.0));
        config.retry = RetryPolicy::none();
        config.miss_policy = MissPolicy::FailJob;
        let cl = charged_with(config);
        let mut ctx = TaskCtx::new(0);
        let vals = cl.lookup(&Datum::Int(1), LookupMode::Remote, &mut ctx);
        assert!(vals.is_empty());
        let err = ctx.error().expect("FailJob must surface a task error");
        assert!(err.contains("efind.op.0."), "{err}");
    }

    #[test]
    fn per_index_timeout_bounds_slow_lookups() {
        // The MemIndex serves in 100 µs; a 50 µs deadline can never be
        // met, so every attempt times out and the lookup degrades.
        let mut config = FaultConfig::disabled().with_plan(FaultPlan::new(4));
        config.timeout = Some(SimDuration::from_micros(50));
        let cl = charged_with(config);
        let mut ctx = TaskCtx::new(0);
        let vals = cl.lookup(&Datum::Int(1), LookupMode::Remote, &mut ctx);
        assert!(vals.is_empty());
        assert_eq!(ctx.counters.get("efind.op.0.fault.timeouts"), 4);
        assert_eq!(ctx.counters.get("efind.op.0.fault.exhausted"), 1);
        assert_eq!(ctx.counters.get("efind.op.0.lookups"), 0);
    }

    struct FlakyIndex {
        inner: MemIndex,
        misses: bool,
    }

    impl IndexAccessor for FlakyIndex {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn lookup(&self, key: &Datum) -> Vec<Datum> {
            self.inner.lookup(key)
        }
        fn try_lookup(&self, key: &Datum) -> LookupResult {
            if self.misses && !self.inner.data.contains_key(key) {
                LookupResult::Miss
            } else if !self.misses {
                LookupResult::Failed("service unavailable".into())
            } else {
                LookupResult::Hit(self.lookup(key))
            }
        }
        fn serve_time(&self, key: &Datum, result_bytes: u64) -> SimDuration {
            self.inner.serve_time(key, result_bytes)
        }
    }

    #[test]
    fn quiet_corruption_plan_is_observably_identical_to_plain_path() {
        let plain = charged();
        let quiet = charged().with_corruption(&CorruptionPlan::new(9));
        let mut a = TaskCtx::new(0);
        let mut b = TaskCtx::new(0);
        for i in 0..100i64 {
            let key = Datum::Int(i % 3);
            let va = plain.lookup(&key, LookupMode::Remote, &mut a);
            let vb = quiet.lookup(&key, LookupMode::Remote, &mut b);
            assert_eq!(va[..], vb[..]);
        }
        assert_eq!(a.charged(), b.charged());
        assert_eq!(b.counters.get("efind.op.0.integrity.refetch"), 0);
    }

    #[test]
    fn response_corruption_costs_refetch_time_but_not_answers() {
        let plain = charged();
        let noisy = charged().with_corruption(&CorruptionPlan::new(9).responses(0.5));
        let mut a = TaskCtx::new(0);
        let mut b = TaskCtx::new(0);
        for i in 0..100i64 {
            let key = Datum::Int(i % 3);
            let va = plain.lookup(&key, LookupMode::Remote, &mut a);
            let vb = noisy.lookup(&key, LookupMode::Remote, &mut b);
            assert_eq!(
                va[..],
                vb[..],
                "a corrupt transfer must never change the answer"
            );
        }
        // Checksum failures re-transfer: strictly more virtual time, same
        // lookup statistics, and every re-fetch shows up in the counter.
        assert!(b.charged() > a.charged());
        assert_eq!(
            a.counters.get("efind.op.0.lookups"),
            b.counters.get("efind.op.0.lookups")
        );
        assert!(b.counters.get("efind.op.0.integrity.refetch") > 0);
    }

    #[test]
    fn response_corruption_without_verification_is_inert() {
        let plain = charged();
        let blind = charged()
            .with_corruption(&CorruptionPlan::new(9).responses(0.9).without_verification());
        let mut a = TaskCtx::new(0);
        let mut b = TaskCtx::new(0);
        for i in 0..50i64 {
            let key = Datum::Int(i % 3);
            plain.lookup(&key, LookupMode::Remote, &mut a);
            blind.lookup(&key, LookupMode::Remote, &mut b);
        }
        assert_eq!(a.charged(), b.charged());
        assert_eq!(b.counters.get("efind.op.0.integrity.refetch"), 0);
    }

    #[test]
    fn quiet_hedge_config_is_the_literal_plain_path() {
        let plain = charged();
        let quiet = charged().with_hedging(&HedgeConfig::disabled());
        assert!(!quiet.hedges());
        let mut a = TaskCtx::new(0);
        let mut b = TaskCtx::new(0);
        for i in 0..100i64 {
            let key = Datum::Int(i % 3);
            let va = plain.lookup(&key, LookupMode::Remote, &mut a);
            let vb = quiet.lookup(&key, LookupMode::Remote, &mut b);
            assert_eq!(va[..], vb[..]);
        }
        assert_eq!(a.charged(), b.charged());
        assert_eq!(a.counters.iter_sorted(), b.counters.iter_sorted());
        assert_eq!(b.counters.get("efind.op.0.hedge.fired"), 0);
    }

    #[test]
    fn hedged_answers_are_bit_identical_and_only_costs_move() {
        let plain = charged();
        let hedged = charged().with_hedging(&HedgeConfig {
            seed: 42,
            // The MemIndex serves in 100 µs, so every remote lookup
            // crosses the threshold and fires a backup.
            threshold: Some(SimDuration::from_micros(10)),
            policy: HedgePolicy::ChargeWinner,
        });
        assert!(hedged.hedges());
        let mut a = TaskCtx::new(0);
        let mut b = TaskCtx::new(0);
        for i in 0..50i64 {
            let key = Datum::Int(i % 3);
            let va = plain.lookup(&key, LookupMode::Remote, &mut a);
            let vb = hedged.lookup(&key, LookupMode::Remote, &mut b);
            assert_eq!(va[..], vb[..], "hedging must never change the answer");
        }
        assert_eq!(b.counters.get("efind.op.0.hedge.fired"), 50);
        // A winner-charged race can only ever be as slow as the primary.
        assert!(b.charged() <= a.charged());
        // Lookup statistics (§4.2) are identical either way.
        for c in ["lookups", "sik.bytes", "siv.bytes", "tj.nanos", "misses"] {
            let name = format!("efind.op.0.{c}");
            assert_eq!(a.counters.get(&name), b.counters.get(&name), "{c}");
        }
    }

    #[test]
    fn hedge_below_threshold_never_fires() {
        let hedged = charged().with_hedging(&HedgeConfig {
            seed: 42,
            threshold: Some(SimDuration::from_secs(1)),
            policy: HedgePolicy::ChargeWinner,
        });
        let plain = charged();
        let mut a = TaskCtx::new(0);
        let mut b = TaskCtx::new(0);
        for i in 0..20i64 {
            plain.lookup(&Datum::Int(i % 3), LookupMode::Remote, &mut a);
            hedged.lookup(&Datum::Int(i % 3), LookupMode::Remote, &mut b);
        }
        assert_eq!(b.counters.get("efind.op.0.hedge.fired"), 0);
        assert_eq!(a.charged(), b.charged());
    }

    #[test]
    fn charge_both_pays_for_the_loser() {
        let mk = |policy| {
            charged().with_hedging(&HedgeConfig {
                seed: 42,
                threshold: Some(SimDuration::from_micros(10)),
                policy,
            })
        };
        let winner_only = mk(HedgePolicy::ChargeWinner);
        let both = mk(HedgePolicy::ChargeBoth);
        let mut a = TaskCtx::new(0);
        let mut b = TaskCtx::new(0);
        for i in 0..50i64 {
            let key = Datum::Int(i % 3);
            winner_only.lookup(&key, LookupMode::Remote, &mut a);
            both.lookup(&key, LookupMode::Remote, &mut b);
        }
        // Same races, same losers — only the charging policy differs.
        assert_eq!(
            a.counters.get("efind.op.0.hedge.fired"),
            b.counters.get("efind.op.0.hedge.fired")
        );
        assert_eq!(
            a.counters.get("efind.op.0.hedge.wins"),
            b.counters.get("efind.op.0.hedge.wins")
        );
        let loser = a.counters.get("efind.op.0.hedge.loser.nanos");
        assert_eq!(loser, b.counters.get("efind.op.0.hedge.loser.nanos"));
        assert!(loser > 0);
        assert_eq!(
            b.charged().as_nanos() as i64 - a.charged().as_nanos() as i64,
            loser,
            "ChargeBoth must pay exactly the losers' spent time on top"
        );
    }

    #[test]
    fn local_lookups_never_hedge() {
        let plain = charged();
        let hedged = charged().with_hedging(&HedgeConfig {
            seed: 42,
            threshold: Some(SimDuration::ZERO),
            policy: HedgePolicy::ChargeBoth,
        });
        let mut a = TaskCtx::new(0);
        let mut b = TaskCtx::new(0);
        plain.lookup(&Datum::Int(1), LookupMode::Local, &mut a);
        hedged.lookup(&Datum::Int(1), LookupMode::Local, &mut b);
        assert_eq!(a.charged(), b.charged());
        assert_eq!(a.affinity_penalty(), b.affinity_penalty());
        assert_eq!(b.counters.get("efind.op.0.hedge.fired"), 0);
    }

    #[test]
    fn hedging_is_deterministic_across_runs() {
        let run = || {
            let cl = charged().with_hedging(&HedgeConfig {
                seed: 7,
                threshold: Some(SimDuration::from_micros(10)),
                policy: HedgePolicy::ChargeBoth,
            });
            let mut ctx = TaskCtx::new(0);
            for i in 0..100i64 {
                cl.lookup(&Datum::Int(i % 5), LookupMode::Remote, &mut ctx);
            }
            (ctx.charged(), ctx.counters.iter_sorted())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn misses_and_failures_are_counted_apart() {
        let missy = FlakyIndex {
            inner: MemIndex::new("m", vec![(Datum::Int(1), vec![Datum::Int(10)])]),
            misses: true,
        };
        let cl = ChargedLookup::new(
            Arc::new(missy),
            NetworkModel::gigabit(),
            "efind.op.0.".into(),
        );
        let mut ctx = TaskCtx::new(0);
        cl.lookup(&Datum::Int(1), LookupMode::Remote, &mut ctx);
        cl.lookup(&Datum::Int(99), LookupMode::Remote, &mut ctx);
        assert_eq!(ctx.counters.get("efind.op.0.lookups"), 2);
        assert_eq!(ctx.counters.get("efind.op.0.misses"), 1);
        assert_eq!(ctx.counters.get("efind.op.0.fault.failures"), 0);

        let failing = FlakyIndex {
            inner: MemIndex::new("f", vec![]),
            misses: false,
        };
        let cl = ChargedLookup::new(
            Arc::new(failing),
            NetworkModel::gigabit(),
            "efind.op.0.".into(),
        );
        let mut ctx = TaskCtx::new(0);
        assert!(cl
            .lookup(&Datum::Int(1), LookupMode::Remote, &mut ctx)
            .is_empty());
        assert_eq!(ctx.counters.get("efind.op.0.lookups"), 0);
        assert_eq!(ctx.counters.get("efind.op.0.fault.failures"), 1);
    }
}
