//! The index operator interface.
//!
//! Mirrors Figure 2: an `IndexOperator` customizes index access at one
//! point in a MapReduce data flow. `pre_process` takes `(k1, v1)`, extracts
//! one key list per index, and may rewrite the record (projection);
//! `post_process` combines the lookup results into `(k2, v2)` outputs,
//! optionally filtering.

use std::sync::Arc;

use efind_common::{Datum, Record};
use efind_mapreduce::Collector;

/// Key lists extracted by `pre_process`, one list per index
/// (the `{{ik_1}, …, {ik_m}}` of Fig. 2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IndexInput {
    keys: Vec<Vec<Datum>>,
}

impl IndexInput {
    /// Creates key lists for `m` indices.
    pub fn new(num_indices: usize) -> Self {
        IndexInput {
            keys: vec![Vec::new(); num_indices],
        }
    }

    /// Adds a lookup key for index `j` (the paper's `iklist.put(j, key)`).
    pub fn put(&mut self, index: usize, key: impl Into<Datum>) {
        self.keys[index].push(key.into());
    }

    /// Number of indices.
    pub fn num_indices(&self) -> usize {
        self.keys.len()
    }

    /// Keys extracted for index `j`.
    pub fn keys(&self, index: usize) -> &[Datum] {
        &self.keys[index]
    }

    /// Consumes the input, returning the per-index key lists.
    pub fn into_keys(self) -> Vec<Vec<Datum>> {
        self.keys
    }
}

/// Lookup results handed to `post_process`: for each index, one value list
/// per extracted key (the `{{ik_1},{iv_1},…` of Fig. 2).
///
/// Value lists are shared handles (`Arc<[Datum]>`): a carrier hands its
/// lookup results over without deep-copying them, and cache-shared lists
/// stay shared all the way into `post_process`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IndexOutput {
    values: Vec<Vec<Arc<[Datum]>>>,
}

impl IndexOutput {
    /// Wraps per-index, per-key value lists. Accepts owned `Vec<Datum>`
    /// lists or already-shared `Arc<[Datum]>` handles.
    pub fn new<L: Into<Arc<[Datum]>>>(values: Vec<Vec<L>>) -> Self {
        IndexOutput {
            values: values
                .into_iter()
                .map(|per_key| per_key.into_iter().map(Into::into).collect())
                .collect(),
        }
    }

    /// All value lists for index `j`, one per extracted key.
    pub fn get(&self, index: usize) -> &[Arc<[Datum]>] {
        &self.values[index]
    }

    /// The value list of the first key of index `j` — the common case when
    /// `pre_process` extracts exactly one key (like the paper's
    /// `indexValues.get(0).getAll()[0]` idiom).
    pub fn first(&self, index: usize) -> &[Datum] {
        self.values[index].first().map(|v| &v[..]).unwrap_or(&[])
    }

    /// Number of indices.
    pub fn num_indices(&self) -> usize {
        self.values.len()
    }
}

/// Job-specific index access customization at one data-flow point.
pub trait IndexOperator: Send + Sync {
    /// Stable name used in counters, plans, and reports.
    fn name(&self) -> &str;

    /// Number of indices this operator accesses (`m`).
    fn num_indices(&self) -> usize;

    /// Extracts per-index lookup keys from `(k1, v1)` and may rewrite the
    /// record in place (e.g. project away fields that are no longer
    /// needed, shrinking everything downstream).
    fn pre_process(&self, rec: &mut Record, keys: &mut IndexInput);

    /// Combines the index lookup results with the (possibly rewritten)
    /// record into zero or more `(k2, v2)` outputs.
    fn post_process(&self, rec: Record, values: &IndexOutput, out: &mut dyn Collector);
}

struct FnOperator<P, Q> {
    name: String,
    num_indices: usize,
    pre: P,
    post: Q,
}

impl<P, Q> IndexOperator for FnOperator<P, Q>
where
    P: Fn(&mut Record, &mut IndexInput) + Send + Sync,
    Q: Fn(Record, &IndexOutput, &mut dyn Collector) + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }
    fn num_indices(&self) -> usize {
        self.num_indices
    }
    fn pre_process(&self, rec: &mut Record, keys: &mut IndexInput) {
        (self.pre)(rec, keys)
    }
    fn post_process(&self, rec: Record, values: &IndexOutput, out: &mut dyn Collector) {
        (self.post)(rec, values, out)
    }
}

/// Builds an [`IndexOperator`] from two closures — the lightweight way to
/// express the paper's `UserProfileIndexOperator`-style classes.
pub fn operator_fn<P, Q>(name: &str, num_indices: usize, pre: P, post: Q) -> Arc<dyn IndexOperator>
where
    P: Fn(&mut Record, &mut IndexInput) + Send + Sync + 'static,
    Q: Fn(Record, &IndexOutput, &mut dyn Collector) + Send + Sync + 'static,
{
    Arc::new(FnOperator {
        name: name.to_owned(),
        num_indices,
        pre,
        post,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_input_collects_per_index() {
        let mut input = IndexInput::new(2);
        input.put(0, 1i64);
        input.put(1, "a");
        input.put(1, "b");
        assert_eq!(input.num_indices(), 2);
        assert_eq!(input.keys(0), &[Datum::Int(1)]);
        assert_eq!(input.keys(1).len(), 2);
    }

    #[test]
    fn index_output_accessors() {
        let out = IndexOutput::new(vec![vec![vec![Datum::Int(10)]], vec![]]);
        assert_eq!(out.first(0), &[Datum::Int(10)]);
        assert_eq!(out.first(1), &[] as &[Datum]);
        assert_eq!(out.get(0).len(), 1);
    }

    #[test]
    fn fn_operator_roundtrip() {
        let op = operator_fn(
            "enrich",
            1,
            |rec, keys| {
                keys.put(0, rec.key.clone());
                rec.value = Datum::Null; // projection
            },
            |rec, values, out| {
                let looked = values.first(0).first().cloned().unwrap_or(Datum::Null);
                out.collect(Record {
                    key: rec.key,
                    value: looked,
                });
            },
        );
        assert_eq!(op.name(), "enrich");
        assert_eq!(op.num_indices(), 1);

        let mut rec = Record::new(7i64, "payload");
        let mut keys = IndexInput::new(1);
        op.pre_process(&mut rec, &mut keys);
        assert_eq!(keys.keys(0), &[Datum::Int(7)]);
        assert!(rec.value.is_null());

        let values = IndexOutput::new(vec![vec![vec![Datum::Text("hit".into())]]]);
        let mut out: Vec<Record> = Vec::new();
        op.post_process(rec, &values, &mut out);
        assert_eq!(out, vec![Record::new(7i64, "hit")]);
    }
}
