//! Statistics collection (§4.2): counter naming, extraction into cost-model
//! estimates, the catalog, and the cross-task variance gate.
//!
//! EFind's chain elements write counters under the prefixes
//! `efind.<operator>.` (operator-level sizes) and
//! `efind.<operator>.<index>.` (per-index lookup statistics), plus one FM
//! sketch per index for the distinct key count behind Θ. This module turns
//! those raw counters into [`OperatorStatsEstimate`]s and keeps them in a
//! [`Catalog`] across jobs.

use std::collections::BTreeMap;

use efind_mapreduce::{Counters, Sketches, TaskStats};

use crate::cost::{IndexStatsEstimate, OperatorStatsEstimate};

/// Structural description of an operator, needed to interpret counters.
#[derive(Clone, Debug)]
pub struct OpDescriptor {
    /// Operator name (counter prefix component).
    pub name: String,
    /// Number of indices.
    pub num_indices: usize,
    /// Whether each index exposes a partition scheme.
    pub schemes: Vec<bool>,
    /// Partition count per index (0 = none/unknown).
    pub partition_counts: Vec<usize>,
}

/// Counter name helpers — single source of truth for the naming scheme.
pub mod names {
    /// Operator-level counter `efind.<op>.<what>`.
    pub fn op(op: &str, what: &str) -> String {
        format!("efind.{op}.{what}")
    }

    /// Index-level counter `efind.<op>.<j>.<what>`.
    pub fn idx(op: &str, j: usize, what: &str) -> String {
        format!("efind.{op}.{j}.{what}")
    }

    /// The per-index charging prefix handed to `ChargedLookup`.
    pub fn idx_prefix(op: &str, j: usize) -> String {
        format!("efind.{op}.{j}.")
    }

    /// Job-level counter for the original Map's output (`Smap`).
    pub const MAPOUT_RECORDS: &str = "efind.mapout.records";
    /// Job-level counter for the original Map's output bytes.
    pub const MAPOUT_BYTES: &str = "efind.mapout.bytes";
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Extracts an operator's statistics from merged counters and sketches.
/// Returns `None` when the operator processed no input.
pub fn extract_operator_stats(
    counters: &Counters,
    sketches: &Sketches,
    desc: &OpDescriptor,
) -> Option<OperatorStatsEstimate> {
    let n1 = counters.get(&names::op(&desc.name, "n1")) as f64;
    if n1 <= 0.0 {
        return None;
    }
    let s1 = ratio(counters.get(&names::op(&desc.name, "s1.bytes")) as f64, n1);
    let spre = ratio(
        counters.get(&names::op(&desc.name, "spre.bytes")) as f64,
        n1,
    );
    let spost = ratio(
        counters.get(&names::op(&desc.name, "spost.bytes")) as f64,
        n1,
    );
    let mapout = counters.get(names::MAPOUT_BYTES) as f64;
    // Smap per operator input; if the job-level Map counter is absent
    // (map-only flows) fall back to Spost so min() terms stay meaningful.
    let smap = if mapout > 0.0 { mapout / n1 } else { spost };

    let mut indices = Vec::with_capacity(desc.num_indices);
    for j in 0..desc.num_indices {
        let nik_total = counters.get(&names::idx(&desc.name, j, "nik")) as f64;
        let lookups = counters.get(&names::idx(&desc.name, j, "lookups")) as f64;
        let key_bytes = counters.get(&names::idx(&desc.name, j, "key.bytes")) as f64;
        let siv_bytes = counters.get(&names::idx(&desc.name, j, "siv.bytes")) as f64;
        let tj_nanos = counters.get(&names::idx(&desc.name, j, "tj.nanos")) as f64;
        let irregular = counters.get(&names::idx(&desc.name, j, "nik.irregular"));

        // Miss ratio: real cache stats if the cache ran, else the shadow
        // cache sampled during baseline execution, else assume all-miss.
        let (probes, hits) = {
            let cp = counters.get(&names::idx(&desc.name, j, "cache.probes"));
            if cp > 0 {
                (
                    cp as f64,
                    counters.get(&names::idx(&desc.name, j, "cache.hits")) as f64,
                )
            } else {
                (
                    counters.get(&names::idx(&desc.name, j, "shadow.probes")) as f64,
                    counters.get(&names::idx(&desc.name, j, "shadow.hits")) as f64,
                )
            }
        };
        let miss_ratio = if probes > 0.0 {
            1.0 - hits / probes
        } else {
            1.0
        };

        // Failure rate of lookup *attempts*: injected failures and
        // timeouts over all attempts that reached the index path. Zero on
        // a healthy run (the fault counters are never created then).
        let failures = counters.get(&names::idx(&desc.name, j, "fault.failures")) as f64
            + counters.get(&names::idx(&desc.name, j, "fault.timeouts")) as f64;
        let misses = counters.get(&names::idx(&desc.name, j, "misses")) as f64;
        let attempts = lookups + misses + failures;
        let failure_rate = ratio(failures, attempts);

        let distinct = sketches.estimate(&names::idx(&desc.name, j, "distinct"));
        let theta = if distinct > 0.0 {
            (nik_total / distinct).max(1.0)
        } else {
            1.0
        };

        indices.push(IndexStatsEstimate {
            nik: ratio(nik_total, n1),
            sik: ratio(key_bytes, nik_total),
            siv: ratio(siv_bytes, lookups),
            tj_secs: ratio(tj_nanos, lookups) / 1e9,
            miss_ratio: miss_ratio.clamp(0.0, 1.0),
            theta,
            has_partition_scheme: desc.schemes.get(j).copied().unwrap_or(false),
            shuffleable: irregular == 0,
            partitions: desc.partition_counts.get(j).copied().unwrap_or(0),
            failure_rate: failure_rate.clamp(0.0, 1.0),
        });
    }
    Some(OperatorStatsEstimate {
        n1,
        s1,
        spre,
        spost,
        smap,
        indices,
    })
}

/// Algorithm 1 lines 1–3: statistics are trusted only if, for every key
/// counter, the cross-task `stddev/mean` is at most `threshold` (the paper
/// suggests 0.05; larger values accept noisier workloads).
pub fn variance_ok(tasks: &[&TaskStats], desc: &OpDescriptor, threshold: f64) -> bool {
    if tasks.len() < 2 {
        // A single sample has no variance estimate; trust it (matches the
        // central-limit argument degenerating gracefully).
        return true;
    }
    let mut counter_names = vec![names::op(&desc.name, "n1")];
    for j in 0..desc.num_indices {
        counter_names.push(names::idx(&desc.name, j, "nik"));
    }
    for cname in counter_names {
        let values: Vec<f64> = tasks
            .iter()
            .map(|t| t.counters.get(&cname) as f64)
            .collect();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        if mean <= 0.0 {
            continue;
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        if var.sqrt() / mean > threshold {
            return false;
        }
    }
    true
}

/// Shared `key=value` token vocabulary for the line-oriented statistics
/// formats: the catalog ("efind-catalog v1") and the cross-job statistics
/// store ("efind-statstore v1") serialize [`OperatorStatsEstimate`]s with
/// the same tokens, so the two files stay mutually readable by eye and by
/// one pair of parsers.
pub(crate) mod tokens {
    use crate::cost::{IndexStatsEstimate, OperatorStatsEstimate};

    /// Parses one `key=value` token when `key` matches.
    pub fn kv<T: std::str::FromStr>(tok: &str, key: &str) -> Option<T> {
        tok.strip_prefix(key)
            .and_then(|s| s.strip_prefix('='))
            .and_then(|s| s.parse().ok())
    }

    /// Operator-level tokens (`n1= s1= spre= spost= smap=`).
    pub fn op_line(op: &OperatorStatsEstimate) -> String {
        format!(
            "n1={} s1={} spre={} spost={} smap={}",
            op.n1, op.s1, op.spre, op.spost, op.smap
        )
    }

    /// Per-index tokens (`nik= sik= … fail=`).
    pub fn idx_line(idx: &IndexStatsEstimate) -> String {
        format!(
            "nik={} sik={} siv={} tj={} miss={} theta={} scheme={} shuffleable={} partitions={} fail={}",
            idx.nik,
            idx.sik,
            idx.siv,
            idx.tj_secs,
            idx.miss_ratio,
            idx.theta,
            idx.has_partition_scheme,
            idx.shuffleable,
            idx.partitions,
            idx.failure_rate,
        )
    }

    /// A zeroed operator estimate for the parsers to fill.
    pub fn blank_op() -> OperatorStatsEstimate {
        OperatorStatsEstimate {
            n1: 0.0,
            s1: 0.0,
            spre: 0.0,
            spost: 0.0,
            smap: 0.0,
            indices: Vec::new(),
        }
    }

    /// A default index estimate for the parsers to fill.
    pub fn blank_idx() -> IndexStatsEstimate {
        IndexStatsEstimate {
            nik: 0.0,
            sik: 0.0,
            siv: 0.0,
            tj_secs: 0.0,
            miss_ratio: 1.0,
            theta: 1.0,
            has_partition_scheme: false,
            shuffleable: true,
            partitions: 0,
            failure_rate: 0.0,
        }
    }

    /// Applies one operator-level token; `false` = unknown key.
    pub fn apply_op(op: &mut OperatorStatsEstimate, tok: &str) -> bool {
        if let Some(v) = kv(tok, "n1") {
            op.n1 = v;
        } else if let Some(v) = kv(tok, "s1") {
            op.s1 = v;
        } else if let Some(v) = kv(tok, "spre") {
            op.spre = v;
        } else if let Some(v) = kv(tok, "spost") {
            op.spost = v;
        } else if let Some(v) = kv(tok, "smap") {
            op.smap = v;
        } else {
            return false;
        }
        true
    }

    /// Applies one per-index token; `false` = unknown key.
    pub fn apply_idx(idx: &mut IndexStatsEstimate, tok: &str) -> bool {
        if let Some(v) = kv(tok, "nik") {
            idx.nik = v;
        } else if let Some(v) = kv(tok, "sik") {
            idx.sik = v;
        } else if let Some(v) = kv(tok, "siv") {
            idx.siv = v;
        } else if let Some(v) = kv(tok, "tj") {
            idx.tj_secs = v;
        } else if let Some(v) = kv(tok, "miss") {
            idx.miss_ratio = v;
        } else if let Some(v) = kv(tok, "theta") {
            idx.theta = v;
        } else if let Some(v) = kv(tok, "scheme") {
            idx.has_partition_scheme = v;
        } else if let Some(v) = kv(tok, "shuffleable") {
            idx.shuffleable = v;
        } else if let Some(v) = kv(tok, "partitions") {
            idx.partitions = v;
        } else if let Some(v) = kv(tok, "fail") {
            idx.failure_rate = v;
        } else {
            return false;
        }
        true
    }
}

/// The statistics catalog (Fig. 8): operator statistics persisted across
/// jobs, keyed by operator name.
#[derive(Default)]
pub struct Catalog {
    /// Keyed by operator name; a `BTreeMap` so [`Catalog::to_text`]
    /// serializes in sorted order without a collect-and-sort pass.
    ops: BTreeMap<String, OperatorStatsEstimate>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (replaces) an operator's statistics.
    pub fn put(&mut self, name: &str, stats: OperatorStatsEstimate) {
        self.ops.insert(name.to_owned(), stats);
    }

    /// Fetches an operator's statistics.
    pub fn get(&self, name: &str) -> Option<&OperatorStatsEstimate> {
        self.ops.get(name)
    }

    /// True if statistics exist for every listed operator.
    pub fn covers<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> bool {
        names.into_iter().all(|n| self.ops.contains_key(n))
    }

    /// Harvests statistics for `descs` from merged job counters/sketches.
    pub fn absorb(&mut self, counters: &Counters, sketches: &Sketches, descs: &[OpDescriptor]) {
        for desc in descs {
            if let Some(stats) = extract_operator_stats(counters, sketches, desc) {
                self.put(&desc.name, stats);
            }
        }
    }

    /// Serializes the catalog to a line-oriented text format, so
    /// statistics survive across runtimes (the paper's catalog persists
    /// between jobs, Fig. 8).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("efind-catalog v1\n");
        for (name, op) in &self.ops {
            let _ = writeln!(s, "op {name} {}", tokens::op_line(op));
            for idx in &op.indices {
                let _ = writeln!(s, "  idx {}", tokens::idx_line(idx));
            }
        }
        s
    }

    /// Parses a catalog previously produced by [`Catalog::to_text`].
    pub fn from_text(text: &str) -> Result<Catalog, efind_common::Error> {
        use efind_common::Error;
        let parse_err = |line: &str| Error::Decode(format!("catalog: bad line `{line}`"));
        let mut lines = text.lines();
        match lines.next() {
            Some("efind-catalog v1") => {}
            other => return Err(Error::Decode(format!("catalog: bad header {other:?}"))),
        }
        let mut catalog = Catalog::new();
        let mut current: Option<(String, OperatorStatsEstimate)> = None;
        for line in lines {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix("op ") {
                if let Some((name, op)) = current.take() {
                    catalog.put(&name, op);
                }
                let mut toks = rest.split_whitespace();
                let name = toks.next().ok_or_else(|| parse_err(line))?.to_owned();
                let mut op = tokens::blank_op();
                for tok in toks {
                    if !tokens::apply_op(&mut op, tok) {
                        return Err(parse_err(line));
                    }
                }
                current = Some((name, op));
            } else if let Some(rest) = trimmed.strip_prefix("idx ") {
                let (_, op) = current.as_mut().ok_or_else(|| parse_err(line))?;
                let mut idx = tokens::blank_idx();
                for tok in rest.split_whitespace() {
                    if !tokens::apply_idx(&mut idx, tok) {
                        return Err(parse_err(line));
                    }
                }
                op.indices.push(idx);
            } else {
                return Err(parse_err(line));
            }
        }
        if let Some((name, op)) = current.take() {
            catalog.put(&name, op);
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efind_common::Datum;

    fn desc() -> OpDescriptor {
        OpDescriptor {
            name: "op".into(),
            num_indices: 1,
            schemes: vec![true],
            partition_counts: vec![32],
        }
    }

    fn sample_counters() -> (Counters, Sketches) {
        let mut c = Counters::new();
        c.add("efind.op.n1", 1000);
        c.add("efind.op.s1.bytes", 100_000);
        c.add("efind.op.spre.bytes", 80_000);
        c.add("efind.op.spost.bytes", 60_000);
        c.add(names::MAPOUT_BYTES, 40_000);
        c.add(names::MAPOUT_RECORDS, 1000);
        c.add("efind.op.0.nik", 1000);
        c.add("efind.op.0.key.bytes", 9_000);
        c.add("efind.op.0.lookups", 500);
        c.add("efind.op.0.siv.bytes", 250_000);
        c.add("efind.op.0.tj.nanos", 500_000_000);
        c.add("efind.op.0.cache.probes", 1000);
        c.add("efind.op.0.cache.hits", 500);
        let mut s = Sketches::new();
        for i in 0..200i64 {
            s.observe("efind.op.0.distinct", &Datum::Int(i));
        }
        (c, s)
    }

    #[test]
    fn extraction_computes_averages() {
        let (c, s) = sample_counters();
        let stats = extract_operator_stats(&c, &s, &desc()).unwrap();
        assert!((stats.n1 - 1000.0).abs() < 1e-9);
        assert!((stats.s1 - 100.0).abs() < 1e-9);
        assert!((stats.spre - 80.0).abs() < 1e-9);
        assert!((stats.spost - 60.0).abs() < 1e-9);
        assert!((stats.smap - 40.0).abs() < 1e-9);
        let idx = &stats.indices[0];
        assert!((idx.nik - 1.0).abs() < 1e-9);
        assert!((idx.sik - 9.0).abs() < 1e-9);
        assert!((idx.siv - 500.0).abs() < 1e-9);
        assert!((idx.tj_secs - 1.0e-3).abs() < 1e-9);
        assert!((idx.miss_ratio - 0.5).abs() < 1e-9);
        // 1000 keys over ~200 distinct → Θ ≈ 5.
        assert!(idx.theta > 3.0 && idx.theta < 8.0, "theta={}", idx.theta);
        assert!(idx.shuffleable);
        assert!(idx.has_partition_scheme);
    }

    #[test]
    fn failure_rate_extracted_from_fault_counters() {
        let (c, s) = sample_counters();
        // Healthy run: no fault counters → rate 0.
        let stats = extract_operator_stats(&c, &s, &desc()).unwrap();
        assert_eq!(stats.indices[0].failure_rate, 0.0);

        // 500 successful lookups, 100 injected failures + 25 timeouts:
        // rate = 125 / 625.
        let (mut c, s) = sample_counters();
        c.add("efind.op.0.fault.failures", 100);
        c.add("efind.op.0.fault.timeouts", 25);
        let stats = extract_operator_stats(&c, &s, &desc()).unwrap();
        assert!((stats.indices[0].failure_rate - 0.2).abs() < 1e-9);
        // The rate survives the catalog's text round-trip.
        let mut cat = Catalog::new();
        cat.put("op", stats);
        let back = Catalog::from_text(&cat.to_text()).unwrap();
        assert!((back.get("op").unwrap().indices[0].failure_rate - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_operator_yields_none() {
        let c = Counters::new();
        let s = Sketches::new();
        assert!(extract_operator_stats(&c, &s, &desc()).is_none());
    }

    #[test]
    fn irregular_keys_block_shuffle() {
        let (mut c, s) = sample_counters();
        c.add("efind.op.0.nik.irregular", 3);
        let stats = extract_operator_stats(&c, &s, &desc()).unwrap();
        assert!(!stats.indices[0].shuffleable);
    }

    #[test]
    fn shadow_stats_used_when_cache_absent() {
        let (mut c, s) = sample_counters();
        // Wipe real cache stats, provide shadow ones.
        c.add("efind.op.0.cache.probes", -1000);
        c.add("efind.op.0.cache.hits", -500);
        c.add("efind.op.0.shadow.probes", 1000);
        c.add("efind.op.0.shadow.hits", 900);
        let stats = extract_operator_stats(&c, &s, &desc()).unwrap();
        assert!((stats.indices[0].miss_ratio - 0.1).abs() < 1e-9);
    }

    fn task_with(n1: i64) -> TaskStats {
        let mut counters = Counters::new();
        counters.add("efind.op.n1", n1);
        counters.add("efind.op.0.nik", n1);
        TaskStats {
            task_id: 0,
            input_records: 0,
            input_bytes: 0,
            output_records: 0,
            output_bytes: 0,
            compute_cost: efind_cluster::SimDuration::ZERO,
            counters,
            sketches: Sketches::new(),
        }
    }

    #[test]
    fn variance_gate() {
        let uniform: Vec<TaskStats> = (0..8).map(|_| task_with(100)).collect();
        let refs: Vec<&TaskStats> = uniform.iter().collect();
        assert!(variance_ok(&refs, &desc(), 0.05));

        let skewed: Vec<TaskStats> = (0..8).map(|i| task_with(10 + i * 50)).collect();
        let refs: Vec<&TaskStats> = skewed.iter().collect();
        assert!(!variance_ok(&refs, &desc(), 0.05));
        // A permissive threshold accepts the same data.
        assert!(variance_ok(&refs, &desc(), 10.0));
    }

    #[test]
    fn variance_gate_single_task_trusted() {
        let one = [task_with(5)];
        let refs: Vec<&TaskStats> = one.iter().collect();
        assert!(variance_ok(&refs, &desc(), 0.0));
    }

    #[test]
    fn catalog_text_roundtrip() {
        let (c, s) = sample_counters();
        let mut cat = Catalog::new();
        cat.absorb(&c, &s, &[desc()]);
        let text = cat.to_text();
        let back = Catalog::from_text(&text).unwrap();
        let a = cat.get("op").unwrap();
        let b = back.get("op").unwrap();
        assert_eq!(a.n1, b.n1);
        assert_eq!(a.spre, b.spre);
        assert_eq!(a.indices.len(), b.indices.len());
        assert_eq!(a.indices[0].theta, b.indices[0].theta);
        assert_eq!(a.indices[0].partitions, b.indices[0].partitions);
        assert_eq!(
            a.indices[0].has_partition_scheme,
            b.indices[0].has_partition_scheme
        );
        // Round-trips through text again identically.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn catalog_text_rejects_garbage() {
        assert!(Catalog::from_text("").is_err());
        assert!(Catalog::from_text("not a catalog").is_err());
        assert!(Catalog::from_text("efind-catalog v1\nbogus line").is_err());
        assert!(Catalog::from_text("efind-catalog v1\n  idx nik=1").is_err()); // idx before op
                                                                               // An empty catalog is fine.
        assert!(Catalog::from_text("efind-catalog v1\n").is_ok());
    }

    #[test]
    fn catalog_roundtrip() {
        let (c, s) = sample_counters();
        let mut cat = Catalog::new();
        assert!(!cat.covers(["op"]));
        cat.absorb(&c, &s, &[desc()]);
        assert!(cat.covers(["op"]));
        assert!(cat.get("op").is_some());
        assert!(cat.get("other").is_none());
    }
}
