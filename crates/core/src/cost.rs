//! The cost model: Table 1 terms and Equations 1–4.
//!
//! Costs are expressed in seconds of cluster-aggregate work. Because every
//! formula scales linearly with `N1` (the paper normalizes per machine, we
//! keep cluster totals), *comparisons between strategies are unaffected*;
//! for absolute comparisons against the plan-change overhead, totals are
//! divided by [`CostEnv::parallelism`], the number of concurrently working
//! slots.
//!
//! Pre/post local computation is omitted, as in the paper: *"all the index
//! access strategies pay similar local computation costs for preProcess and
//! postProcess, we can omit them in the cost analysis formulae."*

/// Where an operator sits in the data flow — determines which boundary
/// sizes the re-partitioning strategy may store between its two jobs
/// (Fig. 7's variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Before Map.
    Head,
    /// Between Map and Reduce.
    Body,
    /// After Reduce.
    Tail,
}

/// Environment constants of Table 1 measured offline or from the cluster
/// models: `BW`, `f`, `T_cache`.
#[derive(Clone, Copy, Debug)]
pub struct CostEnv {
    /// Network bandwidth between two machines, bytes/second (`BW`).
    pub bw_bytes_per_sec: f64,
    /// Average cost of storing **and** retrieving a byte from the DFS
    /// (`f`), seconds per byte.
    pub f_per_byte: f64,
    /// Average time for a probe in the lookup cache (`T_cache`), seconds.
    pub t_cache_secs: f64,
    /// Per-request network latency paid by every **remote** lookup, on
    /// top of the `(Sik+Siv)/BW` volume term. Local (index-locality)
    /// lookups avoid it.
    pub lookup_latency_secs: f64,
    /// Effective cost of pushing one byte through an *extra* shuffle
    /// (map-side spill + network + reduce-side merge). The paper's Eq. 3
    /// uses `1/BW`; the physical substrate also pays disk bandwidth on
    /// both sides, so the runtime derives this from the cluster models to
    /// keep estimates and measurements consistent.
    pub shuffle_secs_per_byte: f64,
    /// Fixed wall-clock overhead per extra MapReduce job introduced by a
    /// shuffle strategy (job startup and phase barriers). The planner
    /// charges `job_overhead_secs × parallelism` in cluster-total terms
    /// per shuffle chosen.
    pub job_overhead_secs: f64,
    /// Reduce slots concurrently working on a shuffle job's lookups
    /// (typically fewer than map slots). Shuffle-strategy lookup terms are
    /// inflated by `parallelism / reduce_parallelism` because their
    /// lookups run reduce-side.
    pub reduce_parallelism: f64,
    /// Concurrently working slots; converts cluster-total seconds into an
    /// approximate wall-clock share.
    pub parallelism: f64,
}

impl CostEnv {
    /// Transfer time of `bytes` bytes in seconds.
    pub fn transfer_secs(&self, bytes: f64) -> f64 {
        bytes / self.bw_bytes_per_sec
    }

    /// Cost-inflation factor for work done in a shuffle job's reduce
    /// phase, whose parallelism (`cap` tasks at most, if nonzero) is lower
    /// than the map-side parallelism all other terms assume.
    pub fn reduce_inflation(&self, cap: usize) -> f64 {
        let mut slots = self.reduce_parallelism.max(1.0);
        if cap > 0 {
            slots = slots.min(cap as f64);
        }
        (self.parallelism / slots).max(1.0)
    }

    /// Converts a cluster-total cost to an approximate wall-clock cost.
    pub fn wall_secs(&self, total_secs: f64) -> f64 {
        total_secs / self.parallelism.max(1.0)
    }
}

/// Per-index statistics (the Table 1 terms subscripted by `j`).
#[derive(Clone, Debug)]
pub struct IndexStatsEstimate {
    /// Average number of lookup keys per operator input record (`Nik_j`).
    pub nik: f64,
    /// Average lookup key size in bytes (`Sik_j`).
    pub sik: f64,
    /// Average result bytes per lookup key (`Siv_j`).
    pub siv: f64,
    /// Average index service time per lookup in seconds (`T_j`).
    pub tj_secs: f64,
    /// Lookup cache miss ratio (`R`).
    pub miss_ratio: f64,
    /// Average duplicates per distinct lookup key (`Θ`), ≥ 1.
    pub theta: f64,
    /// True if the index exposes a partition scheme (index locality
    /// eligible).
    pub has_partition_scheme: bool,
    /// True if every record extracted exactly one key for this index —
    /// required by the shuffle-based strategies, which group records by
    /// that key.
    pub shuffleable: bool,
    /// Number of index partitions (0 = unknown/none). Index locality's
    /// shuffle is co-partitioned with the index, so its reduce
    /// parallelism is capped by this.
    pub partitions: usize,
    /// Observed fraction of lookup attempts that fail or time out
    /// (0 = healthy). Harvested from the fault counters; drives the
    /// expected-retry inflation of every lookup term.
    pub failure_rate: f64,
}

impl IndexStatsEstimate {
    /// Bytes added to a carrier record once this index's results are
    /// attached.
    pub fn result_growth(&self) -> f64 {
        self.nik * self.siv
    }

    /// Expected attempts per successful lookup under independent retries:
    /// `1 / (1 - failure_rate)`, the mean of the geometric distribution.
    /// Exactly 1.0 for a healthy index; the rate is capped at 0.95 so a
    /// fully black-holed index stays finite (the breaker, not the cost
    /// model, handles that regime).
    pub fn retry_factor(&self) -> f64 {
        1.0 / (1.0 - self.failure_rate.clamp(0.0, 0.95))
    }
}

/// Per-operator statistics (operator-level Table 1 terms).
#[derive(Clone, Debug)]
pub struct OperatorStatsEstimate {
    /// Total records into `preProcess` across the cluster (`N1`; the paper
    /// normalizes per machine — a constant factor that cancels in
    /// comparisons).
    pub n1: f64,
    /// Average input record size (`S1`).
    pub s1: f64,
    /// Average carrier size after `preProcess` (`Spre`).
    pub spre: f64,
    /// Average `postProcess` output bytes per input (`Spost`).
    pub spost: f64,
    /// Average original-Map output bytes per operator input (`Smap`,
    /// meaningful for head operators).
    pub smap: f64,
    /// Per-index statistics in declaration order.
    pub indices: Vec<IndexStatsEstimate>,
}

impl OperatorStatsEstimate {
    /// Carrier size once the indices in `accessed` (positions into
    /// `indices`) have attached their results — the size that must be
    /// shuffled for the *next* shuffle-based index (Property 2).
    pub fn carried_size(&self, accessed: &[usize]) -> f64 {
        self.spre
            + accessed
                .iter()
                .map(|&j| self.indices[j].result_growth())
                .sum::<f64>()
    }

    /// Deterministic element-wise mean over several runs' estimates — the
    /// aggregate the cross-job statistics store serves to the planner.
    /// Numeric tokens average in slice order; `theta` keeps its `≥ 1`
    /// floor and the ratio tokens their legal ranges, so a mean of legal
    /// estimates is itself legal (EF023 relies on this). Structural fields
    /// are not statistical: partition scheme and partition count follow
    /// the most recent run, and shuffleability is the conjunction (one
    /// irregular run disqualifies the shuffle strategies). Returns `None`
    /// when `runs` is empty or the index arities disagree.
    pub fn mean_of(runs: &[&OperatorStatsEstimate]) -> Option<OperatorStatsEstimate> {
        let last = *runs.last()?;
        let arity = last.indices.len();
        if runs.iter().any(|r| r.indices.len() != arity) {
            return None;
        }
        let n = runs.len() as f64;
        let mean =
            |f: &dyn Fn(&OperatorStatsEstimate) -> f64| runs.iter().map(|r| f(r)).sum::<f64>() / n;
        let mut indices = Vec::with_capacity(arity);
        for j in 0..arity {
            let imean = |f: &dyn Fn(&IndexStatsEstimate) -> f64| mean(&|r| f(&r.indices[j]));
            indices.push(IndexStatsEstimate {
                nik: imean(&|i| i.nik),
                sik: imean(&|i| i.sik),
                siv: imean(&|i| i.siv),
                tj_secs: imean(&|i| i.tj_secs),
                miss_ratio: imean(&|i| i.miss_ratio).clamp(0.0, 1.0),
                theta: imean(&|i| i.theta).max(1.0),
                has_partition_scheme: last.indices[j].has_partition_scheme,
                shuffleable: runs.iter().all(|r| r.indices[j].shuffleable),
                partitions: last.indices[j].partitions,
                failure_rate: imean(&|i| i.failure_rate).clamp(0.0, 1.0),
            });
        }
        Some(OperatorStatsEstimate {
            n1: mean(&|r| r.n1),
            s1: mean(&|r| r.s1),
            spre: mean(&|r| r.spre),
            spost: mean(&|r| r.spost),
            smap: mean(&|r| r.smap),
            indices,
        })
    }
}

/// Eq. 1 — baseline: every key pays a remote lookup (inflated by the
/// expected retries on a faulty index).
pub fn cost_baseline(env: &CostEnv, op: &OperatorStatsEstimate, j: usize) -> f64 {
    let idx = &op.indices[j];
    op.n1 * idx.nik * (remote_lookup_secs(env, idx) + idx.tj_secs) * idx.retry_factor()
}

/// The network leg of one remote lookup: request latency plus volume.
fn remote_lookup_secs(env: &CostEnv, idx: &IndexStatsEstimate) -> f64 {
    env.lookup_latency_secs + env.transfer_secs(idx.sik + idx.siv)
}

/// Eq. 2 — lookup cache: every key pays a probe; only misses pay the
/// remote lookup.
pub fn cost_cache(env: &CostEnv, op: &OperatorStatsEstimate, j: usize) -> f64 {
    let idx = &op.indices[j];
    op.n1
        * idx.nik
        * (env.t_cache_secs
            + idx.miss_ratio * (remote_lookup_secs(env, idx) + idx.tj_secs) * idx.retry_factor())
}

/// The `S_min` boundary size of Eq. 3: the smallest intermediate the
/// re-partitioning job pair can store between its two jobs, given the
/// operator's placement. `carried` is the shuffled record size (grows with
/// earlier lookups' results, Property 2).
pub fn s_min(op: &OperatorStatsEstimate, j: usize, placement: Placement, carried: f64) -> f64 {
    let sidx_here = carried + op.indices[j].result_growth();
    match placement {
        Placement::Head => carried.min(sidx_here).min(op.spost).min(op.smap),
        Placement::Body => carried.min(sidx_here).min(op.spost),
        Placement::Tail => op.s1.min(carried),
    }
}

/// Eq. 3 — re-partitioning: shuffle the carriers, store/retrieve the
/// boundary, then one lookup per *distinct* key.
pub fn cost_repartition(
    env: &CostEnv,
    op: &OperatorStatsEstimate,
    j: usize,
    placement: Placement,
    carried: f64,
) -> f64 {
    let idx = &op.indices[j];
    let shuffle = op.n1 * carried * env.shuffle_secs_per_byte;
    let result = env.f_per_byte * op.n1 * s_min(op, j, placement, carried);
    let lookups = op.n1 * idx.nik / idx.theta.max(1.0)
        * (remote_lookup_secs(env, idx) + idx.tj_secs)
        * idx.retry_factor()
        * env.reduce_inflation(0);
    shuffle + result + lookups
}

/// Eq. 4 — index locality: like re-partitioning, but lookups are local
/// (service time only) while the carrier data is transferred to the index
/// partition hosts.
pub fn cost_index_locality(
    env: &CostEnv,
    op: &OperatorStatsEstimate,
    j: usize,
    placement: Placement,
    carried: f64,
) -> f64 {
    let idx = &op.indices[j];
    let shuffle = op.n1 * carried * env.shuffle_secs_per_byte;
    let result = env.f_per_byte * op.n1 * s_min(op, j, placement, carried);
    let lookups = op.n1 * idx.nik / idx.theta.max(1.0)
        * idx.tj_secs
        * idx.retry_factor()
        * env.reduce_inflation(idx.partitions)
        + op.n1 * env.transfer_secs(carried);
    shuffle + result + lookups
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    pub fn env() -> CostEnv {
        CostEnv {
            bw_bytes_per_sec: 125.0e6,
            f_per_byte: 2.0e-8,
            t_cache_secs: 1.0e-6,
            lookup_latency_secs: 1.0e-4,
            shuffle_secs_per_byte: 3.6e-8,
            job_overhead_secs: 0.0,
            reduce_parallelism: 48.0,
            parallelism: 96.0,
        }
    }

    pub fn one_index_op(
        nik: f64,
        siv: f64,
        tj: f64,
        miss: f64,
        theta: f64,
    ) -> OperatorStatsEstimate {
        OperatorStatsEstimate {
            n1: 1.0e6,
            s1: 100.0,
            spre: 80.0,
            spost: 60.0,
            smap: 40.0,
            indices: vec![IndexStatsEstimate {
                nik,
                sik: 10.0,
                siv,
                tj_secs: tj,
                miss_ratio: miss,
                theta,
                has_partition_scheme: true,
                shuffleable: true,
                partitions: 32,
                failure_rate: 0.0,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{env, one_index_op};
    use super::*;

    #[test]
    fn baseline_matches_hand_computation() {
        let env = env();
        let op = one_index_op(1.0, 1000.0, 1.0e-3, 1.0, 1.0);
        // N1 * Nik * (latency + (Sik+Siv)/BW + Tj)
        let expect = 1.0e6 * (1.0e-4 + 1010.0 / 125.0e6 + 1.0e-3);
        assert!((cost_baseline(&env, &op, 0) - expect).abs() < 1e-6);
    }

    #[test]
    fn cache_beats_baseline_when_hits_exist() {
        let env = env();
        let op = one_index_op(1.0, 1000.0, 1.0e-3, 0.2, 5.0);
        assert!(cost_cache(&env, &op, 0) < cost_baseline(&env, &op, 0));
    }

    #[test]
    fn cache_slightly_worse_than_baseline_when_all_miss() {
        let env = env();
        let op = one_index_op(1.0, 1000.0, 1.0e-3, 1.0, 1.0);
        let base = cost_baseline(&env, &op, 0);
        let cache = cost_cache(&env, &op, 0);
        assert!(cache > base);
        assert!((cache - base - 1.0e6 * env.t_cache_secs).abs() < 1e-6);
    }

    #[test]
    fn repartition_wins_with_high_duplication() {
        let env = env();
        let low_dup = one_index_op(1.0, 1000.0, 1.0e-3, 1.0, 1.0);
        let high_dup = one_index_op(1.0, 1000.0, 1.0e-3, 1.0, 20.0);
        let carried = low_dup.spre;
        // With Θ=1 repartitioning only adds overhead over baseline.
        assert!(
            cost_repartition(&env, &low_dup, 0, Placement::Head, carried)
                > cost_baseline(&env, &low_dup, 0)
        );
        // With Θ=20 it removes 95% of the lookups and wins.
        assert!(
            cost_repartition(&env, &high_dup, 0, Placement::Head, carried)
                < cost_baseline(&env, &high_dup, 0)
        );
    }

    #[test]
    fn theta_monotonicity() {
        let env = env();
        let mut prev = f64::MAX;
        for theta in [1.0, 2.0, 4.0, 8.0] {
            let op = one_index_op(1.0, 1000.0, 1.0e-3, 1.0, theta);
            let c = cost_repartition(&env, &op, 0, Placement::Body, op.spre);
            assert!(c < prev, "theta={theta}");
            prev = c;
        }
    }

    #[test]
    fn index_locality_beats_repartition_for_large_results() {
        let env = env();
        // 10 KB results: transferring them dominates; locality avoids it.
        let big = one_index_op(1.0, 10_000.0, 1.0e-4, 1.0, 2.0);
        let carried = big.spre;
        assert!(
            cost_index_locality(&env, &big, 0, Placement::Head, carried)
                < cost_repartition(&env, &big, 0, Placement::Head, carried)
        );
        // 10 B results with heavy dedup: after re-partitioning only one
        // remote lookup per two records remains, while locality still
        // ships every carrier to the index hosts — locality loses.
        let mut small = one_index_op(1.0, 10.0, 1.0e-4, 1.0, 2.0);
        small.spre = 20_000.0; // large carried records
        assert!(
            cost_index_locality(&env, &small, 0, Placement::Head, small.spre)
                > cost_repartition(&env, &small, 0, Placement::Head, small.spre)
        );
    }

    #[test]
    fn s_min_respects_placement() {
        let op = one_index_op(1.0, 1000.0, 1.0e-3, 1.0, 1.0);
        // Head may store the post-Map boundary (smallest, 40).
        assert_eq!(s_min(&op, 0, Placement::Head, op.spre), 40.0);
        // Body stops at Spost (60).
        assert_eq!(s_min(&op, 0, Placement::Body, op.spre), 60.0);
        // Tail considers the reduce output S1 vs Spre.
        assert_eq!(s_min(&op, 0, Placement::Tail, op.spre), 80.0);
    }

    #[test]
    fn carried_size_grows_with_earlier_results() {
        let mut op = one_index_op(1.0, 1000.0, 1.0e-3, 1.0, 1.0);
        op.indices.push(IndexStatsEstimate {
            nik: 2.0,
            sik: 8.0,
            siv: 50.0,
            tj_secs: 1.0e-4,
            miss_ratio: 1.0,
            theta: 1.0,
            has_partition_scheme: false,
            shuffleable: false,
            partitions: 0,
            failure_rate: 0.0,
        });
        assert_eq!(op.carried_size(&[]), 80.0);
        assert_eq!(op.carried_size(&[0]), 80.0 + 1000.0);
        assert_eq!(op.carried_size(&[0, 1]), 80.0 + 1000.0 + 100.0);
    }

    #[test]
    fn wall_clock_scaling() {
        let env = env();
        assert!((env.wall_secs(96.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failure_rate_inflates_every_lookup_term() {
        let env = env();
        let healthy = one_index_op(1.0, 1000.0, 1.0e-3, 1.0, 4.0);
        let mut flaky = healthy.clone();
        flaky.indices[0].failure_rate = 0.5;
        // Expected attempts double at a 50% failure rate.
        assert!((flaky.indices[0].retry_factor() - 2.0).abs() < 1e-12);
        assert!((healthy.indices[0].retry_factor() - 1.0).abs() < 1e-12);
        assert!(cost_baseline(&env, &flaky, 0) > cost_baseline(&env, &healthy, 0));
        assert!(cost_cache(&env, &flaky, 0) > cost_cache(&env, &healthy, 0));
        let carried = healthy.spre;
        assert!(
            cost_repartition(&env, &flaky, 0, Placement::Head, carried)
                > cost_repartition(&env, &healthy, 0, Placement::Head, carried)
        );
        assert!(
            cost_index_locality(&env, &flaky, 0, Placement::Head, carried)
                > cost_index_locality(&env, &healthy, 0, Placement::Head, carried)
        );
        // The inflation is capped: a black-holed index stays finite.
        flaky.indices[0].failure_rate = 1.0;
        assert!((flaky.indices[0].retry_factor() - 20.0).abs() < 1e-9);
    }
}
