//! Deterministic fault injection and tolerance for index access.
//!
//! The paper treats an index as an arbitrary remote side service (§5.2's
//! geo-IP host with injected extra delay), and a production deployment of
//! that idea must survive the service misbehaving. This module supplies
//! the three pieces the accessor path needs:
//!
//! * [`FaultPlan`] — a seeded, *deterministic* fault source. Whether a
//!   given lookup attempt fails, times out, or runs slow is a pure
//!   function of `(seed, counter prefix, key, attempt)`; no wall clock,
//!   no shared RNG state. Two runs with the same seed observe the exact
//!   same fault sequence regardless of thread interleaving, so every
//!   virtual observable stays bit-identical per seed.
//! * [`RetryPolicy`] — bounded retries with capped exponential backoff.
//!   Backoff pauses are charged to *virtual* task time through the normal
//!   [`TaskCtx::charge`](efind_mapreduce::TaskCtx::charge) path, so they
//!   flow into the earliest-finish-time schedule like any modeled cost.
//! * [`Breaker`] + [`MissPolicy`] — graceful degradation. A per-task
//!   circuit breaker opens once the observed failure ratio crosses a
//!   threshold; from then on lookups short-circuit to the configured miss
//!   policy (skip the record, substitute a default datum, or fail the
//!   job) instead of burning retries against a dead service. The adaptive
//!   runtime additionally reads the failure counters after the first map
//!   wave and pins a misbehaving operator back to the baseline strategy.
//!
//! [`FaultConfig`] bundles the knobs and threads from
//! [`EFindConfig`](crate::EFindConfig) through the compiled pipeline into
//! every [`ChargedLookup`](crate::ChargedLookup). The default config
//! injects nothing and changes nothing: with no `FaultPlan` installed the
//! accessor path is byte-for-byte the plain lookup path.

use efind_cluster::{LayerState, SimDuration};
use efind_common::{det, Datum};

/// What the fault plan decides for one lookup attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The attempt proceeds normally.
    Ok,
    /// The attempt fails outright (connection refused / service error).
    Fail,
    /// The attempt hangs until the per-index timeout expires.
    Timeout,
    /// The attempt succeeds but the service runs slow by
    /// [`FaultPlan::slowdown_factor`].
    Slow,
}

/// A seeded, deterministic per-lookup fault source (virtual-time RNG).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed; every fault decision is a pure hash of the seed and the
    /// lookup's identity.
    pub seed: u64,
    /// Probability an attempt fails outright.
    pub failure_rate: f64,
    /// Probability an attempt times out.
    pub timeout_rate: f64,
    /// Probability an attempt runs slow (but succeeds).
    pub slowdown_rate: f64,
    /// Service-time multiplier for slow attempts.
    pub slowdown_factor: f64,
}

impl FaultPlan {
    /// A quiet plan: nothing injected until rates are raised.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            failure_rate: 0.0,
            timeout_rate: 0.0,
            slowdown_rate: 0.0,
            slowdown_factor: 4.0,
        }
    }

    /// Sets the outright-failure probability.
    pub fn failures(mut self, rate: f64) -> Self {
        self.failure_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the timeout probability.
    pub fn timeouts(mut self, rate: f64) -> Self {
        self.timeout_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the slowdown probability and factor.
    pub fn slowdowns(mut self, rate: f64, factor: f64) -> Self {
        self.slowdown_rate = rate.clamp(0.0, 1.0);
        self.slowdown_factor = factor.max(1.0);
        self
    }

    /// True when no fault can ever be injected.
    pub fn is_quiet(&self) -> bool {
        self.failure_rate == 0.0 && self.timeout_rate == 0.0 && self.slowdown_rate == 0.0
    }

    /// The fault decision for one attempt: a pure function of
    /// `(seed, scope, key, attempt)`. `scope` is the per-index counter
    /// prefix, so distinct indices draw independent fault sequences even
    /// for equal keys.
    pub fn outcome(&self, scope: &str, key: &Datum, attempt: u32) -> FaultKind {
        if self.is_quiet() {
            return FaultKind::Ok;
        }
        let mut payload = Vec::with_capacity(16);
        key.encode_into(&mut payload);
        payload.extend_from_slice(&attempt.to_le_bytes());
        let u = det::draw_unit(self.seed, scope, &payload);
        if u < self.failure_rate {
            FaultKind::Fail
        } else if u < self.failure_rate + self.timeout_rate {
            FaultKind::Timeout
        } else if u < self.failure_rate + self.timeout_rate + self.slowdown_rate {
            FaultKind::Slow
        } else {
            FaultKind::Ok
        }
    }
}

/// Bounded retries with capped exponential backoff, charged to virtual
/// time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Pause before the first retry.
    pub backoff_base: SimDuration,
    /// Growth factor per retry (values below 1 clamp to a constant pause).
    pub backoff_multiplier_x1000: u32,
    /// Upper bound on a single pause.
    pub max_backoff: SimDuration,
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: SimDuration::ZERO,
            backoff_multiplier_x1000: 1000,
            max_backoff: SimDuration::ZERO,
        }
    }

    /// A bounded policy with doubling backoff from `base`.
    pub fn bounded(max_retries: u32, base: SimDuration, cap: SimDuration) -> Self {
        RetryPolicy {
            max_retries,
            backoff_base: base,
            backoff_multiplier_x1000: 2000,
            max_backoff: cap,
        }
    }

    /// The backoff multiplier as a float (stored ×1000 so the policy
    /// stays `Eq`/hashable and text-serializable without float drift).
    pub fn multiplier(&self) -> f64 {
        self.backoff_multiplier_x1000 as f64 / 1000.0
    }

    /// The virtual-time pause before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        SimDuration::exp_backoff(
            self.backoff_base,
            self.multiplier(),
            attempt,
            self.max_backoff,
        )
    }
}

impl Default for RetryPolicy {
    /// 3 retries, 1 ms doubling backoff capped at 100 ms.
    fn default() -> Self {
        RetryPolicy::bounded(
            3,
            SimDuration::from_millis(1),
            SimDuration::from_millis(100),
        )
    }
}

/// What a degraded lookup produces once retries are exhausted or the
/// breaker is open.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum MissPolicy {
    /// Return an empty result list; the operator's postProcess sees a
    /// miss and (typically) drops the record.
    #[default]
    Skip,
    /// Substitute a single default datum as the lookup result.
    Default(Datum),
    /// Abort the job with an error.
    FailJob,
}

/// The full fault-tolerance configuration threaded from
/// [`EFindConfig`](crate::EFindConfig) into every charged lookup.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// The injection plan; `None` disables the fault layer entirely
    /// (retry/timeout/breaker settings then apply only to *real* accessor
    /// failures surfaced through `try_lookup`).
    pub plan: Option<FaultPlan>,
    /// Retry policy for failed or timed-out attempts.
    pub retry: RetryPolicy,
    /// Per-index timeout: an attempt whose modeled serve + transfer time
    /// exceeds this is charged the timeout and treated as failed.
    pub timeout: Option<SimDuration>,
    /// What a lookup yields after exhaustion or an open breaker.
    pub miss_policy: MissPolicy,
    /// Failure-ratio threshold (strict `>`) above which a task's breaker
    /// opens. The default 1.0 can never be exceeded, i.e. never opens.
    pub breaker_threshold_x1000: u32,
    /// Attempts observed before the breaker may open.
    pub breaker_min_samples: u64,
    /// Half-open cooldown on the task's virtual clock: once this much
    /// charged time has passed since the trip, the breaker admits one
    /// probe lookup — success closes it (counters reset), failure re-opens
    /// it for another full cooldown. `None` (the default) preserves
    /// trip-only behavior: an open breaker stays open for the task's
    /// lifetime.
    pub breaker_cooldown: Option<SimDuration>,
    /// Per-index measured failure rate above which the adaptive runtime
    /// degrades the operator to the baseline strategy (×1000).
    pub degrade_threshold_x1000: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

impl FaultConfig {
    /// A config that injects nothing and never degrades.
    pub fn disabled() -> Self {
        FaultConfig {
            plan: None,
            retry: RetryPolicy::default(),
            timeout: None,
            miss_policy: MissPolicy::Skip,
            breaker_threshold_x1000: 1000,
            breaker_min_samples: 16,
            breaker_cooldown: None,
            degrade_threshold_x1000: 500,
        }
    }

    /// Enables injection with the given plan.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// True when the fault layer is installed in the accessor path.
    pub fn is_active(&self) -> bool {
        self.plan.is_some()
    }

    /// The layer's once-per-job classification, resolved before any
    /// per-lookup loop runs.
    ///
    /// `Quiet` when nothing this config describes can ever fire: no plan,
    /// or a plan whose rates are all zero *and* no per-index timeout (a
    /// timeout is enforced against real serve times even when the plan
    /// injects nothing, so it keeps the layer armed). Quiet configs
    /// compile down to the plain lookup path — no per-attempt hash draw,
    /// no breaker, no retry bookkeeping — which is exactly the behavior
    /// the quiet-plan bit-identity proptests pin.
    pub fn layer_state(&self) -> LayerState {
        match &self.plan {
            None => LayerState::Quiet,
            Some(plan) if plan.is_quiet() && self.timeout.is_none() => LayerState::Quiet,
            Some(_) => LayerState::Armed,
        }
    }

    /// Breaker threshold as a ratio.
    pub fn breaker_threshold(&self) -> f64 {
        self.breaker_threshold_x1000 as f64 / 1000.0
    }

    /// Adaptive degradation threshold as a ratio.
    pub fn degrade_threshold(&self) -> f64 {
        self.degrade_threshold_x1000 as f64 / 1000.0
    }
}

/// Per-task circuit breaker over one index's lookup stream.
///
/// Created per mapper/reducer instance (never shared across tasks), so a
/// task's degradation decision depends only on the lookups *it* issued —
/// deterministic regardless of task scheduling order.
#[derive(Clone, Debug)]
pub struct Breaker {
    attempts: u64,
    failures: u64,
    threshold: f64,
    min_samples: u64,
    open: bool,
    /// Half-open cooldown; `None` means trip-only (open stays open).
    cooldown: Option<SimDuration>,
    /// Task-clock instant of the most recent trip, meaningful while open.
    tripped_at: SimDuration,
    /// True while exactly one probe lookup is in flight after a cooldown.
    probing: bool,
    /// Times a probe succeeded and fully closed the breaker.
    resets: u64,
}

impl Breaker {
    /// A closed breaker opening above `threshold` (strict) after
    /// `min_samples` attempts. Without a cooldown it stays open for the
    /// task's lifetime once tripped.
    pub fn new(threshold: f64, min_samples: u64) -> Self {
        Breaker {
            attempts: 0,
            failures: 0,
            threshold,
            min_samples: min_samples.max(1),
            open: false,
            cooldown: None,
            tripped_at: SimDuration::ZERO,
            probing: false,
            resets: 0,
        }
    }

    /// Installs a half-open cooldown measured on the task's virtual
    /// clock (the accessor passes `ctx.charged()` as "now"). `None`
    /// leaves the breaker trip-only.
    pub fn with_cooldown(mut self, cooldown: Option<SimDuration>) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Records one attempt outcome at task-clock instant `now`.
    ///
    /// While probing, the outcome resolves the probe instead of feeding
    /// the ratio: success closes the breaker and resets its counters so a
    /// later trip again needs `min_samples` fresh attempts; failure
    /// re-opens it and restarts the cooldown from `now`.
    pub fn record_at(&mut self, success: bool, now: SimDuration) {
        if self.probing {
            self.probing = false;
            if success {
                self.open = false;
                self.attempts = 0;
                self.failures = 0;
                self.resets += 1;
            } else {
                self.tripped_at = now;
            }
            return;
        }
        self.attempts += 1;
        if !success {
            self.failures += 1;
        }
        if !self.open
            && self.attempts >= self.min_samples
            && self.failures as f64 > self.threshold * self.attempts as f64
        {
            self.open = true;
            self.tripped_at = now;
        }
    }

    /// Records one attempt outcome on a breaker without a cooldown.
    pub fn record(&mut self, success: bool) {
        self.record_at(success, SimDuration::ZERO);
    }

    /// Whether a lookup issued at task-clock instant `now` is blocked.
    ///
    /// An open breaker whose cooldown has elapsed flips to half-open and
    /// lets the caller's lookup through as the probe; the next
    /// [`record_at`](Self::record_at) resolves it. Without a cooldown
    /// this is exactly [`is_open`](Self::is_open).
    pub fn blocks_at(&mut self, now: SimDuration) -> bool {
        if !self.open {
            return false;
        }
        if self.probing {
            return false;
        }
        match self.cooldown {
            Some(cd) if now >= self.tripped_at + cd => {
                self.probing = true;
                false
            }
            _ => true,
        }
    }

    /// True once the failure ratio has crossed the threshold (raw open
    /// state; ignores any pending half-open probe).
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Attempts observed so far (since the last reset).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Failures observed so far (since the last reset).
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Times a half-open probe succeeded and closed the breaker.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_is_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::new(7).failures(0.3).timeouts(0.1);
        let key = Datum::Int(42);
        let a = plan.outcome("efind.op.0.", &key, 0);
        let b = plan.outcome("efind.op.0.", &key, 0);
        assert_eq!(a, b, "same (seed, scope, key, attempt) must agree");
        // Across many keys, a different seed must produce a different
        // fault sequence somewhere.
        let other = FaultPlan::new(8).failures(0.3).timeouts(0.1);
        let diverges = (0..200).any(|i| {
            let k = Datum::Int(i);
            plan.outcome("efind.op.0.", &k, 0) != other.outcome("efind.op.0.", &k, 0)
        });
        assert!(diverges);
    }

    #[test]
    fn outcome_rates_are_roughly_honored() {
        let plan = FaultPlan::new(3).failures(0.25);
        let fails = (0..4000)
            .filter(|&i| plan.outcome("s.", &Datum::Int(i), 0) == FaultKind::Fail)
            .count();
        let rate = fails as f64 / 4000.0;
        assert!((0.20..=0.30).contains(&rate), "rate={rate}");
    }

    #[test]
    fn quiet_plan_never_injects() {
        let plan = FaultPlan::new(99);
        assert!(plan.is_quiet());
        for i in 0..500 {
            assert_eq!(plan.outcome("s.", &Datum::Int(i), 0), FaultKind::Ok);
        }
    }

    #[test]
    fn attempts_draw_independent_outcomes() {
        // With a 50% failure rate some key must fail on attempt 0 and
        // succeed on a later attempt — the retry loop's whole premise.
        let plan = FaultPlan::new(11).failures(0.5);
        let recovered = (0..100).any(|i| {
            let k = Datum::Int(i);
            plan.outcome("s.", &k, 0) == FaultKind::Fail
                && plan.outcome("s.", &k, 1) == FaultKind::Ok
        });
        assert!(recovered);
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let p = RetryPolicy::bounded(5, SimDuration::from_millis(2), SimDuration::from_millis(10));
        assert_eq!(p.backoff(0), SimDuration::from_millis(2));
        assert_eq!(p.backoff(1), SimDuration::from_millis(4));
        assert_eq!(p.backoff(2), SimDuration::from_millis(8));
        assert_eq!(p.backoff(3), SimDuration::from_millis(10));
        assert_eq!(RetryPolicy::none().backoff(3), SimDuration::ZERO);
    }

    #[test]
    fn breaker_opens_after_threshold_and_min_samples() {
        let mut b = Breaker::new(0.5, 4);
        b.record(false);
        b.record(false);
        assert!(!b.is_open(), "below min samples");
        b.record(false);
        b.record(false);
        assert!(b.is_open(), "4/4 failures > 50%");

        let mut ok = Breaker::new(0.5, 4);
        for _ in 0..8 {
            ok.record(true);
            ok.record(false);
        }
        assert!(!ok.is_open(), "50% is not strictly above 50%");
        assert_eq!(ok.attempts(), 16);
        assert_eq!(ok.failures(), 8);
    }

    #[test]
    fn breaker_without_cooldown_stays_open_forever() {
        let mut b = Breaker::new(0.5, 2);
        b.record_at(false, SimDuration::from_micros(1));
        b.record_at(false, SimDuration::from_micros(2));
        assert!(b.is_open());
        // No cooldown: arbitrarily far in the future it still blocks.
        assert!(b.blocks_at(SimDuration::from_secs(3600)));
        assert!(b.is_open());
        assert_eq!(b.resets(), 0);
    }

    #[test]
    fn breaker_half_open_probe_success_closes_and_resets() {
        let cd = SimDuration::from_millis(1);
        let mut b = Breaker::new(0.5, 2).with_cooldown(Some(cd));
        b.record_at(false, SimDuration::from_micros(10));
        b.record_at(false, SimDuration::from_micros(20));
        assert!(b.is_open(), "tripped at t=20µs");
        // Inside the cooldown the breaker still blocks.
        assert!(b.blocks_at(SimDuration::from_micros(500)));
        // Past the cooldown it admits exactly one probe.
        let probe_t = SimDuration::from_micros(20) + cd;
        assert!(!b.blocks_at(probe_t), "cooldown elapsed: half-open");
        assert!(b.is_open(), "half-open is still raw-open until resolved");
        // Probe succeeds: fully closed, counters reset, reset counted.
        b.record_at(true, probe_t);
        assert!(!b.is_open());
        assert!(!b.blocks_at(probe_t));
        assert_eq!(b.attempts(), 0);
        assert_eq!(b.failures(), 0);
        assert_eq!(b.resets(), 1);
        // A later trip needs min_samples fresh attempts again.
        b.record_at(false, probe_t + cd);
        assert!(!b.is_open(), "one failure after reset is below min_samples");
    }

    #[test]
    fn breaker_half_open_probe_failure_reopens_with_fresh_cooldown() {
        let cd = SimDuration::from_millis(1);
        let mut b = Breaker::new(0.5, 2).with_cooldown(Some(cd));
        b.record_at(false, SimDuration::ZERO);
        b.record_at(false, SimDuration::ZERO);
        assert!(b.is_open());
        let probe_t = cd; // tripped at t=0, cooldown just elapsed
        assert!(!b.blocks_at(probe_t));
        // Probe fails: re-open and the cooldown restarts from the probe.
        b.record_at(false, probe_t);
        assert!(b.is_open());
        assert_eq!(b.resets(), 0);
        assert!(
            b.blocks_at(probe_t + SimDuration::from_micros(999)),
            "inside the restarted cooldown"
        );
        assert!(!b.blocks_at(probe_t + cd), "second probe after restart");
        b.record_at(true, probe_t + cd);
        assert!(!b.is_open());
        assert_eq!(b.resets(), 1);
    }

    #[test]
    fn layer_state_classification() {
        // No plan, or a configured-but-quiet plan without a timeout:
        // Quiet — the accessor keeps the plain path.
        assert_eq!(FaultConfig::disabled().layer_state(), LayerState::Quiet);
        let quiet = FaultConfig::disabled().with_plan(FaultPlan::new(7));
        assert_eq!(quiet.layer_state(), LayerState::Quiet);
        // Any nonzero rate arms the layer.
        let rates = FaultConfig::disabled().with_plan(FaultPlan::new(7).failures(0.01));
        assert_eq!(rates.layer_state(), LayerState::Armed);
        // A per-index timeout arms it even under a quiet plan: timeouts
        // bound *real* serve times, not just injected ones.
        let mut timed = FaultConfig::disabled().with_plan(FaultPlan::new(7));
        timed.timeout = Some(SimDuration::from_micros(50));
        assert_eq!(timed.layer_state(), LayerState::Armed);
        // A timeout with no plan at all stays Quiet (nothing consults it).
        let mut planless = FaultConfig::disabled();
        planless.timeout = Some(SimDuration::from_micros(50));
        assert_eq!(planless.layer_state(), LayerState::Quiet);
    }

    #[test]
    fn default_config_is_inert() {
        let cfg = FaultConfig::default();
        assert!(!cfg.is_active());
        assert_eq!(cfg.miss_policy, MissPolicy::Skip);
        let cfg = FaultConfig::disabled();
        assert!(!cfg.is_active());
        assert_eq!(cfg.breaker_threshold(), 1.0);
        assert_eq!(cfg.degrade_threshold(), 0.5);
    }
}
