//! Carrier records.
//!
//! Between an operator's `pre_process` and `post_process`, EFind threads
//! the intermediate `(k1, v1, {{ik_1},…,{ik_m}}, {{iv_1},…})` tuple of
//! Fig. 2 through the MapReduce data flow — possibly across a shuffle job
//! boundary (re-partitioning, Fig. 7). The [`Carrier`] encodes that tuple
//! as a plain record whose key is the current *routing key* (`k1`
//! normally, the lookup key `ik_j` while shuffling for index `j`), so the
//! unmodified MapReduce shuffle machinery moves it.

use std::sync::Arc;

use efind_common::{Datum, Error, Record, Result};

use crate::operator::IndexOutput;

/// Moves a shared result list into an owned `Vec`. When the handle is the
/// last reference (the common baseline/fresh-lookup case) the elements are
/// moved out; only a list still shared with a cache entry is deep-cloned —
/// exactly where the seed implementation cloned too.
fn unshare_list(mut list: Arc<[Datum]>) -> Vec<Datum> {
    match Arc::get_mut(&mut list) {
        Some(slice) => slice
            .iter_mut()
            .map(|d| std::mem::replace(d, Datum::Null))
            .collect(),
        None => list.to_vec(),
    }
}

/// The in-flight state of one record inside an index operator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Carrier {
    /// Original record key `k1`.
    pub k1: Datum,
    /// Original (possibly projected) record value `v1`.
    pub v1: Datum,
    /// Per-index lookup key lists.
    pub keys: Vec<Vec<Datum>>,
    /// Per-index lookup results; `None` until the index is accessed. Each
    /// per-key result list is a shared handle so cache hits and group
    /// fan-out don't deep-copy values.
    pub values: Vec<Option<Vec<Arc<[Datum]>>>>,
}

impl Carrier {
    /// Creates a carrier fresh out of `pre_process`.
    pub fn new(k1: Datum, v1: Datum, keys: Vec<Vec<Datum>>) -> Self {
        let m = keys.len();
        Carrier {
            k1,
            v1,
            keys,
            values: vec![None; m],
        }
    }

    /// Serializes into a record routed by `routing_key`.
    pub fn into_record(self, routing_key: Datum) -> Record {
        let keys = Datum::List(self.keys.into_iter().map(Datum::List).collect());
        let values = Datum::List(
            self.values
                .into_iter()
                .map(|v| match v {
                    None => Datum::Null,
                    Some(per_key) => Datum::List(
                        per_key
                            .into_iter()
                            .map(|list| Datum::List(unshare_list(list)))
                            .collect(),
                    ),
                })
                .collect(),
        );
        Record {
            key: routing_key,
            value: Datum::List(vec![self.k1, self.v1, keys, values]),
        }
    }

    /// Deserializes a carrier record (inverse of [`Carrier::into_record`]).
    pub fn from_record(rec: Record) -> Result<Carrier> {
        Self::from_value(rec.value)
    }

    /// Deserializes a carrier from just the payload value.
    pub fn from_value(value: Datum) -> Result<Carrier> {
        let mut parts = value
            .into_list()
            .ok_or_else(|| Error::Decode("carrier payload is not a list".into()))?;
        if parts.len() != 4 {
            return Err(Error::Decode(format!(
                "carrier payload has {} parts, expected 4",
                parts.len()
            )));
        }
        let values_raw = parts.pop().unwrap();
        let keys_raw = parts.pop().unwrap();
        let v1 = parts.pop().unwrap();
        let k1 = parts.pop().unwrap();

        let keys = keys_raw
            .into_list()
            .ok_or_else(|| Error::Decode("carrier keys are not a list".into()))?
            .into_iter()
            .map(|k| {
                k.into_list()
                    .ok_or_else(|| Error::Decode("carrier key list malformed".into()))
            })
            .collect::<Result<Vec<_>>>()?;
        let values = values_raw
            .into_list()
            .ok_or_else(|| Error::Decode("carrier values are not a list".into()))?
            .into_iter()
            .map(|v| match v {
                Datum::Null => Ok(None),
                Datum::List(per_key) => per_key
                    .into_iter()
                    .map(|pk| {
                        pk.into_list()
                            .map(Arc::from)
                            .ok_or_else(|| Error::Decode("carrier value list malformed".into()))
                    })
                    .collect::<Result<Vec<_>>>()
                    .map(Some),
                _ => Err(Error::Decode("carrier value slot malformed".into())),
            })
            .collect::<Result<Vec<_>>>()?;
        if keys.len() != values.len() {
            return Err(Error::Decode("carrier key/value arity mismatch".into()));
        }
        Ok(Carrier {
            k1,
            v1,
            keys,
            values,
        })
    }

    /// Serialized size of the record [`Carrier::into_record`] would build
    /// with `routing`, computed without building it. Fused (in-memory)
    /// stages use this to bump the same byte counters the staged pipeline
    /// derives from real intermediate records.
    pub fn record_size_bytes(&self, routing: &Datum) -> u64 {
        const LIST: u64 = 5; // Datum::List header (see Datum::size_bytes)
        let keys: u64 = LIST
            + self
                .keys
                .iter()
                .map(|list| LIST + list.iter().map(Datum::size_bytes).sum::<u64>())
                .sum::<u64>();
        let values: u64 = LIST
            + self
                .values
                .iter()
                .map(|v| match v {
                    None => Datum::Null.size_bytes(),
                    Some(per_key) => {
                        LIST + per_key
                            .iter()
                            .map(|list| LIST + list.iter().map(Datum::size_bytes).sum::<u64>())
                            .sum::<u64>()
                    }
                })
                .sum::<u64>();
        let payload = LIST + self.k1.size_bytes() + self.v1.size_bytes() + keys + values;
        routing.size_bytes() + payload
    }

    /// The single lookup key for index `j`, required by shuffle strategies
    /// (re-partitioning groups records *by* that key).
    pub fn single_key(&self, index: usize) -> Result<&Datum> {
        match self.keys[index].as_slice() {
            [k] => Ok(k),
            other => Err(Error::Unsupported(format!(
                "shuffle strategies need exactly one key per record for index {index}, found {}",
                other.len()
            ))),
        }
    }

    /// True once every index slot has results.
    pub fn complete(&self) -> bool {
        self.values.iter().all(Option::is_some)
    }

    /// Converts the filled carrier into `(record, IndexOutput)` for
    /// `post_process`.
    ///
    /// # Errors
    /// Errors if any index slot is still unfilled.
    pub fn into_post_input(self) -> Result<(Record, IndexOutput)> {
        let values = self
            .values
            .into_iter()
            .enumerate()
            .map(|(j, v)| {
                v.ok_or_else(|| {
                    Error::Internal(format!("index {j} not looked up before postProcess"))
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok((
            Record {
                key: self.k1,
                value: self.v1,
            },
            IndexOutput::new(values),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Carrier {
        let mut c = Carrier::new(
            Datum::Int(1),
            Datum::Text("v".into()),
            vec![
                vec![Datum::Int(10)],
                vec![Datum::Text("a".into()), Datum::Text("b".into())],
            ],
        );
        c.values[0] = Some(vec![vec![Datum::Int(100), Datum::Int(200)].into()]);
        c
    }

    #[test]
    fn roundtrip_through_record() {
        let c = sample();
        let rec = c.clone().into_record(Datum::Int(10));
        assert_eq!(rec.key, Datum::Int(10));
        let back = Carrier::from_record(rec).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn unfilled_slots_survive_roundtrip() {
        let c = sample();
        let back = Carrier::from_record(c.clone().into_record(Datum::Null)).unwrap();
        assert_eq!(back.values[0], c.values[0]);
        assert_eq!(back.values[1], None);
        assert!(!back.complete());
    }

    #[test]
    fn record_size_matches_built_record() {
        let mut c = sample();
        for routing in [Datum::Int(10), Datum::Text("route".into()), Datum::Null] {
            assert_eq!(
                c.record_size_bytes(&routing),
                c.clone().into_record(routing.clone()).size_bytes(),
            );
        }
        c.values[1] = Some(vec![Vec::new().into(), vec![Datum::Int(1)].into()]);
        assert_eq!(
            c.record_size_bytes(&Datum::Int(3)),
            c.clone().into_record(Datum::Int(3)).size_bytes(),
        );
    }

    #[test]
    fn single_key_enforced() {
        let c = sample();
        assert_eq!(c.single_key(0).unwrap(), &Datum::Int(10));
        assert!(c.single_key(1).is_err());
    }

    #[test]
    fn post_input_requires_complete() {
        let mut c = sample();
        assert!(c.clone().into_post_input().is_err());
        c.values[1] = Some(vec![Vec::new().into(), vec![Datum::Int(1)].into()]);
        let (rec, out) = c.into_post_input().unwrap();
        assert_eq!(rec, Record::new(1i64, "v"));
        assert_eq!(out.get(1)[1][..], [Datum::Int(1)]);
    }

    #[test]
    fn malformed_payload_rejected() {
        assert!(Carrier::from_value(Datum::Int(3)).is_err());
        assert!(Carrier::from_value(Datum::List(vec![Datum::Null])).is_err());
        assert!(Carrier::from_value(Datum::List(vec![
            Datum::Null,
            Datum::Null,
            Datum::List(vec![]),
            Datum::Int(1), // not a list
        ]))
        .is_err());
    }
}
