//! Persistent cross-job statistics: the re-optimization store.
//!
//! The adaptive runtime (§4) measures real selectivities, lookup
//! redundancy, and index serve times mid-job — and then throws them away
//! when the job ends. This module keeps them: operator subtrees are
//! fingerprinted over the *neutral* plan IR (operator shape, index
//! identities, key kinds, placement — never plan-node addresses), and at
//! each job boundary the harvested [`OperatorStatsEstimate`] is appended
//! to a bounded previous-N-runs history per fingerprint. On the next
//! compile, [`crate::runtime::EFindRuntime`] prefers the measured history
//! over the `statsx` estimates whenever a fingerprint matches, so run 2
//! of a repeated workload picks the Fig. 8 winning strategy up front with
//! no mid-job replan.
//!
//! Contract:
//!
//! - **Deterministic.** Entries live in a [`BTreeMap`] keyed by
//!   fingerprint; histories evict oldest-first at a fixed capacity; the
//!   serialized form is a pure function of the store's content. A
//!   double run writes byte-identical store files.
//! - **Off the hot path.** Store I/O happens only at job boundaries
//!   ([`StatStore::load`] / [`StatStore::save`]); nothing here reads a
//!   clock or draws randomness.
//! - **Never a panic.** The on-disk form is one CRC-guarded text file
//!   (`efind-common::crc`). A missing file starts empty; a corrupt or
//!   version-bumped file is rejected with a [`LoadStatus`] the runtime
//!   turns into a named counter and an estimate fallback.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use efind_common::crc::crc32;
use efind_common::hash::{fx_hash_bytes, mix64};

use crate::cost::{CostEnv, OperatorStatsEstimate, Placement};
use crate::jobconf::BoundOperator;
use crate::plan::{optimize_operator, Enumeration, OperatorPlan};
use crate::statsx::tokens;

/// On-disk schema version; bump on any incompatible format change so old
/// binaries reject new stores cleanly instead of misparsing them.
pub const STORE_VERSION: u32 = 1;

/// Default bound on the per-fingerprint run history.
pub const DEFAULT_HISTORY: usize = 8;

/// A stable 64-bit hash of an operator subtree's neutral shape.
///
/// Two [`BoundOperator`]s that would compile to the same plan search
/// space produce the same fingerprint across processes and plan
/// re-constructions; anything that changes the search space (operator
/// name, index set, key kinds, placement, volatility) changes it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:016x})", self.0)
    }
}

fn placement_label(p: Placement) -> &'static str {
    match p {
        Placement::Head => "head",
        Placement::Body => "body",
        Placement::Tail => "tail",
    }
}

/// Fingerprints one bound operator at its placement.
///
/// The hash covers a canonical text rendering of the neutral IR, so it is
/// invariant under re-binding the same operator/accessor structure and
/// under anything address- or allocation-dependent.
pub fn fingerprint_operator(bound: &BoundOperator, placement: Placement) -> Fingerprint {
    let mut text = String::with_capacity(128);
    let _ = write!(
        text,
        "efind-fp v1|op={}|arity={}|placement={}|volatile={}",
        bound.op.name(),
        bound.indices.len(),
        placement_label(placement),
        bound.volatile
    );
    text.push_str("|keys=");
    for (i, kind) in bound.key_kinds.iter().enumerate() {
        if i > 0 {
            text.push(',');
        }
        text.push_str(kind.label());
    }
    for accessor in &bound.indices {
        let scheme = accessor.partition_scheme();
        let _ = write!(
            text,
            "|idx={}:{}:{}:{}:{}",
            accessor.name(),
            accessor.key_kind().label(),
            scheme.is_some(),
            scheme.map(|s| s.num_partitions()).unwrap_or(0),
            accessor.deterministic()
        );
    }
    Fingerprint(mix64(fx_hash_bytes(text.as_bytes())))
}

/// Fingerprints a concrete plan *under* an operator shape: the shape hash
/// mixed with the access order and per-index strategy labels. Distinct
/// strategies for the same shape yield distinct plan fingerprints.
pub fn fingerprint_plan(shape: Fingerprint, plan: &OperatorPlan) -> u64 {
    let mut text = String::with_capacity(8 * plan.choices.len());
    for choice in &plan.choices {
        let _ = write!(text, "{}:{};", choice.index, choice.strategy.label());
    }
    mix64(shape.0 ^ mix64(fx_hash_bytes(text.as_bytes())))
}

/// One completed run's observation for a fingerprint: the plan that
/// executed and the statistics harvested under it. `statsx` charges
/// lookup counters before caching/dedup, so the stats are comparable
/// across plans — a run executed under any strategy lets the planner
/// re-derive the winner.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// [`fingerprint_plan`] of the plan the run executed (0 if unknown).
    pub plan_fp: u64,
    /// Statistics observed during the run.
    pub stats: OperatorStatsEstimate,
}

/// How a [`StatStore::load`] resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadStatus {
    /// No file at the path; started empty.
    Created,
    /// File parsed and CRC-verified.
    Loaded,
    /// File present but unreadable (bad header, CRC mismatch, or parse
    /// failure); started empty. Surfaced as `efind.statstore.corrupt`.
    Corrupt,
    /// File carries a different schema version; started empty. Surfaced
    /// as `efind.statstore.version.mismatch`.
    VersionMismatch,
}

/// The bounded, versioned cross-job statistics store.
#[derive(Clone, Debug)]
pub struct StatStore {
    capacity: usize,
    entries: BTreeMap<u64, Vec<RunRecord>>,
}

impl StatStore {
    /// Creates an empty store keeping at most `capacity` runs per
    /// fingerprint (floored at 1).
    pub fn new(capacity: usize) -> Self {
        StatStore {
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
        }
    }

    /// The per-fingerprint history bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct fingerprints with history.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no fingerprint has history.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends one run's observation, evicting the oldest run beyond the
    /// capacity bound (deterministic ring-buffer discipline).
    pub fn record(&mut self, shape: Fingerprint, plan_fp: u64, stats: OperatorStatsEstimate) {
        let runs = self.entries.entry(shape.0).or_default();
        runs.push(RunRecord { plan_fp, stats });
        while runs.len() > self.capacity {
            runs.remove(0);
        }
    }

    /// The recorded history for a shape, oldest first.
    pub fn runs(&self, shape: Fingerprint) -> &[RunRecord] {
        self.entries.get(&shape.0).map_or(&[], Vec::as_slice)
    }

    /// The measured estimate the planner should prefer for `shape`: the
    /// element-wise mean over the history's runs whose index arity
    /// matches the most recent run (an arity change means the operator
    /// was rebound; stale-arity runs are ignored, not averaged in).
    pub fn measured(&self, shape: Fingerprint) -> Option<OperatorStatsEstimate> {
        let runs = self.entries.get(&shape.0)?;
        let arity = runs.last()?.stats.indices.len();
        let same: Vec<&OperatorStatsEstimate> = runs
            .iter()
            .filter(|r| r.stats.indices.len() == arity)
            .map(|r| &r.stats)
            .collect();
        OperatorStatsEstimate::mean_of(&same)
    }

    /// Serializes to the single-file text form:
    ///
    /// ```text
    /// efind-statstore v1 crc=<crc32 of body, hex>
    /// cap=<capacity>
    /// fp <fingerprint hex>
    ///   run plan=<plan fingerprint hex> n1=… s1=… spre=… spost=… smap=…
    ///     idx nik=… sik=… siv=… tj=… miss=… theta=… scheme=… shuffleable=… partitions=… fail=…
    /// ```
    ///
    /// The body reuses the `statsx` catalog token vocabulary, so the same
    /// f64 `Display` round-trip guarantees apply.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = String::new();
        let _ = writeln!(body, "cap={}", self.capacity);
        for (fp, runs) in &self.entries {
            let _ = writeln!(body, "fp {fp:016x}");
            for run in runs {
                let _ = writeln!(
                    body,
                    "  run plan={:016x} {}",
                    run.plan_fp,
                    tokens::op_line(&run.stats)
                );
                for idx in &run.stats.indices {
                    let _ = writeln!(body, "    idx {}", tokens::idx_line(idx));
                }
            }
        }
        let mut out = format!(
            "efind-statstore v{} crc={:08x}\n",
            STORE_VERSION,
            crc32(body.as_bytes())
        );
        out.push_str(&body);
        out.into_bytes()
    }

    /// Parses [`to_bytes`](Self::to_bytes) output. The version token is
    /// checked before the CRC so a schema bump reports
    /// [`LoadStatus::VersionMismatch`], not `Corrupt`; any header, CRC,
    /// or token failure reports `Corrupt`. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<StatStore, LoadStatus> {
        let text = std::str::from_utf8(bytes).map_err(|_| LoadStatus::Corrupt)?;
        let (header, body) = text.split_once('\n').ok_or(LoadStatus::Corrupt)?;
        let mut toks = header.split_whitespace();
        if toks.next() != Some("efind-statstore") {
            return Err(LoadStatus::Corrupt);
        }
        let version = toks.next().ok_or(LoadStatus::Corrupt)?;
        if version != "v1" {
            return if version
                .strip_prefix('v')
                .is_some_and(|n| n.parse::<u32>().is_ok())
            {
                Err(LoadStatus::VersionMismatch)
            } else {
                Err(LoadStatus::Corrupt)
            };
        }
        let want = toks
            .next()
            .and_then(|t| t.strip_prefix("crc="))
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or(LoadStatus::Corrupt)?;
        if toks.next().is_some() || crc32(body.as_bytes()) != want {
            return Err(LoadStatus::Corrupt);
        }
        Self::parse_body(body).ok_or(LoadStatus::Corrupt)
    }

    fn parse_body(body: &str) -> Option<StatStore> {
        let mut store = StatStore::new(DEFAULT_HISTORY);
        let mut cur_fp: Option<u64> = None;
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("cap=") {
                store.capacity = rest.parse::<usize>().ok()?.max(1);
            } else if let Some(rest) = line.strip_prefix("fp ") {
                let fp = u64::from_str_radix(rest.trim(), 16).ok()?;
                store.entries.insert(fp, Vec::new());
                cur_fp = Some(fp);
            } else if let Some(rest) = line.strip_prefix("  run ") {
                let runs = store.entries.get_mut(&cur_fp?)?;
                let mut op = tokens::blank_op();
                let mut plan_fp = None;
                for tok in rest.split_whitespace() {
                    if let Some(p) = tok.strip_prefix("plan=") {
                        plan_fp = Some(u64::from_str_radix(p, 16).ok()?);
                    } else if !tokens::apply_op(&mut op, tok) {
                        return None;
                    }
                }
                runs.push(RunRecord {
                    plan_fp: plan_fp?,
                    stats: op,
                });
            } else if let Some(rest) = line.strip_prefix("    idx ") {
                let run = store.entries.get_mut(&cur_fp?)?.last_mut()?;
                let mut idx = tokens::blank_idx();
                for tok in rest.split_whitespace() {
                    if !tokens::apply_idx(&mut idx, tok) {
                        return None;
                    }
                }
                run.stats.indices.push(idx);
            } else if !line.trim().is_empty() {
                return None;
            }
        }
        Some(store)
    }

    /// Loads a store from `path`. Missing file → empty store with
    /// [`LoadStatus::Created`]; unreadable or rejected file → empty store
    /// with the rejecting status. Only called at job boundaries.
    pub fn load(path: &Path, capacity: usize) -> (StatStore, LoadStatus) {
        match fs::read(path) {
            Err(_) => (StatStore::new(capacity), LoadStatus::Created),
            Ok(bytes) => match StatStore::from_bytes(&bytes) {
                Ok(store) => (store, LoadStatus::Loaded),
                Err(status) => (StatStore::new(capacity), status),
            },
        }
    }

    /// Writes the store to `path`. Only called at job boundaries.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_bytes())
    }
}

/// A measured-stats injection the compiler threads to the analyzer: which
/// operator got store-served statistics, plus the EF023 probe values
/// (best full-enumeration cost and the same cost with `N1` doubled).
#[derive(Clone, Debug)]
pub struct MeasuredOp {
    /// Operator name the measured stats replaced estimates for.
    pub operator: String,
    /// The shape fingerprint that matched.
    pub fingerprint: Fingerprint,
    /// The measured statistics served to the planner.
    pub stats: OperatorStatsEstimate,
    /// Best full-enumeration plan cost under the measured stats.
    pub full_est_secs: f64,
    /// Best full-enumeration plan cost with `N1` doubled — must not be
    /// cheaper (EF023 monotonicity probe).
    pub est_at_double_n1_secs: f64,
}

impl MeasuredOp {
    /// Builds the injection record, computing both probe costs.
    pub fn probe(
        operator: &str,
        fingerprint: Fingerprint,
        stats: &OperatorStatsEstimate,
        env: &CostEnv,
        placement: Placement,
    ) -> MeasuredOp {
        let full = optimize_operator(stats, env, placement, Enumeration::Full);
        let mut doubled = stats.clone();
        doubled.n1 *= 2.0;
        let at_double = optimize_operator(&doubled, env, placement, Enumeration::Full);
        MeasuredOp {
            operator: operator.to_owned(),
            fingerprint,
            stats: stats.clone(),
            full_est_secs: full.est_cost_secs,
            est_at_double_n1_secs: at_double.est_cost_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::IndexStatsEstimate;
    use crate::plan::{forced_plan, Strategy};

    fn stats(n1: f64, theta: f64) -> OperatorStatsEstimate {
        OperatorStatsEstimate {
            n1,
            s1: 100.0,
            spre: 40.0,
            spost: 60.0,
            smap: 80.0,
            indices: vec![IndexStatsEstimate {
                nik: 1.0,
                sik: 8.0,
                siv: 120.0,
                tj_secs: 1.0e-3,
                miss_ratio: 0.75,
                theta,
                has_partition_scheme: true,
                shuffleable: true,
                partitions: 16,
                failure_rate: 0.01,
            }],
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let mut store = StatStore::new(4);
        store.record(Fingerprint(0xAB), 7, stats(1000.0, 3.0));
        store.record(Fingerprint(0xAB), 9, stats(2000.0, 4.0));
        store.record(Fingerprint(0x02), 1, stats(500.0, 1.0));
        let bytes = store.to_bytes();
        let back = StatStore::from_bytes(&bytes).unwrap();
        assert_eq!(back.capacity(), 4);
        assert_eq!(back.len(), 2);
        assert_eq!(back.runs(Fingerprint(0xAB)).len(), 2);
        assert_eq!(back.runs(Fingerprint(0xAB))[1].plan_fp, 9);
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn eviction_is_oldest_first_at_capacity() {
        let mut store = StatStore::new(2);
        for i in 0..5 {
            store.record(Fingerprint(1), i, stats(1000.0 + i as f64, 2.0));
        }
        let runs = store.runs(Fingerprint(1));
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].plan_fp, 3);
        assert_eq!(runs[1].plan_fp, 4);
    }

    #[test]
    fn default_history_ring_evicts_across_the_eighth_run() {
        // Pins the ring discipline at the shipped DEFAULT_HISTORY = 8:
        // the 8th run fills the ring without eviction, the 9th evicts
        // exactly the oldest entry, and the order survives persistence.
        let mut store = StatStore::new(DEFAULT_HISTORY);
        for i in 0..DEFAULT_HISTORY as u64 {
            store.record(Fingerprint(7), i, stats(1000.0 + i as f64, 2.0));
        }
        assert_eq!(store.runs(Fingerprint(7)).len(), DEFAULT_HISTORY);
        assert_eq!(store.runs(Fingerprint(7))[0].plan_fp, 0);

        store.record(Fingerprint(7), 8, stats(2000.0, 2.0));
        assert_eq!(store.runs(Fingerprint(7)).len(), DEFAULT_HISTORY);
        assert_eq!(store.runs(Fingerprint(7))[0].plan_fp, 1);

        store.record(Fingerprint(7), 9, stats(2001.0, 2.0));
        let plan_fps: Vec<u64> = store
            .runs(Fingerprint(7))
            .iter()
            .map(|r| r.plan_fp)
            .collect();
        assert_eq!(plan_fps, (2..=9).collect::<Vec<u64>>());

        let back = StatStore::from_bytes(&store.to_bytes()).unwrap();
        let restored: Vec<u64> = back
            .runs(Fingerprint(7))
            .iter()
            .map(|r| r.plan_fp)
            .collect();
        assert_eq!(restored, plan_fps);
    }

    #[test]
    fn measured_averages_matching_arity_only() {
        let mut store = StatStore::new(8);
        store.record(Fingerprint(1), 0, stats(1000.0, 2.0));
        store.record(Fingerprint(1), 0, stats(3000.0, 4.0));
        let m = store.measured(Fingerprint(1)).unwrap();
        assert!((m.n1 - 2000.0).abs() < 1e-9);
        assert!((m.indices[0].theta - 3.0).abs() < 1e-9);
        // A rebound operator (different arity) invalidates older runs.
        let mut rebound = stats(9000.0, 5.0);
        rebound.indices.push(rebound.indices[0].clone());
        store.record(Fingerprint(1), 0, rebound);
        let m = store.measured(Fingerprint(1)).unwrap();
        assert_eq!(m.indices.len(), 2);
        assert!((m.n1 - 9000.0).abs() < 1e-9);
    }

    #[test]
    fn corrupt_bytes_rejected_not_panicked() {
        let store = {
            let mut s = StatStore::new(2);
            s.record(Fingerprint(5), 5, stats(100.0, 1.0));
            s
        };
        let good = store.to_bytes();
        // Bit-flip one body byte: CRC catches it.
        let mut flipped = good.clone();
        let last = flipped.len() - 2;
        flipped[last] ^= 0x40;
        assert_eq!(
            StatStore::from_bytes(&flipped).unwrap_err(),
            LoadStatus::Corrupt
        );
        // Truncation: either the header or the CRC fails.
        assert_eq!(
            StatStore::from_bytes(&good[..good.len() / 2]).unwrap_err(),
            LoadStatus::Corrupt
        );
        assert_eq!(StatStore::from_bytes(b"").unwrap_err(), LoadStatus::Corrupt);
        assert_eq!(
            StatStore::from_bytes(b"not a store\n").unwrap_err(),
            LoadStatus::Corrupt
        );
    }

    #[test]
    fn version_bump_rejected_cleanly() {
        let store = StatStore::new(2);
        let mut bytes = store.to_bytes();
        let pos = bytes.iter().position(|&b| b == b'1').unwrap();
        bytes[pos] = b'2';
        assert_eq!(
            StatStore::from_bytes(&bytes).unwrap_err(),
            LoadStatus::VersionMismatch
        );
    }

    #[test]
    fn plan_fingerprints_distinct_per_strategy() {
        let shape = Fingerprint(0xD00D);
        let caps = [(true, true)];
        let fps: Vec<u64> = [
            Strategy::Baseline,
            Strategy::Cache,
            Strategy::Repartition,
            Strategy::IndexLocality,
        ]
        .iter()
        .map(|&s| fingerprint_plan(shape, &forced_plan(&caps, s)))
        .collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "strategies {i} and {j} collide");
            }
        }
    }
}
