#![warn(missing_docs)]

//! # EFind — Efficient and Flexible Index Access in MapReduce
//!
//! Reproduction of Ma, Cao, Feng, Chen, Wang, *Efficient and Flexible Index
//! Access in MapReduce*, EDBT 2014. EFind is a connection layer between
//! MapReduce and arbitrary "indices" — any side data source that supports
//! selective access: KV stores, B-trees, spatial indices, remote cloud
//! services, even dynamic computation-based knowledge bases.
//!
//! ## Programming interface (§2)
//!
//! * [`IndexAccessor`] — implemented once per index *type*; its `lookup`
//!   answers a key with a list of values.
//! * [`IndexOperator`] — job-specific customization: `pre_process` extracts
//!   per-index key lists from a record, `post_process` combines lookup
//!   results into output records.
//! * [`IndexJobConf`] — places operators before Map (*head*), between Map
//!   and Reduce (*body*), or after Reduce (*tail*) and submits the enhanced
//!   job.
//!
//! ## Index access strategies (§3)
//!
//! [`Strategy`] covers the paper's four: **Baseline** (chained functions,
//! every lookup remote), **Cache** (per-task LRU removing local
//! redundancy), **Repartition** (an extra shuffle job grouping equal keys,
//! removing global redundancy), and **IndexLocality** (shuffle
//! co-partitioned with the index plus affinity scheduling, making lookups
//! local). The cost model of Table 1 / Eqs. 1–4 lives in [`cost`]; the
//! multi-index planning algorithms *FullEnumerate* and *k-Repart* live in
//! [`plan`].
//!
//! ## Adaptive optimization (§4)
//!
//! [`EFindRuntime`] runs an enhanced job in one of four [`Mode`]s. In
//! `Dynamic` mode it starts with the baseline plan, harvests counters and
//! FM sketches from the first map wave, gates on cross-task variance,
//! re-optimizes (Algorithm 1), and — when the predicted gain exceeds the
//! plan-change cost — switches plans mid-job, reusing the completed wave's
//! outputs (Fig. 10).
//!
//! ## Static plan analysis
//!
//! Before any pipeline is compiled, [`analysis`] lowers the job and its
//! plans into `efind-analyze`'s IR and verifies them: placement legality
//! and Property 4, strategy/capability fit, key-kind compatibility,
//! cost-model sanity, and a determinism audit gating the adaptive
//! runtime's result reuse. Errors (stable `EFxxx` codes) abort
//! compilation; warnings are printed at job start and surface in the
//! `explain` report.
//!
//! ## Fault tolerance
//!
//! [`fault`] adds a deterministic fault-injection and tolerance layer to
//! the accessor path: a seeded [`FaultPlan`] (failures, timeouts,
//! slowdowns decided by a pure hash — no wall clock), a [`RetryPolicy`]
//! with exponential backoff charged to virtual time, per-index timeouts,
//! and a per-task circuit [`Breaker`](fault::Breaker) degrading to a
//! configurable [`MissPolicy`]. The adaptive runtime reads the failure
//! counters as a re-optimization trigger and the cost model charges
//! expected retry overhead.

pub mod accessor;
pub mod adaptive;
pub mod analysis;
pub mod cache;
pub mod carrier;
pub mod compile;
pub mod cost;
pub mod fault;
pub mod jobconf;
pub mod operator;
pub mod plan;
pub mod runtime;
pub mod statstore;
pub mod statsx;

pub use accessor::{
    ChargedLookup, HedgeConfig, HedgePolicy, IndexAccessor, LookupMode, LookupResult,
    PartitionScheme,
};
pub use cache::LookupCache;
pub use cost::{CostEnv, IndexStatsEstimate, OperatorStatsEstimate, Placement};
pub use efind_analyze::{DiagCode, Diagnostic, Report, Severity, Span};
pub use efind_common::KeyKind;
pub use fault::{FaultConfig, FaultKind, FaultPlan, MissPolicy, RetryPolicy};
pub use jobconf::{BoundOperator, IndexJobConf};
pub use operator::{operator_fn, IndexInput, IndexOperator, IndexOutput};
pub use plan::{forced_plan, Enumeration, OperatorPlan, Strategy};
pub use runtime::{EFindConfig, EFindJobResult, EFindRuntime, Mode};
pub use statstore::{
    fingerprint_operator, fingerprint_plan, Fingerprint, LoadStatus, MeasuredOp, RunRecord,
    StatStore,
};
pub use statsx::Catalog;
