//! The EFind runtime (Fig. 8): plan selection, plan implementation, and
//! execution of enhanced jobs.

use std::path::Path;

use efind_cluster::{
    ChaosPlan, Cluster, CorruptionPlan, DetectorConfig, PartitionPlan, SimDuration, SimTime,
    TenancyConfig,
};
use efind_common::{Error, FxHashMap, Result};
use efind_dfs::{Dfs, DfsFile};
use efind_mapreduce::{Counters, JobStats, Runner, Sketches};

use crate::accessor::HedgeConfig;
use crate::compile::{compile_pipeline, RuntimeEnv};
use crate::cost::CostEnv;
use crate::fault::FaultConfig;
use crate::jobconf::IndexJobConf;
use crate::plan::{forced_plan, optimize_operator, Enumeration, OperatorPlan, Strategy};
use crate::statstore::{
    fingerprint_operator, fingerprint_plan, LoadStatus, MeasuredOp, StatStore, DEFAULT_HISTORY,
};
use crate::statsx::{extract_operator_stats, Catalog};

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct EFindConfig {
    /// Lookup cache capacity (paper: 1024 entries).
    pub cache_capacity: usize,
    /// Cache probe time `T_cache`.
    pub t_cache: SimDuration,
    /// Algorithm 1's statistics-variance gate: re-optimize only if
    /// cross-task `stddev/mean` of key counters stays below this. The
    /// paper suggests 0.05 on 64 MB splits; the scaled-down default is
    /// looser because small splits are noisier.
    pub variance_threshold: f64,
    /// Modeled overhead of switching plans mid-job (job resubmission,
    /// scheduling, reading reused outputs), in wall-clock seconds. The
    /// default matches the scaled-down reproduction's job durations; a
    /// production Hadoop deployment would set seconds here.
    pub plan_change_cost_secs: f64,
    /// Multi-index planning algorithm.
    pub enumeration: Enumeration,
    /// Reducer count for shuffling jobs (`None` = all reduce slots).
    pub shuffle_reducers: Option<usize>,
    /// Keep intermediate DFS files after the job (for inspection).
    pub keep_intermediates: bool,
    /// Hard co-location for index-locality reduce tasks. The paper keeps
    /// affinity *soft* (footnote 3: pinning a reducer to one machine lets
    /// that machine's unavailability stall the job); this switch exists
    /// for the experiment that demonstrates why.
    pub hard_colocation: bool,
    /// Fixed wall-clock overhead the planner charges per *extra* MapReduce
    /// job a shuffle strategy introduces (startup, phase barriers, the
    /// follow-up job's fixed latency) — the reason "it is rare that such
    /// strategies are chosen by many indices" (§3.5). Scaled to the
    /// reproduction's virtual job durations; Hadoop deployments would use
    /// tens of seconds.
    pub job_overhead_secs: f64,
    /// Fault-tolerance configuration for the accessor path: injection
    /// plan (tests/chaos runs), retry policy, per-index timeout, circuit
    /// breaker, and miss policy. Disabled by default — the zero-fault
    /// lookup path is byte-identical to a build without the fault layer.
    ///
    /// All three injection layers (`faults`, `chaos`, `corruption`) are
    /// classified Quiet/Armed **once per job** when the pipeline compiles
    /// (see [`RuntimeEnv::injection_profile`]): a configured-but-quiet
    /// plan — seeded but with zero rates and no kill events — takes the
    /// exact same hot path as a never-configured one, paying no per-record
    /// or per-lookup draws, checksums, or ledger bookkeeping.
    pub faults: FaultConfig,
    /// Node-crash plan applied to every constituent MapReduce job: nodes
    /// die at their planned virtual times, completed map outputs lost with
    /// them are recomputed, the DFS re-replicates, and the adaptive
    /// re-plan reuses exactly the first-wave results that survived. Quiet
    /// by default — the crash-free path is byte-identical to a build
    /// without the recovery layer.
    pub chaos: ChaosPlan,
    /// Data-corruption plan applied to every constituent MapReduce job:
    /// DFS chunk replicas, shuffle payloads, lookup-cache entries, and
    /// index responses flip bytes per the plan's seeded draws, CRC-32
    /// verification catches every flip at the read boundary, and the
    /// repair paths (alternate replica + re-replication, shuffle refetch,
    /// cache invalidation, response re-transfer) turn corruption into
    /// virtual time instead of wrong answers. Quiet by default — the
    /// corruption-free path is byte-identical to a build without the
    /// integrity layer.
    pub corruption: CorruptionPlan,
    /// Network-partition plan applied to every constituent MapReduce job:
    /// partitions cut *visibility*, never state — isolated nodes keep
    /// running, their completed outputs strand until the partition heals
    /// (or are recomputed elsewhere when it never does), and the DFS is
    /// never mutated. Quiet by default ([`PartitionPlan::none`]) — the
    /// partition-free path is byte-identical to a build without the
    /// gray-failure layer.
    pub netsplit: PartitionPlan,
    /// Heartbeat failure-detector parameters consulted only when
    /// `netsplit` is armed: nodes silent past the suspicion threshold are
    /// suspected (tasks re-placed, re-replication queued); nodes that
    /// come back refute the suspicion, rejoin, and have their pending
    /// re-replication cancelled and in-flight results reconciled
    /// exactly-once.
    pub detector: DetectorConfig,
    /// Hedged index lookups: past the configured latency threshold a
    /// lookup races a seeded backup against a different replica or
    /// partition-side, the first answer wins, and the loser's virtual
    /// cost is charged per [`HedgePolicy`](crate::HedgePolicy). Answers
    /// are bit-identical to unhedged runs (idempotent lookups, §3.2) —
    /// only virtual time and the `hedge.*` counters move. Quiet by
    /// default (no threshold) — the unhedged path is byte-identical to a
    /// build without the hedging layer.
    pub hedge: HedgeConfig,
    /// Multi-tenant serving configuration of the cluster this runtime's
    /// jobs are admitted to: per-tenant quotas and weights, the bounded
    /// admission queue, per-index rate limits, and cache shares. Quiet by
    /// default ([`TenancyConfig::none`]) — a runtime without tenants (or
    /// with a single unlimited tenant) takes the literal plain path: full
    /// cache capacity, no tenant counters, no EF024 tenancy checks.
    pub tenancy: TenancyConfig,
    /// The tenant this runtime's jobs run as (`None` = the implicit
    /// default tenant). Only consulted when `tenancy` is armed.
    pub tenant: Option<String>,
}

impl Default for EFindConfig {
    fn default() -> Self {
        EFindConfig {
            cache_capacity: 1024,
            t_cache: SimDuration::from_micros(1),
            variance_threshold: 0.5,
            plan_change_cost_secs: 0.05,
            enumeration: Enumeration::Full,
            shuffle_reducers: None,
            keep_intermediates: false,
            hard_colocation: false,
            job_overhead_secs: 0.02,
            faults: FaultConfig::disabled(),
            chaos: ChaosPlan::none(),
            corruption: CorruptionPlan::none(),
            netsplit: PartitionPlan::none(),
            detector: DetectorConfig::default(),
            hedge: HedgeConfig::disabled(),
            tenancy: TenancyConfig::none(),
            tenant: None,
        }
    }
}

/// How the runtime chooses index access strategies.
#[derive(Clone, Debug)]
pub enum Mode {
    /// Force one strategy on every operator (with graceful fallbacks) —
    /// the `Base`/`Cache`/`Repart`/`Idxloc` configurations of §5.
    Uniform(Strategy),
    /// Per-operator forced strategies (unlisted operators default to
    /// `Cache`, matching the paper's multi-join methodology).
    Manual(FxHashMap<String, Strategy>),
    /// Cost-based optimization from catalog statistics (§5's `Optimized`;
    /// requires statistics from a previous run).
    Optimized,
    /// Adaptive optimization from scratch (§4, §5's `Dynamic`): start with
    /// baseline, collect statistics in the first map wave, re-optimize.
    Dynamic,
}

/// Result of an EFind-enhanced job.
#[derive(Clone, Debug)]
pub struct EFindJobResult {
    /// Final DFS output.
    pub output: DfsFile,
    /// Total virtual wall-clock across all constituent MapReduce jobs.
    pub total_time: SimDuration,
    /// Statistics of each executed MapReduce job, in order.
    pub jobs: Vec<JobStats>,
    /// The plan used for each operator (final plan if re-planned).
    pub plans: Vec<(String, OperatorPlan)>,
    /// True if the adaptive runtime changed plans mid-job.
    pub replanned: bool,
}

/// Executes EFind-enhanced jobs on a simulated cluster.
///
/// ```
/// use std::sync::Arc;
/// use efind::*;
/// use efind_common::{Datum, Record};
/// use efind_cluster::{Cluster, SimDuration};
/// use efind_dfs::{Dfs, DfsConfig};
/// use efind_mapreduce::{mapper_fn, reducer_fn};
///
/// // A trivial index: id → id * 10.
/// struct TimesTen;
/// impl IndexAccessor for TimesTen {
///     fn name(&self) -> &str { "times-ten" }
///     fn lookup(&self, key: &Datum) -> Vec<Datum> {
///         key.as_int().map(|v| vec![Datum::Int(v * 10)]).unwrap_or_default()
///     }
///     fn serve_time(&self, _: &Datum, _: u64) -> SimDuration {
///         SimDuration::from_micros(100)
///     }
/// }
///
/// let cluster = Cluster::builder().nodes(2).build();
/// let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
/// dfs.write_file("in", (0..100i64).map(|i| Record::new(i, i % 7)).collect());
///
/// let op = operator_fn(
///     "enrich", 1,
///     |rec, keys| keys.put(0, rec.value.clone()),            // preProcess
///     |rec, values, out| {                                   // postProcess
///         let v = values.first(0).first().cloned().unwrap_or(Datum::Null);
///         out.collect(Record { key: v, value: rec.key });
///     },
/// );
/// let ijob = IndexJobConf::new("demo", "in", "out")
///     .add_head_index_operator(BoundOperator::new(op).add_index(Arc::new(TimesTen)))
///     .set_mapper(mapper_fn(|rec, out, _| out.collect(rec)))
///     .set_reducer(reducer_fn(|key, values, out, _| {
///         out.collect(Record::new(key, values.len() as i64));
///     }), 2);
///
/// let mut rt = EFindRuntime::new(&cluster, &mut dfs);
/// let res = rt.run(&ijob, Mode::Uniform(Strategy::Cache)).unwrap();
/// assert_eq!(res.output.total_records(), 7);
/// ```
pub struct EFindRuntime<'a> {
    /// The cluster.
    pub cluster: &'a Cluster,
    /// The distributed file system.
    pub dfs: &'a mut Dfs,
    /// Runtime configuration.
    pub config: EFindConfig,
    /// Statistics catalog persisted across jobs.
    pub catalog: Catalog,
    /// Cross-job re-optimization store (`None` = disabled). When attached,
    /// job-boundary observations are recorded per operator fingerprint and
    /// `Mode::Optimized` (plus the adaptive warm start) prefers measured
    /// history over catalog estimates.
    pub store: Option<StatStore>,
    /// Store-load anomalies pending surfacing as counters on the next run.
    store_events: StoreEvents,
}

/// Pending store-load anomalies, drained into the next job's counters so
/// an empty or clean store contributes nothing to the observables.
#[derive(Clone, Copy, Debug, Default)]
struct StoreEvents {
    corrupt: u64,
    version_mismatch: u64,
}

impl<'a> EFindRuntime<'a> {
    /// Creates a runtime with default configuration.
    pub fn new(cluster: &'a Cluster, dfs: &'a mut Dfs) -> Self {
        Self::with_config(cluster, dfs, EFindConfig::default())
    }

    /// Creates a runtime with explicit configuration.
    pub fn with_config(cluster: &'a Cluster, dfs: &'a mut Dfs, config: EFindConfig) -> Self {
        EFindRuntime {
            cluster,
            dfs,
            config,
            catalog: Catalog::new(),
            store: None,
            store_events: StoreEvents::default(),
        }
    }

    /// Attaches an in-memory re-optimization store.
    pub fn attach_store(&mut self, store: StatStore) {
        self.store = Some(store);
    }

    /// Loads and attaches a re-optimization store from `path` (job-boundary
    /// I/O). A missing file attaches an empty store; a corrupt or
    /// version-bumped file attaches an empty store and arms the
    /// `efind.statstore.corrupt` / `efind.statstore.version.mismatch`
    /// counter for the next run. Never panics, never fails the job.
    pub fn attach_store_file(&mut self, path: &Path) -> LoadStatus {
        let (store, status) = StatStore::load(path, DEFAULT_HISTORY);
        match status {
            LoadStatus::Corrupt => self.store_events.corrupt += 1,
            LoadStatus::VersionMismatch => self.store_events.version_mismatch += 1,
            LoadStatus::Created | LoadStatus::Loaded => {}
        }
        self.store = Some(store);
        status
    }

    /// Writes the attached store to `path` (job-boundary I/O). A runtime
    /// without a store writes nothing.
    pub fn save_store(&self, path: &Path) -> std::io::Result<()> {
        match &self.store {
            Some(store) => store.save(path),
            None => Ok(()),
        }
    }

    /// The cost-model environment derived from the cluster and DFS models.
    pub fn cost_env(&self) -> CostEnv {
        let n = self.cluster.num_nodes() as f64;
        // One extra-shuffle byte pays: map-side spill (disk write), the
        // remote fraction of the transfer, and the reduce-side merge
        // (disk write + read) — mirroring what the runner charges.
        let probe = 1u64 << 20;
        let shuffle_secs_per_byte = (self.cluster.disk.write(probe).as_secs_f64() * 2.0
            + self.cluster.disk.read(probe).as_secs_f64()
            + self.cluster.network.volume(probe).as_secs_f64() * (n - 1.0) / n)
            / probe as f64;
        CostEnv {
            bw_bytes_per_sec: self.cluster.network.bandwidth_bytes_per_sec,
            f_per_byte: self.dfs.f_per_byte(),
            t_cache_secs: self.config.t_cache.as_secs_f64(),
            lookup_latency_secs: self.cluster.network.latency.as_secs_f64(),
            shuffle_secs_per_byte,
            job_overhead_secs: self.config.job_overhead_secs,
            reduce_parallelism: self
                .config
                .shuffle_reducers
                .unwrap_or_else(|| self.cluster.total_reduce_slots())
                .min(self.cluster.total_reduce_slots()) as f64,
            parallelism: self.cluster.total_map_slots() as f64,
        }
    }

    pub(crate) fn runtime_env(&self) -> RuntimeEnv {
        RuntimeEnv {
            network: self.cluster.network,
            t_cache: self.config.t_cache,
            cache_capacity: self.config.cache_capacity,
            shuffle_reducers: self
                .config
                .shuffle_reducers
                .unwrap_or_else(|| self.cluster.total_reduce_slots()),
            intermediate_chunks: self.cluster.total_map_slots() * 2,
            hard_colocation: self.config.hard_colocation,
            faults: self.config.faults.clone(),
            corruption: self.config.corruption.clone(),
            dfs_replication: self.dfs.config().replication,
            chaos: self.config.chaos.clone(),
            cluster_nodes: self.cluster.num_nodes() as usize,
            netsplit: self.config.netsplit.clone(),
            detector: self.config.detector,
            hedge: self.config.hedge,
            measured: Vec::new(),
            tenancy: self.config.tenancy.clone(),
            tenant: self.config.tenant.clone(),
        }
    }

    /// Computes the per-operator plans for a mode (except `Dynamic`, whose
    /// plans emerge during execution).
    pub fn plans_for(
        &self,
        ijob: &IndexJobConf,
        mode: &Mode,
    ) -> Result<FxHashMap<String, OperatorPlan>> {
        Ok(self.plans_and_measured_for(ijob, mode)?.0)
    }

    /// The measured-stats history for one bound operator, if the attached
    /// store has a matching fingerprint whose arity fits the binding.
    pub fn measured_for(
        &self,
        bound: &crate::jobconf::BoundOperator,
        placement: crate::cost::Placement,
    ) -> Option<(
        crate::statstore::Fingerprint,
        crate::cost::OperatorStatsEstimate,
    )> {
        let shape = fingerprint_operator(bound, placement);
        let stats = self
            .store
            .as_ref()?
            .measured(shape)
            .filter(|m| m.indices.len() == bound.indices.len())?;
        Some((shape, stats))
    }

    /// [`plans_for`](Self::plans_for) plus the [`MeasuredOp`] injections
    /// describing which operators were planned from store history instead
    /// of catalog estimates (threaded to the analyzer's EF023 check).
    pub(crate) fn plans_and_measured_for(
        &self,
        ijob: &IndexJobConf,
        mode: &Mode,
    ) -> Result<(FxHashMap<String, OperatorPlan>, Vec<MeasuredOp>)> {
        let mut plans = FxHashMap::default();
        let mut measured = Vec::new();
        match mode {
            Mode::Uniform(strategy) => {
                for (bound, _) in ijob.operators() {
                    plans.insert(
                        bound.op.name().to_owned(),
                        forced_plan(&bound.caps(), *strategy),
                    );
                }
            }
            Mode::Manual(per_op) => {
                for (bound, _) in ijob.operators() {
                    let s = per_op
                        .get(bound.op.name())
                        .copied()
                        .unwrap_or(Strategy::Cache);
                    plans.insert(bound.op.name().to_owned(), forced_plan(&bound.caps(), s));
                }
            }
            Mode::Optimized => {
                let env = self.cost_env();
                for (bound, placement) in ijob.operators() {
                    let name = bound.op.name();
                    // The cross-job store outranks the catalog: a matching
                    // fingerprint means these exact shapes were measured on
                    // a previous run.
                    let from_store = self.measured_for(bound, placement);
                    let mut stats = match &from_store {
                        Some((_, stats)) => stats.clone(),
                        None => self
                            .catalog
                            .get(name)
                            .ok_or_else(|| {
                                Error::InvalidConfig(format!(
                                    "no catalog statistics for operator {name}; run the job once \
                                     (any mode) or use Mode::Dynamic"
                                ))
                            })?
                            .clone(),
                    };
                    // Partition-scheme availability is structural, not
                    // statistical — refresh it from the bound accessors.
                    for (j, (_, scheme)) in bound.caps().iter().enumerate() {
                        if let Some(idx) = stats.indices.get_mut(j) {
                            idx.has_partition_scheme = *scheme;
                        }
                    }
                    if let Some((shape, _)) = from_store {
                        if !bound.volatile {
                            measured.push(MeasuredOp::probe(name, shape, &stats, &env, placement));
                        }
                    }
                    plans.insert(
                        name.to_owned(),
                        optimize_operator(&stats, &env, placement, self.config.enumeration),
                    );
                }
            }
            Mode::Dynamic => {
                return Err(Error::Internal(
                    "Dynamic plans are computed during execution".into(),
                ))
            }
        }
        // Volatile operators (non-idempotent lookups, §3.2) are pinned to
        // the baseline strategy regardless of mode: caching or
        // deduplicating their lookups would change results.
        for (bound, _) in ijob.operators() {
            if bound.volatile {
                plans.insert(
                    bound.op.name().to_owned(),
                    forced_plan(&bound.caps(), Strategy::Baseline),
                );
            }
        }
        debug_assert!(
            // efind-lint: allow(unordered-iter, order-free forall predicate; no output depends on visit order)
            plans.values().all(crate::analysis::respects_property4),
            "planner produced a Property 4 violation (shuffle after non-shuffle)"
        );
        Ok((plans, measured))
    }

    /// Runs an enhanced job.
    pub fn run(&mut self, ijob: &IndexJobConf, mode: Mode) -> Result<EFindJobResult> {
        ijob.validate()?;
        let mut res = match mode {
            Mode::Dynamic => crate::adaptive::run_dynamic(self, ijob)?,
            other => {
                let (plans, measured) = self.plans_and_measured_for(ijob, &other)?;
                self.run_with_plans_measured(ijob, plans, false, measured)?
            }
        };
        // Surface pending store-load anomalies as counters on the first
        // constituent job. A clean, empty, or absent store arms nothing,
        // so the quiet path's observables stay byte-identical to a build
        // without the store.
        let events = std::mem::take(&mut self.store_events);
        if let Some(job) = res.jobs.first_mut() {
            if events.corrupt > 0 {
                job.counters
                    .add("efind.statstore.corrupt", events.corrupt as i64);
            }
            if events.version_mismatch > 0 {
                job.counters.add(
                    "efind.statstore.version.mismatch",
                    events.version_mismatch as i64,
                );
            }
        }
        Ok(res)
    }

    /// Compiles and executes the pipeline for fixed plans.
    pub(crate) fn run_with_plans(
        &mut self,
        ijob: &IndexJobConf,
        plans: FxHashMap<String, OperatorPlan>,
        replanned: bool,
    ) -> Result<EFindJobResult> {
        self.run_with_plans_measured(ijob, plans, replanned, Vec::new())
    }

    /// [`run_with_plans`](Self::run_with_plans) with the measured-stats
    /// injections threaded to the analyzer (EF023).
    pub(crate) fn run_with_plans_measured(
        &mut self,
        ijob: &IndexJobConf,
        plans: FxHashMap<String, OperatorPlan>,
        replanned: bool,
        measured: Vec<MeasuredOp>,
    ) -> Result<EFindJobResult> {
        let mut env = self.runtime_env();
        env.measured = measured;
        let compiled = compile_pipeline(ijob, &plans, &env)?;
        for warning in compiled.analysis.warnings() {
            eprintln!("efind: {warning}");
        }
        let mut t = SimTime::ZERO;
        let mut jobs = Vec::with_capacity(compiled.jobs.len());
        let mut output: Option<DfsFile> = None;
        for conf in &compiled.jobs {
            let res = Runner::with_chaos(self.cluster, self.dfs, self.config.chaos.clone())
                .with_corruption(self.config.corruption.clone())
                .with_netsplit(self.config.netsplit.clone(), self.config.detector)
                .run(conf, t)?;
            t = res.stats.finished;
            jobs.push(res.stats);
            output = Some(res.output);
        }
        self.absorb_stats(ijob, &jobs, &plans);
        if !self.config.keep_intermediates {
            for tmp in &compiled.temp_files {
                self.dfs.delete(tmp);
            }
        }
        let output = output.ok_or_else(|| Error::Internal("pipeline produced no jobs".into()))?;
        Ok(EFindJobResult {
            output,
            total_time: t.since(SimTime::ZERO),
            jobs,
            // efind-lint: allow(unordered-iter, map-to-map collect; the destination is keyed and no order survives)
            plans: plans.into_iter().collect(),
            replanned,
        })
    }

    /// Harvests operator statistics from executed jobs into the catalog
    /// and, when a store is attached, into the per-fingerprint history.
    pub(crate) fn absorb_stats(
        &mut self,
        ijob: &IndexJobConf,
        jobs: &[JobStats],
        plans: &FxHashMap<String, OperatorPlan>,
    ) {
        let (counters, sketches) = JobStats::merged(jobs);
        self.record_observations(ijob, &counters, &sketches, plans);
    }

    /// Job-boundary statistics sink: feeds the catalog, then appends one
    /// [`crate::statstore::RunRecord`] per observed operator to the
    /// attached store, keyed by shape fingerprint and tagged with the
    /// fingerprint of the plan that actually executed.
    pub(crate) fn record_observations(
        &mut self,
        ijob: &IndexJobConf,
        counters: &Counters,
        sketches: &Sketches,
        plans: &FxHashMap<String, OperatorPlan>,
    ) {
        self.catalog.absorb(counters, sketches, &ijob.descriptors());
        let Some(store) = self.store.as_mut() else {
            return;
        };
        for (bound, placement) in ijob.operators() {
            let name = bound.op.name();
            if let Some(stats) = extract_operator_stats(counters, sketches, &bound.descriptor()) {
                let shape = fingerprint_operator(bound, placement);
                let plan_fp = plans
                    .get(name)
                    .map(|p| fingerprint_plan(shape, p))
                    .unwrap_or(0);
                store.record(shape, plan_fp, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accessor::testutil::MemIndex;
    use crate::jobconf::BoundOperator;
    use crate::operator::{operator_fn, IndexInput, IndexOutput};
    use efind_common::{Datum, Record};
    use efind_dfs::DfsConfig;
    use efind_mapreduce::{mapper_fn, reducer_fn, Collector};
    use std::sync::Arc;

    fn setup(n_records: i64, distinct: i64) -> (Cluster, Dfs, IndexJobConf) {
        let cluster = Cluster::builder()
            .nodes(4)
            .map_slots(2)
            .reduce_slots(2)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 1024,
                replication: 2,
                seed: 5,
            },
        );
        let records: Vec<Record> = (0..n_records)
            .map(|i| Record::new(i, Datum::Int(i % distinct)))
            .collect();
        dfs.write_file("in", records);

        let index = Arc::new(MemIndex::new(
            "vals",
            (0..distinct)
                .map(|i| (Datum::Int(i), vec![Datum::Text(format!("v{i}"))]))
                .collect(),
        ));
        let op = operator_fn(
            "join",
            1,
            |rec: &mut Record, keys: &mut IndexInput| {
                keys.put(0, rec.value.clone());
            },
            |rec: Record, values: &IndexOutput, out: &mut dyn Collector| {
                let v = values.first(0).first().cloned().unwrap_or(Datum::Null);
                out.collect(Record {
                    key: v,
                    value: rec.key,
                });
            },
        );
        let ijob = IndexJobConf::new("test", "in", "out")
            .add_head_index_operator(BoundOperator::new(op).add_index(index))
            .set_mapper(mapper_fn(|rec, out, _| out.collect(rec)))
            .set_reducer(
                reducer_fn(|key, values, out, _| {
                    out.collect(Record::new(key, values.len() as i64));
                }),
                2,
            );
        (cluster, dfs, ijob)
    }

    fn sorted_output(dfs: &Dfs) -> Vec<Record> {
        let mut out = dfs.read_file("out").unwrap();
        out.sort();
        out
    }

    #[test]
    fn all_static_modes_agree_on_output() {
        let mut outputs = Vec::new();
        for strategy in [Strategy::Baseline, Strategy::Cache, Strategy::Repartition] {
            let (cluster, mut dfs, ijob) = setup(200, 10);
            let mut rt = EFindRuntime::new(&cluster, &mut dfs);
            rt.run(&ijob, Mode::Uniform(strategy)).unwrap();
            outputs.push(sorted_output(&dfs));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
        assert_eq!(outputs[0].len(), 10);
    }

    #[test]
    fn optimized_requires_catalog_then_works() {
        let (cluster, mut dfs, ijob) = setup(200, 10);
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        assert!(rt.run(&ijob, Mode::Optimized).is_err());
        rt.run(&ijob, Mode::Uniform(Strategy::Baseline)).unwrap();
        let baseline_out = sorted_output(rt.dfs);
        let res = rt.run(&ijob, Mode::Optimized).unwrap();
        assert_eq!(sorted_output(rt.dfs), baseline_out);
        assert_eq!(res.plans.len(), 1);
    }

    #[test]
    fn cache_strategy_is_faster_on_redundant_keys() {
        let (cluster, mut dfs, ijob) = setup(400, 5);
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        let base = rt.run(&ijob, Mode::Uniform(Strategy::Baseline)).unwrap();
        let cache = rt.run(&ijob, Mode::Uniform(Strategy::Cache)).unwrap();
        assert!(
            cache.total_time < base.total_time,
            "cache {} vs base {}",
            cache.total_time,
            base.total_time
        );
    }

    #[test]
    fn manual_mode_defaults_to_cache() {
        let (cluster, mut dfs, ijob) = setup(100, 10);
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        let res = rt.run(&ijob, Mode::Manual(FxHashMap::default())).unwrap();
        assert_eq!(res.plans[0].1.choices[0].strategy, Strategy::Cache);
    }

    #[test]
    fn intermediates_cleaned_up() {
        let (cluster, mut dfs, ijob) = setup(100, 10);
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        rt.run(&ijob, Mode::Uniform(Strategy::Repartition)).unwrap();
        assert!(!rt.dfs.exists("test.tmp0"));
    }

    #[test]
    fn volatile_operators_are_pinned_to_baseline() {
        // A non-idempotent index (a counter posing as a lookup) must
        // never be cached or deduplicated, whatever the mode asks for.
        let (cluster, mut dfs, mut ijob) = setup(200, 10);
        ijob.head[0].volatile = true;
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        for mode in [
            Mode::Uniform(Strategy::Cache),
            Mode::Uniform(Strategy::Repartition),
            Mode::Dynamic,
        ] {
            let res = rt.run(&ijob, mode).unwrap();
            let plan = &res.plans.iter().find(|(n, _)| n == "join").unwrap().1;
            assert!(
                plan.choices
                    .iter()
                    .all(|c| c.strategy == Strategy::Baseline),
                "volatile operator must stay baseline: {plan:?}"
            );
        }
        // Optimized mode too (statistics exist from the runs above).
        let res = rt.run(&ijob, Mode::Optimized).unwrap();
        let plan = &res.plans.iter().find(|(n, _)| n == "join").unwrap().1;
        assert!(plan
            .choices
            .iter()
            .all(|c| c.strategy == Strategy::Baseline));
    }

    #[test]
    fn catalog_populated_after_run() {
        let (cluster, mut dfs, ijob) = setup(100, 10);
        let mut rt = EFindRuntime::new(&cluster, &mut dfs);
        rt.run(&ijob, Mode::Uniform(Strategy::Baseline)).unwrap();
        let stats = rt.catalog.get("join").unwrap();
        assert!((stats.n1 - 100.0).abs() < 1e-9);
        assert!((stats.indices[0].nik - 1.0).abs() < 1e-9);
    }
}
