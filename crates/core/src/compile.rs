//! Physical plan compilation.
//!
//! Turns an [`IndexJobConf`] plus per-operator [`OperatorPlan`]s into a
//! chain of plain MapReduce jobs:
//!
//! * **Baseline/Cache** indices become chained record-wise functions inside
//!   the current map (or reduce) computation — exactly Fig. 6.
//! * **Repartition/IndexLocality** indices insert a *shuffling job*
//!   (Fig. 7): records are re-keyed by the lookup key, shuffled so equal
//!   keys meet, and the shuffle job's reduce performs **one** lookup per
//!   distinct key. Index locality additionally co-partitions the shuffle
//!   with the index and declares scheduler affinity for the partition
//!   hosts (§3.4).
//!
//! Record-wise stages following a shuffle fold into that job's reduce, so
//! each job boundary stores the *latest* (usually smallest) intermediate —
//! the job-boundary placement freedom of Fig. 7 that the cost model's
//! `S_min` term reasons about.

use std::sync::Arc;

use efind_cluster::{
    ChaosPlan, CorruptionPlan, DetectorConfig, InjectionProfile, NetworkModel, PartitionPlan,
    SimDuration, TenancyConfig,
};
use efind_common::{Datum, Error, FxHashMap, Record, Result};
use efind_mapreduce::{
    partition::partitioner_fn, Collector, CounterHandle, HashPartitioner, JobConf, Mapper,
    MapperFactory, Partitioner, Reducer, ReducerFactory, TaskCtx,
};

use crate::accessor::{ChargedLookup, HedgeConfig, LookupMode, PartitionScheme};
use crate::cache::{LookupCache, ShadowCache};
use crate::carrier::Carrier;
use crate::fault::{Breaker, FaultConfig};
use crate::jobconf::{BoundOperator, IndexJobConf};
use crate::operator::{IndexInput, IndexOperator};
use crate::plan::{OperatorPlan, Strategy};
use crate::statsx::names;

/// Environment constants the compiled stages need.
#[derive(Clone)]
pub struct RuntimeEnv {
    /// Network model for lookup transfer charging.
    pub network: NetworkModel,
    /// Cache probe time `T_cache`.
    pub t_cache: SimDuration,
    /// Lookup cache capacity in entries.
    pub cache_capacity: usize,
    /// Reducer count for shuffling jobs (re-partitioning strategy).
    pub shuffle_reducers: usize,
    /// Chunk count for intermediate DFS files between chained jobs, so the
    /// follow-up job's map phase keeps the cluster busy.
    pub intermediate_chunks: usize,
    /// Hard co-location for index-locality tasks (experimental; the paper
    /// argues soft affinity is safer — footnote 3).
    pub hard_colocation: bool,
    /// Fault-tolerance configuration attached to every [`ChargedLookup`]
    /// built for this pipeline. Disabled = the plain lookup path.
    pub faults: FaultConfig,
    /// Data-corruption plan threaded into every lookup cache (entry
    /// poisoning) and [`ChargedLookup`] (response corruption) built for
    /// this pipeline. Quiet = the plain, checksum-free path.
    pub corruption: CorruptionPlan,
    /// Replication factor of the DFS the job reads from, for the
    /// analyzer's recoverability check (`EF017`): chunk corruption with
    /// replication 1 is unrecoverable by construction.
    pub dfs_replication: usize,
    /// Node-crash plan applied to every constituent MapReduce job, for
    /// the analyzer's injection-conflict check (`EF020`): killing every
    /// node leaves no survivor to finish the job.
    pub chaos: ChaosPlan,
    /// Node count of the simulated cluster the job runs on, paired with
    /// `chaos` for the survivability check.
    pub cluster_nodes: usize,
    /// Network-partition plan applied to every constituent MapReduce job,
    /// for the analyzer's reachability check (`EF025`): a partition that
    /// never heals and isolates every replica of the input leaves the job
    /// no way to finish.
    pub netsplit: PartitionPlan,
    /// Heartbeat failure-detector parameters paired with `netsplit` for
    /// the analyzer's EF025 interval-vs-suspicion sanity check.
    pub detector: DetectorConfig,
    /// Hedged-lookup configuration attached to every [`ChargedLookup`]
    /// built for this pipeline. Quiet (no threshold) = the plain lookup
    /// path; armed without a second replica/partition-side to race
    /// against trips the analyzer's EF026 warning.
    pub hedge: HedgeConfig,
    /// Measured-stats injections from the cross-job store: operators whose
    /// plans were built from recorded history instead of catalog
    /// estimates, with the EF023 probe costs attached. Empty whenever no
    /// store matched — the analyzer then runs exactly the pre-store
    /// check set.
    pub measured: Vec<crate::statstore::MeasuredOp>,
    /// Multi-tenant serving configuration of the cluster this job is
    /// admitted to. Quiet ([`TenancyConfig::is_quiet`]) = the plain
    /// single-job path: full cache capacity, no tenant counters, and the
    /// analyzer's EF024 checks never lower a tenancy model.
    pub tenancy: TenancyConfig,
    /// The tenant this job runs as (`None` = the implicit default
    /// tenant). Only consulted when `tenancy` is armed.
    pub tenant: Option<String>,
}

impl RuntimeEnv {
    /// Classifies the three injection layers once for this pipeline.
    ///
    /// This is the compile-time half of the quiet-path monomorphization:
    /// the profile is resolved here, before any stage closure is built, and
    /// every per-index install ([`ChargedLookup::with_faults`],
    /// [`LookupCache::with_corruption`]) makes the same Quiet/Armed call
    /// from the plans it receives — so a configured-but-quiet pipeline
    /// compiles to exactly the stages a never-configured one does.
    pub fn injection_profile(&self) -> InjectionProfile {
        let mut profile = InjectionProfile::from_plans(&self.chaos, &self.corruption)
            .with_partition(&self.netsplit)
            .with_tenancy(&self.tenancy);
        profile.faults = self.faults.layer_state();
        profile
    }

    /// The lookup-cache capacity this pipeline's caches are built with:
    /// the full configured capacity on the quiet path, or the tenant's
    /// reserved share of the shared cache when the tenancy layer is armed
    /// and the tenant holds a non-zero [`cache
    /// share`](efind_cluster::tenancy::TenantSpec::cache_share). A tenant
    /// without a reservation sees the full shared capacity, competing
    /// unreserved.
    pub fn effective_cache_capacity(&self) -> usize {
        if !self.tenancy.layer_state().is_armed() {
            return self.cache_capacity;
        }
        let share = self
            .tenant
            .as_deref()
            .map_or(0.0, |t| self.tenancy.cache_share(t));
        if share <= 0.0 {
            self.cache_capacity
        } else {
            ((self.cache_capacity as f64 * share) as usize).max(1)
        }
    }

    /// The per-tenant cache-eviction counter handle, present only when
    /// the tenancy layer is armed for a named tenant — the quiet path
    /// compiles mappers with no eviction accounting at all.
    fn tenant_eviction_handle(&self) -> Option<CounterHandle> {
        if !self.tenancy.layer_state().is_armed() {
            return None;
        }
        let tenant = self.tenant.as_deref()?;
        Some(CounterHandle::new(&format!(
            "efind.tenant.{tenant}.cache.evictions"
        )))
    }
}

/// A logical stage of the compiled data flow.
enum Stage {
    /// A record-wise chained function. `heavy` marks stages that perform
    /// index lookups: after a shuffle boundary these are *not* folded into
    /// the (less parallel) reduce — they start the next job's map phase,
    /// where every map slot works on them.
    Mapwise { factory: MapperFactory, heavy: bool },
    /// A shuffle boundary with its group-processing function.
    Shuffle(ShuffleSpec),
    /// A whole operator whose indices all use non-shuffle strategies,
    /// compiled twice: `fused` runs pre → lookups → post on one in-memory
    /// carrier (no intermediate record serialization); `staged` is the
    /// equivalent chain of individual stages. Assembly picks `fused` only
    /// in a plain map context — behind an open shuffle the staged split
    /// (pre into the reduce, lookups into the next job's map) is part of
    /// the job structure and must be preserved.
    Fusable {
        fused: MapperFactory,
        staged: Vec<Stage>,
    },
}

fn light(factory: MapperFactory) -> Stage {
    Stage::Mapwise {
        factory,
        heavy: false,
    }
}

fn heavy(factory: MapperFactory) -> Stage {
    Stage::Mapwise {
        factory,
        heavy: true,
    }
}

struct ShuffleSpec {
    partitioner: Arc<dyn Partitioner>,
    num_reducers: usize,
    /// `None` = identity group-by.
    reducer: Option<ReducerFactory>,
    /// True for shuffles inserted by a shuffle *strategy* (whose reduce
    /// parallelism is limited); false for the job's own Reduce, where the
    /// paper's Fig. 6 places chained tail functions.
    from_strategy: bool,
}

/// A compiled pipeline: one or more plain MapReduce jobs to run in order.
pub struct CompiledPipeline {
    /// Jobs in execution order; each consumes the previous one's output.
    pub jobs: Vec<JobConf>,
    /// Intermediate DFS files created between jobs (cleanup candidates).
    pub temp_files: Vec<String>,
    /// The static analysis report. Contains warnings only: analyzer errors
    /// abort compilation before this struct exists.
    pub analysis: efind_analyze::Report,
}

// ---------------------------------------------------------------------
// Stage implementations
// ---------------------------------------------------------------------

/// Pre-resolved counter names for one [`PreMapper`] — interned once per
/// operator at compile time so the per-record path never formats a name.
#[derive(Clone)]
struct PreHandles {
    n1: CounterHandle,
    s1_bytes: CounterHandle,
    spre_bytes: CounterHandle,
    irregular: Vec<CounterHandle>,
    shadow_probes: Vec<CounterHandle>,
    shadow_hits: Vec<CounterHandle>,
}

impl PreHandles {
    fn new(opname: &str, num_indices: usize) -> Self {
        PreHandles {
            n1: CounterHandle::new(&names::op(opname, "n1")),
            s1_bytes: CounterHandle::new(&names::op(opname, "s1.bytes")),
            spre_bytes: CounterHandle::new(&names::op(opname, "spre.bytes")),
            irregular: (0..num_indices)
                .map(|j| CounterHandle::new(&names::idx(opname, j, "nik.irregular")))
                .collect(),
            shadow_probes: (0..num_indices)
                .map(|j| CounterHandle::new(&names::idx(opname, j, "shadow.probes")))
                .collect(),
            shadow_hits: (0..num_indices)
                .map(|j| CounterHandle::new(&names::idx(opname, j, "shadow.hits")))
                .collect(),
        }
    }
}

/// `preProcess` + statistics: emits carrier records.
struct PreMapper {
    op: Arc<dyn IndexOperator>,
    charged: Arc<Vec<Arc<ChargedLookup>>>,
    shadows: Vec<ShadowCache>,
    h: PreHandles,
}

impl Mapper for PreMapper {
    fn map(&mut self, mut rec: Record, out: &mut dyn Collector, ctx: &mut TaskCtx) {
        ctx.counters.bump(self.h.n1, 1);
        ctx.counters.bump(self.h.s1_bytes, rec.size_bytes() as i64);
        let mut keys = IndexInput::new(self.charged.len());
        self.op.pre_process(&mut rec, &mut keys);
        let key_lists = keys.into_keys();
        for (j, list) in key_lists.iter().enumerate() {
            for key in list {
                self.charged[j].note_key(key, ctx);
                self.shadows[j].observe(key);
            }
            if list.len() != 1 {
                ctx.counters.bump(self.h.irregular[j], 1);
            }
        }
        let routing = rec.key.clone();
        let crec = Carrier::new(rec.key, rec.value, key_lists).into_record(routing);
        ctx.counters
            .bump(self.h.spre_bytes, crec.size_bytes() as i64);
        out.collect(crec);
    }

    fn flush(&mut self, _out: &mut dyn Collector, ctx: &mut TaskCtx) {
        for (j, shadow) in self.shadows.iter().enumerate() {
            ctx.counters
                .bump(self.h.shadow_probes[j], shadow.probes() as i64);
            ctx.counters
                .bump(self.h.shadow_hits[j], shadow.hits() as i64);
        }
    }
}

/// Record-wise lookup for one index: baseline, or cache-fronted.
struct DirectLookupMapper {
    charged: Arc<ChargedLookup>,
    slot: usize,
    cache: Option<LookupCache>,
    t_cache: SimDuration,
    c_cache_probes: CounterHandle,
    c_cache_hits: CounterHandle,
    c_cache_invalid: CounterHandle,
    /// Per-tenant eviction accounting (present only when the tenancy
    /// layer is armed for a named tenant).
    c_cache_evict: Option<CounterHandle>,
    /// Per-task circuit breaker (present only when faults are configured).
    breaker: Option<Breaker>,
}

impl Mapper for DirectLookupMapper {
    fn map(&mut self, rec: Record, out: &mut dyn Collector, ctx: &mut TaskCtx) {
        let routing = rec.key;
        let mut carrier = match Carrier::from_value(rec.value) {
            Ok(c) => c,
            Err(e) => return ctx.fail(format!("lookup stage: {e}")),
        };
        let keys = std::mem::take(&mut carrier.keys[self.slot]);
        let mut results = Vec::with_capacity(keys.len());
        for key in &keys {
            // Hits and fresh-insert clones are Arc refcount bumps; the
            // cached value list itself is never deep-copied here.
            let values = match self.cache.as_mut() {
                Some(cache) => match cache.probe(key) {
                    Some(hit) => hit,
                    None => {
                        let fresh = self.charged.lookup_guarded(
                            key,
                            LookupMode::Remote,
                            ctx,
                            self.breaker.as_mut(),
                        );
                        cache.insert(key.clone(), fresh.clone());
                        fresh
                    }
                },
                None => {
                    self.charged
                        .lookup_guarded(key, LookupMode::Remote, ctx, self.breaker.as_mut())
                }
            };
            results.push(values);
        }
        carrier.keys[self.slot] = keys;
        carrier.values[self.slot] = Some(results);
        out.collect(carrier.into_record(routing));
    }

    fn flush(&mut self, _out: &mut dyn Collector, ctx: &mut TaskCtx) {
        if let Some(cache) = &self.cache {
            // Probe time is charged in bulk: probes × T_cache (Eq. 2).
            ctx.charge(self.t_cache * cache.probes());
            ctx.counters
                .bump(self.c_cache_probes, cache.probes() as i64);
            ctx.counters.bump(self.c_cache_hits, cache.hits() as i64);
            // Guarded so corruption-free runs never materialize the counter
            // (a zero entry would perturb golden counter fingerprints).
            if cache.invalidations() > 0 {
                ctx.counters
                    .bump(self.c_cache_invalid, cache.invalidations() as i64);
            }
            if let Some(h) = self.c_cache_evict {
                if cache.evictions() > 0 {
                    ctx.counters.bump(h, cache.evictions() as i64);
                }
            }
        }
    }
}

/// Re-keys carrier records by the lookup key of index `slot`, preparing
/// the shuffle that groups duplicate keys together.
struct RekeyMapper {
    slot: usize,
}

impl Mapper for RekeyMapper {
    fn map(&mut self, rec: Record, out: &mut dyn Collector, ctx: &mut TaskCtx) {
        let carrier = match Carrier::from_value(rec.value) {
            Ok(c) => c,
            Err(e) => return ctx.fail(format!("rekey stage: {e}")),
        };
        match carrier.single_key(self.slot) {
            Ok(k) => {
                let k = k.clone();
                out.collect(carrier.into_record(k));
            }
            Err(e) => ctx.fail(e.to_string()),
        }
    }
}

/// The shuffling job's reduce: one lookup per distinct key, fanned back
/// out to every carrier in the group.
struct LookupGroupReducer {
    charged: Arc<ChargedLookup>,
    slot: usize,
    locality: Option<Arc<dyn PartitionScheme>>,
    hard_colocation: bool,
    /// Per-task circuit breaker (present only when faults are configured).
    breaker: Option<Breaker>,
}

impl Reducer for LookupGroupReducer {
    fn reduce(
        &mut self,
        key: Datum,
        values: Vec<Datum>,
        out: &mut dyn Collector,
        ctx: &mut TaskCtx,
    ) {
        let mode = if let Some(scheme) = &self.locality {
            let p = scheme.partition_of(&key);
            ctx.add_affinity(&scheme.hosts(p));
            if self.hard_colocation {
                ctx.require_affinity();
            }
            LookupMode::Local
        } else {
            LookupMode::Remote
        };
        let result = self
            .charged
            .lookup_guarded(&key, mode, ctx, self.breaker.as_mut());
        for payload in values {
            let mut carrier = match Carrier::from_value(payload) {
                Ok(c) => c,
                Err(e) => return ctx.fail(format!("group lookup stage: {e}")),
            };
            carrier.values[self.slot] = Some(vec![result.clone()]);
            let routing = carrier.k1.clone();
            out.collect(carrier.into_record(routing));
        }
    }
}

/// `postProcess` + statistics: consumes filled carriers.
struct PostMapper {
    op: Arc<dyn IndexOperator>,
    c_sidx_bytes: CounterHandle,
    c_spost_bytes: CounterHandle,
    c_post_out: CounterHandle,
}

impl Mapper for PostMapper {
    fn map(&mut self, rec: Record, out: &mut dyn Collector, ctx: &mut TaskCtx) {
        ctx.counters
            .bump(self.c_sidx_bytes, rec.size_bytes() as i64);
        let carrier = match Carrier::from_value(rec.value) {
            Ok(c) => c,
            Err(e) => return ctx.fail(format!("post stage: {e}")),
        };
        let (prec, iout) = match carrier.into_post_input() {
            Ok(v) => v,
            Err(e) => return ctx.fail(e.to_string()),
        };
        let mut buf: Vec<Record> = Vec::new();
        self.op.post_process(prec, &iout, &mut buf);
        let bytes: u64 = buf.iter().map(Record::size_bytes).sum();
        ctx.counters.bump(self.c_spost_bytes, bytes as i64);
        ctx.counters.bump(self.c_post_out, buf.len() as i64);
        for r in buf {
            out.collect(r);
        }
    }
}

/// One direct-lookup slot of a [`FusedLookupMapper`], in plan order.
struct FusedSlot {
    charged: Arc<ChargedLookup>,
    slot: usize,
    cache: Option<LookupCache>,
    t_cache: SimDuration,
    c_cache_probes: CounterHandle,
    c_cache_hits: CounterHandle,
    c_cache_invalid: CounterHandle,
    /// Per-tenant eviction accounting (present only when the tenancy
    /// layer is armed for a named tenant).
    c_cache_evict: Option<CounterHandle>,
    /// Per-task circuit breaker (present only when faults are configured).
    breaker: Option<Breaker>,
}

/// A whole operator fused into one record-wise function: `pre_process`,
/// direct lookups for every index, and `post_process` run on a single
/// in-memory [`Carrier`] — no intermediate record serialization between
/// stages. Counter values (including the `spre`/`sidx` byte statistics,
/// computed via [`Carrier::record_size_bytes`]) and per-slot cache/shadow
/// key sequences are identical to the staged pipeline's.
struct FusedLookupMapper {
    op: Arc<dyn IndexOperator>,
    charged: Arc<Vec<Arc<ChargedLookup>>>,
    shadows: Vec<ShadowCache>,
    h: PreHandles,
    lookups: Vec<FusedSlot>,
    c_sidx_bytes: CounterHandle,
    c_spost_bytes: CounterHandle,
    c_post_out: CounterHandle,
}

impl Mapper for FusedLookupMapper {
    fn map(&mut self, mut rec: Record, out: &mut dyn Collector, ctx: &mut TaskCtx) {
        // preProcess + statistics (mirrors PreMapper).
        ctx.counters.bump(self.h.n1, 1);
        ctx.counters.bump(self.h.s1_bytes, rec.size_bytes() as i64);
        let mut keys = IndexInput::new(self.charged.len());
        self.op.pre_process(&mut rec, &mut keys);
        let key_lists = keys.into_keys();
        for (j, list) in key_lists.iter().enumerate() {
            for key in list {
                self.charged[j].note_key(key, ctx);
                self.shadows[j].observe(key);
            }
            if list.len() != 1 {
                ctx.counters.bump(self.h.irregular[j], 1);
            }
        }
        let mut carrier = Carrier::new(rec.key, rec.value, key_lists);
        // The staged PreMapper routes by the original key (= k1 here).
        ctx.counters.bump(
            self.h.spre_bytes,
            carrier.record_size_bytes(&carrier.k1) as i64,
        );

        // Direct lookups per slot (mirrors DirectLookupMapper).
        for fs in &mut self.lookups {
            let keys = std::mem::take(&mut carrier.keys[fs.slot]);
            let mut results = Vec::with_capacity(keys.len());
            for key in &keys {
                let values = match fs.cache.as_mut() {
                    Some(cache) => match cache.probe(key) {
                        Some(hit) => hit,
                        None => {
                            let fresh = fs.charged.lookup_guarded(
                                key,
                                LookupMode::Remote,
                                ctx,
                                fs.breaker.as_mut(),
                            );
                            cache.insert(key.clone(), fresh.clone());
                            fresh
                        }
                    },
                    None => {
                        fs.charged
                            .lookup_guarded(key, LookupMode::Remote, ctx, fs.breaker.as_mut())
                    }
                };
                results.push(values);
            }
            carrier.keys[fs.slot] = keys;
            carrier.values[fs.slot] = Some(results);
        }
        ctx.counters.bump(
            self.c_sidx_bytes,
            carrier.record_size_bytes(&carrier.k1) as i64,
        );

        // postProcess + statistics (mirrors PostMapper).
        let (prec, iout) = match carrier.into_post_input() {
            Ok(v) => v,
            Err(e) => return ctx.fail(e.to_string()),
        };
        let mut buf: Vec<Record> = Vec::new();
        self.op.post_process(prec, &iout, &mut buf);
        let bytes: u64 = buf.iter().map(Record::size_bytes).sum();
        ctx.counters.bump(self.c_spost_bytes, bytes as i64);
        ctx.counters.bump(self.c_post_out, buf.len() as i64);
        for r in buf {
            out.collect(r);
        }
    }

    fn flush(&mut self, _out: &mut dyn Collector, ctx: &mut TaskCtx) {
        for (j, shadow) in self.shadows.iter().enumerate() {
            ctx.counters
                .bump(self.h.shadow_probes[j], shadow.probes() as i64);
            ctx.counters
                .bump(self.h.shadow_hits[j], shadow.hits() as i64);
        }
        for fs in &self.lookups {
            if let Some(cache) = &fs.cache {
                ctx.charge(fs.t_cache * cache.probes());
                ctx.counters.bump(fs.c_cache_probes, cache.probes() as i64);
                ctx.counters.bump(fs.c_cache_hits, cache.hits() as i64);
                // Guarded: see DirectLookupMapper::flush.
                if cache.invalidations() > 0 {
                    ctx.counters
                        .bump(fs.c_cache_invalid, cache.invalidations() as i64);
                }
                if let Some(h) = fs.c_cache_evict {
                    if cache.evictions() > 0 {
                        ctx.counters.bump(h, cache.evictions() as i64);
                    }
                }
            }
        }
    }
}

/// Counts the original Map's output (the `Smap` statistic).
struct MapOutCounter {
    c_records: CounterHandle,
    c_bytes: CounterHandle,
}

impl MapOutCounter {
    fn new() -> Self {
        MapOutCounter {
            c_records: CounterHandle::new(names::MAPOUT_RECORDS),
            c_bytes: CounterHandle::new(names::MAPOUT_BYTES),
        }
    }
}

impl Mapper for MapOutCounter {
    fn map(&mut self, rec: Record, out: &mut dyn Collector, ctx: &mut TaskCtx) {
        ctx.counters.bump(self.c_records, 1);
        ctx.counters.bump(self.c_bytes, rec.size_bytes() as i64);
        out.collect(rec);
    }
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

fn compile_operator(
    bound: &BoundOperator,
    plan: &OperatorPlan,
    env: &RuntimeEnv,
    stages: &mut Vec<Stage>,
) -> Result<()> {
    let opname = bound.op.name().to_owned();
    let charged: Arc<Vec<Arc<ChargedLookup>>> = Arc::new(
        bound
            .indices
            .iter()
            .enumerate()
            .map(|(j, acc)| {
                Arc::new(
                    ChargedLookup::new(acc.clone(), env.network, names::idx_prefix(&opname, j))
                        .with_faults(&env.faults)
                        .with_corruption(&env.corruption)
                        .with_hedging(&env.hedge),
                )
            })
            .collect(),
    );
    if plan.choices.len() != bound.indices.len() {
        return Err(Error::Internal(format!(
            "plan for operator {opname} covers {} of {} indices",
            plan.choices.len(),
            bound.indices.len()
        )));
    }

    let mut op_stages: Vec<Stage> = Vec::new();
    let pre_handles = PreHandles::new(&opname, charged.len());
    // The shadow cache must mirror the real lookup cache's capacity —
    // including a tenant's reserved share — or the miss ratio R it
    // reports misleads the planner.
    let shadow_capacity = env.effective_cache_capacity();
    let c_cache_evict = env.tenant_eviction_handle();

    // preProcess stage.
    {
        let op = bound.op.clone();
        let charged = charged.clone();
        let h = pre_handles.clone();
        op_stages.push(light(Arc::new(move || {
            Box::new(PreMapper {
                op: op.clone(),
                charged: charged.clone(),
                shadows: (0..charged.len())
                    .map(|_| ShadowCache::new(shadow_capacity))
                    .collect(),
                h: h.clone(),
            })
        })));
    }

    // Lookup stages, in plan order. Direct (non-shuffle) choices are also
    // collected for the fused single-pass form of the operator.
    let all_direct = plan
        .choices
        .iter()
        .all(|c| matches!(c.strategy, Strategy::Baseline | Strategy::Cache));
    struct DirectConfig {
        charged: Arc<ChargedLookup>,
        slot: usize,
        with_cache: bool,
        c_cache_probes: CounterHandle,
        c_cache_hits: CounterHandle,
        c_cache_invalid: CounterHandle,
    }
    let mut direct_configs: Vec<DirectConfig> = Vec::new();
    for choice in &plan.choices {
        let slot = choice.index;
        let cl = charged[slot].clone();
        match choice.strategy {
            Strategy::Baseline | Strategy::Cache => {
                let with_cache = choice.strategy == Strategy::Cache;
                let t_cache = env.t_cache;
                let capacity = env.effective_cache_capacity();
                let c_cache_probes = CounterHandle::new(&format!("{}cache.probes", cl.prefix()));
                let c_cache_hits = CounterHandle::new(&format!("{}cache.hits", cl.prefix()));
                let c_cache_invalid =
                    CounterHandle::new(&format!("{}integrity.cache.invalid", cl.prefix()));
                if all_direct {
                    direct_configs.push(DirectConfig {
                        charged: cl.clone(),
                        slot,
                        with_cache,
                        c_cache_probes,
                        c_cache_hits,
                        c_cache_invalid,
                    });
                }
                let corruption = env.corruption.clone();
                op_stages.push(heavy(Arc::new(move || {
                    Box::new(DirectLookupMapper {
                        charged: cl.clone(),
                        slot,
                        cache: with_cache.then(|| {
                            LookupCache::new(capacity).with_corruption(&corruption, cl.prefix())
                        }),
                        t_cache,
                        c_cache_probes,
                        c_cache_hits,
                        c_cache_invalid,
                        c_cache_evict,
                        breaker: cl.new_breaker(),
                    })
                })));
            }
            Strategy::Repartition | Strategy::IndexLocality => {
                let locality = if choice.strategy == Strategy::IndexLocality {
                    Some(cl.accessor().partition_scheme().ok_or_else(|| {
                        Error::InvalidConfig(format!(
                            "index {} of operator {opname} has no partition scheme; \
                             index locality is unavailable",
                            slot
                        ))
                    })?)
                } else {
                    None
                };
                op_stages.push(light(Arc::new(move || Box::new(RekeyMapper { slot }))));
                let (partitioner, num_reducers): (Arc<dyn Partitioner>, usize) = match &locality {
                    Some(scheme) => {
                        let s = scheme.clone();
                        (
                            partitioner_fn(move |key, n| s.partition_of(key) % n.max(1)),
                            scheme.num_partitions(),
                        )
                    }
                    None => (Arc::new(HashPartitioner), env.shuffle_reducers),
                };
                let cl2 = cl.clone();
                let hard_colocation = env.hard_colocation;
                let reducer: ReducerFactory = Arc::new(move || {
                    Box::new(LookupGroupReducer {
                        charged: cl2.clone(),
                        slot,
                        locality: locality.clone(),
                        hard_colocation,
                        breaker: cl2.new_breaker(),
                    })
                });
                op_stages.push(Stage::Shuffle(ShuffleSpec {
                    partitioner,
                    num_reducers,
                    reducer: Some(reducer),
                    from_strategy: true,
                }));
            }
        }
    }

    // postProcess stage.
    let c_sidx_bytes = CounterHandle::new(&names::op(&opname, "sidx.bytes"));
    let c_spost_bytes = CounterHandle::new(&names::op(&opname, "spost.bytes"));
    let c_post_out = CounterHandle::new(&names::op(&opname, "post.out"));
    {
        let op = bound.op.clone();
        op_stages.push(light(Arc::new(move || {
            Box::new(PostMapper {
                op: op.clone(),
                c_sidx_bytes,
                c_spost_bytes,
                c_post_out,
            })
        })));
    }

    if all_direct {
        // Every index is looked up record-wise, so the whole operator also
        // compiles to one fused stage. Assembly picks it when the operator
        // lands in a plain map context.
        let op = bound.op.clone();
        let charged = charged.clone();
        let h = pre_handles;
        let t_cache = env.t_cache;
        let capacity = env.effective_cache_capacity();
        let configs = Arc::new(direct_configs);
        let corruption = env.corruption.clone();
        let fused: MapperFactory = Arc::new(move || {
            Box::new(FusedLookupMapper {
                op: op.clone(),
                charged: charged.clone(),
                shadows: (0..charged.len())
                    .map(|_| ShadowCache::new(shadow_capacity))
                    .collect(),
                h: h.clone(),
                lookups: configs
                    .iter()
                    .map(|c| FusedSlot {
                        charged: c.charged.clone(),
                        slot: c.slot,
                        cache: c.with_cache.then(|| {
                            LookupCache::new(capacity)
                                .with_corruption(&corruption, c.charged.prefix())
                        }),
                        t_cache,
                        c_cache_probes: c.c_cache_probes,
                        c_cache_hits: c.c_cache_hits,
                        c_cache_invalid: c.c_cache_invalid,
                        c_cache_evict,
                        breaker: c.charged.new_breaker(),
                    })
                    .collect(),
                c_sidx_bytes,
                c_spost_bytes,
                c_post_out,
            })
        });
        stages.push(Stage::Fusable {
            fused,
            staged: op_stages,
        });
    } else {
        stages.extend(op_stages);
    }
    Ok(())
}

/// Compiles an enhanced job + plans into a chain of plain MapReduce jobs.
pub fn compile_pipeline(
    ijob: &IndexJobConf,
    plans: &FxHashMap<String, OperatorPlan>,
    env: &RuntimeEnv,
) -> Result<CompiledPipeline> {
    ijob.validate()?;
    // The job's own tenant tag outranks the runtime-level default, so one
    // runtime can compile jobs for several tenants.
    let mut env_owned;
    let env = if ijob.tenant.is_some() && ijob.tenant != env.tenant {
        env_owned = env.clone();
        env_owned.tenant = ijob.tenant.clone();
        &env_owned
    } else {
        env
    };
    // Static plan verification (EF001..): hard errors abort compilation
    // here, before any stage is built; warnings travel with the pipeline.
    let analysis = crate::analysis::analyze_job_in_env(ijob, plans, env)?.into_result()?;
    let plan_of = |bound: &BoundOperator| -> Result<&OperatorPlan> {
        plans
            .get(bound.op.name())
            .ok_or_else(|| Error::Internal(format!("no plan for operator {}", bound.op.name())))
    };

    let mut stages: Vec<Stage> = Vec::new();
    for bound in &ijob.head {
        compile_operator(bound, plan_of(bound)?, env, &mut stages)?;
    }
    for user_map in &ijob.map {
        stages.push(light(user_map.clone()));
    }
    stages.push(light(Arc::new(|| Box::new(MapOutCounter::new()))));
    for bound in &ijob.body {
        compile_operator(bound, plan_of(bound)?, env, &mut stages)?;
    }
    if ijob.has_reduce() {
        stages.push(Stage::Shuffle(ShuffleSpec {
            partitioner: ijob.partitioner.clone(),
            num_reducers: ijob.num_reducers,
            reducer: ijob.reducer.clone(),
            from_strategy: false,
        }));
    }
    for bound in &ijob.tail {
        compile_operator(bound, plan_of(bound)?, env, &mut stages)?;
    }

    // Split the stage list into jobs at shuffle boundaries: record-wise
    // stages after a shuffle fold into that job's reduce.
    #[derive(Default)]
    struct JobBuild {
        map: Vec<MapperFactory>,
        shuffle: Option<ShuffleSpec>,
        post: Vec<MapperFactory>,
    }
    impl JobBuild {
        fn strategy_shuffle(&self) -> bool {
            self.shuffle.as_ref().is_some_and(|s| s.from_strategy)
        }
    }
    fn push_mapwise(builds: &mut Vec<JobBuild>, factory: MapperFactory, heavy: bool) {
        let open = builds.last_mut().expect("at least one build");
        if open.shuffle.is_none() {
            open.map.push(factory);
        } else if heavy && open.strategy_shuffle() {
            // Lookup stages after a *strategy* shuffle start a new
            // job so they run map-side (full slot parallelism)
            // instead of inside the shuffle job's narrow reduce.
            // After the job's own Reduce they stay chained, as in
            // Fig. 6(c).
            builds.push(JobBuild {
                map: vec![factory],
                shuffle: None,
                post: Vec::new(),
            });
        } else {
            open.post.push(factory);
        }
    }
    fn push_shuffle(builds: &mut Vec<JobBuild>, spec: ShuffleSpec) {
        let open = builds.last_mut().expect("at least one build");
        if open.shuffle.is_none() {
            open.shuffle = Some(spec);
        } else {
            builds.push(JobBuild {
                map: Vec::new(),
                shuffle: Some(spec),
                post: Vec::new(),
            });
        }
    }
    let mut builds: Vec<JobBuild> = vec![JobBuild::default()];
    for stage in stages {
        match stage {
            Stage::Mapwise { factory, heavy } => push_mapwise(&mut builds, factory, heavy),
            Stage::Shuffle(spec) => push_shuffle(&mut builds, spec),
            Stage::Fusable { fused, staged } => {
                let open = builds.last_mut().expect("at least one build");
                if open.shuffle.is_none() {
                    // Plain map context: the fused form is observationally
                    // identical to the staged chain and skips the carrier
                    // serialize/parse between stages.
                    open.map.push(fused);
                } else {
                    // Behind an open shuffle the staged split (light pre
                    // into the reduce, heavy lookups starting a new job)
                    // is part of the job structure — keep it.
                    for s in staged {
                        match s {
                            Stage::Mapwise { factory, heavy } => {
                                push_mapwise(&mut builds, factory, heavy);
                            }
                            Stage::Shuffle(spec) => push_shuffle(&mut builds, spec),
                            Stage::Fusable { .. } => {
                                unreachable!("fusable stages do not nest")
                            }
                        }
                    }
                }
            }
        }
    }

    let total = builds.len();
    let mut jobs = Vec::with_capacity(total);
    let mut temp_files = Vec::new();
    for (i, build) in builds.into_iter().enumerate() {
        let input = if i == 0 {
            ijob.input.clone()
        } else {
            format!("{}.tmp{}", ijob.name, i - 1)
        };
        let is_last = i + 1 == total;
        let output = if is_last {
            ijob.output.clone()
        } else {
            let t = format!("{}.tmp{}", ijob.name, i);
            temp_files.push(t.clone());
            t
        };
        let mut conf = JobConf::new(format!("{}-j{i}", ijob.name), input, output)
            .with_cpu_per_record(ijob.cpu_per_record);
        if !is_last {
            conf.output_chunks = Some(env.intermediate_chunks.max(1));
        }
        conf.map_chain = build.map;
        if let Some(spec) = build.shuffle {
            conf.num_reducers = spec.num_reducers.max(1);
            conf.partitioner = spec.partitioner;
            conf.reducer = spec.reducer;
            conf.reduce_post = build.post;
        } else {
            debug_assert!(build.post.is_empty());
        }
        jobs.push(conf);
    }
    Ok(CompiledPipeline {
        jobs,
        temp_files,
        analysis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accessor::testutil::MemIndex;
    use crate::operator::operator_fn;
    use crate::plan::forced_plan;
    use efind_cluster::Cluster;
    use efind_cluster::SimTime;
    use efind_dfs::{Dfs, DfsConfig};
    use efind_mapreduce::{mapper_fn, reducer_fn, Runner};

    fn env() -> RuntimeEnv {
        RuntimeEnv {
            network: NetworkModel::gigabit(),
            t_cache: SimDuration::from_micros(1),
            cache_capacity: 64,
            shuffle_reducers: 4,
            intermediate_chunks: 8,
            hard_colocation: false,
            faults: FaultConfig::disabled(),
            corruption: CorruptionPlan::none(),
            dfs_replication: 2,
            chaos: ChaosPlan::none(),
            cluster_nodes: 4,
            netsplit: PartitionPlan::none(),
            detector: DetectorConfig::default(),
            hedge: HedgeConfig::disabled(),
            measured: Vec::new(),
            tenancy: TenancyConfig::none(),
            tenant: None,
        }
    }

    /// A tiny enhanced job: head operator enriches each record's value by
    /// looking up `key % 10` in an index, Map uppercases, Reduce counts.
    fn sample_ijob(strategy: Strategy) -> (IndexJobConf, FxHashMap<String, OperatorPlan>) {
        let index = Arc::new(MemIndex::new(
            "mod10",
            (0..10i64)
                .map(|i| (Datum::Int(i), vec![Datum::Text(format!("g{i}"))]))
                .collect(),
        ));
        let op = operator_fn(
            "enrich",
            1,
            |rec: &mut Record, keys: &mut IndexInput| {
                keys.put(0, rec.key.as_int().unwrap() % 10);
            },
            |rec: Record, values: &crate::operator::IndexOutput, out: &mut dyn Collector| {
                let group = values.first(0).first().cloned().unwrap_or(Datum::Null);
                out.collect(Record {
                    key: group,
                    value: rec.value,
                });
            },
        );
        let bound = BoundOperator::new(op).add_index(index);
        let caps = bound.caps();
        let ijob = IndexJobConf::new("sample", "in", "out")
            .add_head_index_operator(bound)
            .set_mapper(mapper_fn(|rec, out, _| out.collect(rec)))
            .set_reducer(
                reducer_fn(|key, values, out, _| {
                    out.collect(Record::new(key, values.len() as i64));
                }),
                2,
            );
        let mut plans = FxHashMap::default();
        plans.insert("enrich".to_owned(), forced_plan(&caps, strategy));
        (ijob, plans)
    }

    fn run_pipeline(strategy: Strategy) -> (Vec<Record>, usize) {
        let cluster = Cluster::builder()
            .nodes(3)
            .map_slots(2)
            .reduce_slots(2)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 512,
                replication: 2,
                seed: 3,
            },
        );
        let records: Vec<Record> = (0..100i64).map(|i| Record::new(i, "x")).collect();
        dfs.write_file("in", records);
        let (ijob, plans) = sample_ijob(strategy);
        let compiled = compile_pipeline(&ijob, &plans, &env()).unwrap();
        let n_jobs = compiled.jobs.len();
        let mut t = SimTime::ZERO;
        for job in &compiled.jobs {
            let res = Runner::new(&cluster, &mut dfs).run(job, t).unwrap();
            t = res.stats.finished;
        }
        let mut out = dfs.read_file("out").unwrap();
        out.sort();
        (out, n_jobs)
    }

    #[test]
    fn baseline_compiles_to_single_job() {
        let (out, n_jobs) = run_pipeline(Strategy::Baseline);
        assert_eq!(n_jobs, 1);
        assert_eq!(out.len(), 10);
        for r in &out {
            assert_eq!(r.value, Datum::Int(10)); // 100 records over 10 groups
        }
    }

    #[test]
    fn cache_produces_identical_output() {
        let (base, _) = run_pipeline(Strategy::Baseline);
        let (cache, n_jobs) = run_pipeline(Strategy::Cache);
        assert_eq!(n_jobs, 1);
        assert_eq!(base, cache);
    }

    #[test]
    fn repartition_adds_a_shuffle_job_and_matches() {
        let (base, _) = run_pipeline(Strategy::Baseline);
        let (repart, n_jobs) = run_pipeline(Strategy::Repartition);
        assert_eq!(n_jobs, 2, "head repartition should split into two jobs");
        assert_eq!(base, repart);
    }

    #[test]
    fn lookup_counters_reflect_dedup() {
        let cluster = Cluster::builder()
            .nodes(2)
            .map_slots(1)
            .reduce_slots(1)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 100_000,
                replication: 1,
                seed: 3,
            },
        );
        let records: Vec<Record> = (0..100i64).map(|i| Record::new(i, "x")).collect();
        dfs.write_file("in", records);

        // Baseline: 100 lookups. Repartition: one per distinct key (10).
        for (strategy, expected_lookups) in [(Strategy::Baseline, 100), (Strategy::Repartition, 10)]
        {
            let (ijob, plans) = sample_ijob(strategy);
            let compiled = compile_pipeline(&ijob, &plans, &env()).unwrap();
            let mut t = SimTime::ZERO;
            let mut lookups = 0i64;
            for job in &compiled.jobs {
                let res = Runner::new(&cluster, &mut dfs).run(job, t).unwrap();
                t = res.stats.finished;
                lookups += res.stats.counters.get("efind.enrich.0.lookups");
            }
            assert_eq!(lookups, expected_lookups, "{strategy:?}");
        }
    }

    #[test]
    fn cache_counters_present() {
        let cluster = Cluster::builder()
            .nodes(2)
            .map_slots(1)
            .reduce_slots(1)
            .build();
        let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
        let records: Vec<Record> = (0..100i64).map(|i| Record::new(i, "x")).collect();
        dfs.write_file("in", records);
        let (ijob, plans) = sample_ijob(Strategy::Cache);
        let compiled = compile_pipeline(&ijob, &plans, &env()).unwrap();
        let res = Runner::new(&cluster, &mut dfs)
            .run(&compiled.jobs[0], SimTime::ZERO)
            .unwrap();
        let c = &res.stats.counters;
        assert_eq!(c.get("efind.enrich.0.cache.probes"), 100);
        // 10 distinct keys in one task: 90 hits.
        assert_eq!(c.get("efind.enrich.0.cache.hits"), 90);
        assert_eq!(c.get("efind.enrich.0.lookups"), 10);
        assert_eq!(c.get("efind.enrich.n1"), 100);
        assert!(c.get("efind.enrich.spre.bytes") > 0);
        assert!(c.get("efind.enrich.spost.bytes") > 0);
        assert!(c.get(names::MAPOUT_BYTES) > 0);
    }

    #[test]
    fn cache_corruption_invalidates_entries_but_preserves_output() {
        let cluster = Cluster::builder()
            .nodes(2)
            .map_slots(1)
            .reduce_slots(1)
            .build();
        let run = |plan: CorruptionPlan| {
            let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
            let records: Vec<Record> = (0..100i64).map(|i| Record::new(i, "x")).collect();
            dfs.write_file("in", records);
            let (ijob, plans) = sample_ijob(Strategy::Cache);
            let mut e = env();
            e.corruption = plan.clone();
            let compiled = compile_pipeline(&ijob, &plans, &e).unwrap();
            let res = Runner::new(&cluster, &mut dfs)
                .with_corruption(plan)
                .run(&compiled.jobs[0], SimTime::ZERO)
                .unwrap();
            let mut out = dfs.read_file("out").unwrap();
            out.sort();
            (out, res.stats)
        };
        let (clean_out, clean) = run(CorruptionPlan::none());
        let (out, noisy) = run(CorruptionPlan::new(11).cache(0.3));
        // Poisoned entries are evicted and re-fetched from the index, so
        // the answer is unchanged — only virtual time and the integrity
        // counters move.
        assert_eq!(clean_out, out);
        assert!(noisy.counters.get("efind.enrich.0.integrity.cache.invalid") > 0);
        assert!(noisy.integrity.cache_invalidations > 0);
        assert!(noisy.finished > clean.finished);
        assert!(clean.integrity.is_empty());
    }

    #[test]
    fn index_locality_without_scheme_is_rejected() {
        let (ijob, mut plans) = sample_ijob(Strategy::Baseline);
        // Force index locality despite MemIndex exposing no scheme.
        plans.get_mut("enrich").unwrap().choices[0].strategy = Strategy::IndexLocality;
        assert!(compile_pipeline(&ijob, &plans, &env()).is_err());
    }

    #[test]
    fn missing_plan_is_an_error() {
        let (ijob, _) = sample_ijob(Strategy::Baseline);
        let empty = FxHashMap::default();
        assert!(compile_pipeline(&ijob, &empty, &env()).is_err());
    }
}
