//! The lookup cache (§3.2) and the shadow cache used to estimate its miss
//! ratio while running other strategies (§4.2).
//!
//! *"EFind inserts the input ik and the result {iv} of a lookup operation
//! into an LRU-organized cache. … It invokes the lookup method only when
//! there is a miss in the lookup cache."* The cache holds a fixed number of
//! key→value entries (1024 in the paper's experiments).

use std::sync::Arc;

use efind_cluster::CorruptionPlan;
use efind_common::{crc32, Datum, FxHashMap};

/// Intrusive doubly-linked LRU list over a slab of entries.
struct Entry<V> {
    key: Datum,
    value: V,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A fixed-capacity LRU map from lookup keys to values.
pub struct LruMap<V> {
    map: FxHashMap<Datum, usize>,
    slab: Vec<Entry<V>>,
    /// Slab slots vacated by [`remove`](Self::remove), reused before the
    /// slab grows. The stale entry parks in its slot until reuse.
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<V> LruMap<V> {
    /// Creates an LRU map holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruMap {
            map: FxHashMap::default(),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on hit.
    pub fn get(&mut self, key: &Datum) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.slab[idx].value)
    }

    /// Removes `key` from the map, unlinking it from the recency list and
    /// freeing its slab slot for reuse. Returns true if it was present.
    pub fn remove(&mut self, key: &Datum) -> bool {
        let Some(idx) = self.map.remove(key) else {
            return false;
        };
        self.unlink(idx);
        self.free.push(idx);
        true
    }

    /// Inserts or refreshes `key`, evicting the least-recently-used entry
    /// at capacity. Returns true exactly when an entry was evicted.
    pub fn insert(&mut self, key: Datum, value: V) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return false;
        }
        if let Some(idx) = self.free.pop() {
            self.slab[idx] = Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            };
            self.map.insert(key, idx);
            self.push_front(idx);
            return false;
        }
        if self.map.len() == self.capacity {
            // Evict LRU and reuse its slab slot.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = std::mem::replace(&mut self.slab[victim].key, key.clone());
            self.map.remove(&old_key);
            self.slab[victim].value = value;
            self.map.insert(key, victim);
            self.push_front(victim);
            true
        } else {
            let idx = self.slab.len();
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, idx);
            self.push_front(idx);
            false
        }
    }

    /// Keys from most- to least-recently used (test/debug helper).
    pub fn keys_mru_order(&self) -> Vec<&Datum> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(&self.slab[cur].key);
            cur = self.slab[cur].next;
        }
        out
    }
}

/// One cached result list plus the checksums that guard it. On the plain
/// (unarmed) path both CRCs are zero and verification never fires.
struct CacheEntry {
    values: Arc<[Datum]>,
    /// CRC-32 of the encoded result list, computed at insertion.
    write_crc: u32,
    /// CRC-32 the stored copy reads back with — differs from `write_crc`
    /// exactly when the corruption plan poisoned this insertion.
    read_crc: u32,
}

/// Cache-poisoning state of an armed [`LookupCache`].
struct ArmedCorruption {
    plan: CorruptionPlan,
    /// Draw scope: the owning lookup's `efind.<operator>.<index>.` prefix.
    scope: String,
    /// Per-key insertion ordinal, so re-inserted entries draw fresh.
    generations: FxHashMap<Datum, u64>,
}

/// The lookup cache: an LRU of key → result lists, with hit statistics.
///
/// Result lists are stored as `Arc<[Datum]>` so a probe hit hands back a
/// shared handle — no deep copy of the cached values, regardless of how
/// large the result list is.
///
/// When armed with a [`CorruptionPlan`] that poisons cache entries, every
/// insertion computes a CRC-32 over the encoded result list and every hit
/// verifies it; a mismatch evicts the poisoned entry and reports a miss,
/// so the caller re-fetches from the index — a poisoned entry costs one
/// invalidation and one extra lookup, never a wrong answer.
pub struct LookupCache {
    lru: LruMap<CacheEntry>,
    probes: u64,
    hits: u64,
    invalidations: u64,
    evictions: u64,
    armed: Option<ArmedCorruption>,
}

impl LookupCache {
    /// Paper default: 1024 index key-value entries.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a cache with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LookupCache {
            lru: LruMap::new(capacity),
            probes: 0,
            hits: 0,
            invalidations: 0,
            evictions: 0,
            armed: None,
        }
    }

    /// Arms cache poisoning under `plan`, drawing in `scope` (the owning
    /// lookup's counter prefix). A plan that cannot poison the cache — or
    /// has verification disabled, so poison would go undetected — leaves
    /// the cache on the plain, checksum-free path.
    pub fn with_corruption(mut self, plan: &CorruptionPlan, scope: &str) -> Self {
        if plan.verifies_cache() {
            self.armed = Some(ArmedCorruption {
                plan: plan.clone(),
                scope: scope.to_owned(),
                generations: FxHashMap::default(),
            });
        }
        self
    }

    /// Probes for `key`; returns a shared handle to the cached result
    /// list on a hit (an `Arc` refcount bump, not a value clone). A hit
    /// whose stored checksum fails verification is *not* served: the
    /// poisoned entry is evicted, the invalidation is counted, and the
    /// probe reports a miss so the caller re-fetches from the index.
    pub fn probe(&mut self, key: &Datum) -> Option<Arc<[Datum]>> {
        self.probes += 1;
        let (verified, values) = {
            let entry = self.lru.get(key)?;
            (entry.read_crc == entry.write_crc, entry.values.clone())
        };
        if !verified {
            self.lru.remove(key);
            self.invalidations += 1;
            return None;
        }
        self.hits += 1;
        Some(values)
    }

    /// Inserts a freshly looked-up result, computing its checksum (and
    /// drawing the poison decision) when armed.
    pub fn insert(&mut self, key: Datum, values: Arc<[Datum]>) {
        let (write_crc, read_crc) = match self.armed.as_mut() {
            None => (0, 0),
            Some(armed) => {
                let generation = armed
                    .generations
                    .entry(key.clone())
                    .and_modify(|g| *g += 1)
                    .or_insert(0);
                let mut buf = Vec::new();
                for v in values.iter() {
                    v.encode_into(&mut buf);
                }
                let write_crc = crc32(&buf);
                let mut key_bytes = Vec::new();
                key.encode_into(&mut key_bytes);
                let read_crc = if armed
                    .plan
                    .cache_corrupt(&armed.scope, &key_bytes, *generation)
                {
                    // The stored copy has one byte flipped; an empty
                    // result list is modeled as header corruption.
                    if buf.is_empty() {
                        !write_crc
                    } else {
                        let flip = *generation as usize % buf.len();
                        buf[flip] ^= 0x55;
                        crc32(&buf)
                    }
                } else {
                    write_crc
                };
                (write_crc, read_crc)
            }
        };
        if self.lru.insert(
            key,
            CacheEntry {
                values,
                write_crc,
                read_crc,
            },
        ) {
            self.evictions += 1;
        }
    }

    /// Total probes.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Poisoned entries detected on a hit, evicted, and re-fetched.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// LRU evictions at capacity — the cache-pressure signal the
    /// multi-tenant accounting surfaces per tenant.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Observed miss ratio `R` (1.0 before any probe).
    pub fn miss_ratio(&self) -> f64 {
        if self.probes == 0 {
            1.0
        } else {
            1.0 - self.hits as f64 / self.probes as f64
        }
    }
}

/// The statistics-only cache of §4.2: *"we use a simple version of the
/// lookup cache that does not cache lookup results"* — it tracks keys only,
/// to estimate what the miss ratio `R` *would be*, without memory cost or
/// time charges.
pub struct ShadowCache {
    lru: LruMap<()>,
    probes: u64,
    hits: u64,
}

impl ShadowCache {
    /// Creates a shadow cache sized like the real one.
    pub fn new(capacity: usize) -> Self {
        ShadowCache {
            lru: LruMap::new(capacity),
            probes: 0,
            hits: 0,
        }
    }

    /// Observes one key request.
    pub fn observe(&mut self, key: &Datum) {
        self.probes += 1;
        if self.lru.get(key).is_some() {
            self.hits += 1;
        } else {
            self.lru.insert(key.clone(), ());
        }
    }

    /// Keys observed.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Would-be hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Estimated miss ratio `R`.
    pub fn miss_ratio(&self) -> f64 {
        if self.probes == 0 {
            1.0
        } else {
            1.0 - self.hits as f64 / self.probes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: i64) -> Datum {
        Datum::Int(i)
    }

    #[test]
    fn hit_and_miss() {
        let mut c = LookupCache::new(4);
        assert!(c.probe(&k(1)).is_none());
        c.insert(k(1), vec![k(10)].into());
        assert_eq!(c.probe(&k(1)).as_deref(), Some(&[k(10)][..]));
        assert_eq!(c.probes(), 2);
        assert_eq!(c.hits(), 1);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = LruMap::new(3);
        for i in 0..100 {
            c.insert(k(i), i);
            assert!(c.len() <= 3);
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = LruMap::new(3);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(3), 3);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get(&k(1)), Some(&1));
        c.insert(k(4), 4);
        assert!(c.get(&k(2)).is_none(), "2 should have been evicted");
        assert!(c.get(&k(1)).is_some());
        assert!(c.get(&k(3)).is_some());
        assert!(c.get(&k(4)).is_some());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = LruMap::new(2);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(1), 10); // refresh: 2 is now LRU
        c.insert(k(3), 3);
        assert!(c.get(&k(2)).is_none());
        assert_eq!(c.get(&k(1)), Some(&10));
    }

    #[test]
    fn mru_order_tracks_access() {
        let mut c = LruMap::new(3);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(3), 3);
        c.get(&k(1));
        let order: Vec<i64> = c
            .keys_mru_order()
            .iter()
            .map(|d| d.as_int().unwrap())
            .collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn capacity_one_works() {
        let mut c = LruMap::new(1);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        assert!(c.get(&k(1)).is_none());
        assert_eq!(c.get(&k(2)), Some(&2));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let c: LruMap<i32> = LruMap::new(0);
        assert_eq!(c.capacity(), 1);
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let mut c = LruMap::new(2);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        assert!(c.remove(&k(1)));
        assert!(!c.remove(&k(1)), "double remove reports absence");
        assert_eq!(c.len(), 1);
        // The freed slot is reused without evicting the survivor.
        c.insert(k(3), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&k(2)), Some(&2));
        assert_eq!(c.get(&k(3)), Some(&3));
        // Capacity still enforced after slot reuse.
        c.insert(k(4), 4);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_head_and_tail_keep_list_consistent() {
        let mut c = LruMap::new(3);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(3), 3);
        assert!(c.remove(&k(3))); // head (MRU)
        assert!(c.remove(&k(1))); // tail (LRU)
        let order: Vec<i64> = c
            .keys_mru_order()
            .iter()
            .map(|d| d.as_int().unwrap())
            .collect();
        assert_eq!(order, vec![2]);
        c.insert(k(4), 4);
        c.insert(k(5), 5);
        c.insert(k(6), 6); // evicts 2, the LRU
        assert!(c.get(&k(2)).is_none());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn evictions_counted_only_at_capacity() {
        let mut c = LookupCache::new(2);
        c.insert(k(1), Vec::new().into());
        c.insert(k(2), Vec::new().into());
        assert_eq!(c.evictions(), 0, "filling to capacity is not eviction");
        for i in 3..6 {
            c.insert(k(i), Vec::new().into());
        }
        assert_eq!(c.evictions(), 3);
        c.insert(k(5), Vec::new().into()); // refresh: no eviction
        assert_eq!(c.evictions(), 3);
    }

    #[test]
    fn unarmed_cache_never_invalidates() {
        let mut c = LookupCache::new(4);
        c.insert(k(1), vec![k(10)].into());
        for _ in 0..50 {
            assert!(c.probe(&k(1)).is_some());
        }
        assert_eq!(c.invalidations(), 0);
    }

    #[test]
    fn poisoned_entry_is_evicted_not_served() {
        use efind_cluster::CorruptionPlan;
        // Rate 1.0: every insertion is poisoned, so every subsequent
        // probe must detect, evict, and miss — never serve the entry.
        let plan = CorruptionPlan::new(3).cache(1.0);
        let mut c = LookupCache::new(4).with_corruption(&plan, "efind.op.0.");
        c.insert(k(1), vec![k(10)].into());
        assert!(c.probe(&k(1)).is_none(), "poisoned hit must not serve");
        assert_eq!(c.invalidations(), 1);
        assert_eq!(c.hits(), 0);
        // The entry is gone: the next probe is a plain miss.
        assert!(c.probe(&k(1)).is_none());
        assert_eq!(c.invalidations(), 1);
    }

    #[test]
    fn reinsertion_draws_a_fresh_generation() {
        use efind_cluster::CorruptionPlan;
        // At rate 0.5 some key must be poisoned at generation 0 and clean
        // at generation 1 — the re-fetch path converges.
        let plan = CorruptionPlan::new(7).cache(0.5);
        let recovered = (0..100i64).any(|i| {
            let mut c = LookupCache::new(4).with_corruption(&plan, "efind.op.0.");
            c.insert(k(i), vec![k(1)].into());
            if c.probe(&k(i)).is_some() {
                return false; // clean at generation 0
            }
            c.insert(k(i), vec![k(1)].into());
            c.probe(&k(i)).is_some()
        });
        assert!(recovered);
    }

    #[test]
    fn quiet_or_unverified_plans_do_not_arm() {
        use efind_cluster::CorruptionPlan;
        let quiet = LookupCache::new(4).with_corruption(&CorruptionPlan::new(3), "s.");
        assert!(quiet.armed.is_none());
        let unverified = LookupCache::new(4).with_corruption(
            &CorruptionPlan::new(3).cache(1.0).without_verification(),
            "s.",
        );
        assert!(unverified.armed.is_none());
        let armed = LookupCache::new(4).with_corruption(&CorruptionPlan::new(3).cache(0.1), "s.");
        assert!(armed.armed.is_some());
    }

    #[test]
    fn shadow_cache_estimates_same_ratio_as_real() {
        // A cyclic key stream with reuse distance under capacity: both
        // caches must agree exactly.
        let stream: Vec<Datum> = (0..1000).map(|i| k(i % 8)).collect();
        let mut real = LookupCache::new(16);
        let mut shadow = ShadowCache::new(16);
        for key in &stream {
            shadow.observe(key);
            if real.probe(key).is_none() {
                real.insert(key.clone(), Vec::new().into());
            }
        }
        assert!((real.miss_ratio() - shadow.miss_ratio()).abs() < 1e-12);
    }

    #[test]
    fn unique_stream_misses_everything() {
        let mut shadow = ShadowCache::new(4);
        for i in 0..100 {
            shadow.observe(&k(i));
        }
        assert_eq!(shadow.miss_ratio(), 1.0);
    }

    #[test]
    fn empty_cache_reports_full_miss_ratio() {
        assert_eq!(LookupCache::new(4).miss_ratio(), 1.0);
        assert_eq!(ShadowCache::new(4).miss_ratio(), 1.0);
    }
}
