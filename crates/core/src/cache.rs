//! The lookup cache (§3.2) and the shadow cache used to estimate its miss
//! ratio while running other strategies (§4.2).
//!
//! *"EFind inserts the input ik and the result {iv} of a lookup operation
//! into an LRU-organized cache. … It invokes the lookup method only when
//! there is a miss in the lookup cache."* The cache holds a fixed number of
//! key→value entries (1024 in the paper's experiments).

use std::sync::Arc;

use efind_common::{Datum, FxHashMap};

/// Intrusive doubly-linked LRU list over a slab of entries.
struct Entry<V> {
    key: Datum,
    value: V,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A fixed-capacity LRU map from lookup keys to values.
pub struct LruMap<V> {
    map: FxHashMap<Datum, usize>,
    slab: Vec<Entry<V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<V> LruMap<V> {
    /// Creates an LRU map holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruMap {
            map: FxHashMap::default(),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on hit.
    pub fn get(&mut self, key: &Datum) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.slab[idx].value)
    }

    /// Inserts or refreshes `key`, evicting the least-recently-used entry
    /// at capacity.
    pub fn insert(&mut self, key: Datum, value: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        if self.map.len() == self.capacity {
            // Evict LRU and reuse its slab slot.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = std::mem::replace(&mut self.slab[victim].key, key.clone());
            self.map.remove(&old_key);
            self.slab[victim].value = value;
            self.map.insert(key, victim);
            self.push_front(victim);
        } else {
            let idx = self.slab.len();
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, idx);
            self.push_front(idx);
        }
    }

    /// Keys from most- to least-recently used (test/debug helper).
    pub fn keys_mru_order(&self) -> Vec<&Datum> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(&self.slab[cur].key);
            cur = self.slab[cur].next;
        }
        out
    }
}

/// The lookup cache: an LRU of key → result lists, with hit statistics.
///
/// Result lists are stored as `Arc<[Datum]>` so a probe hit hands back a
/// shared handle — no deep copy of the cached values, regardless of how
/// large the result list is.
pub struct LookupCache {
    lru: LruMap<Arc<[Datum]>>,
    probes: u64,
    hits: u64,
}

impl LookupCache {
    /// Paper default: 1024 index key-value entries.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a cache with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LookupCache {
            lru: LruMap::new(capacity),
            probes: 0,
            hits: 0,
        }
    }

    /// Probes for `key`; returns a shared handle to the cached result
    /// list on a hit (an `Arc` refcount bump, not a value clone).
    pub fn probe(&mut self, key: &Datum) -> Option<Arc<[Datum]>> {
        self.probes += 1;
        let hit = self.lru.get(key).cloned();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Inserts a freshly looked-up result.
    pub fn insert(&mut self, key: Datum, values: Arc<[Datum]>) {
        self.lru.insert(key, values);
    }

    /// Total probes.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Observed miss ratio `R` (1.0 before any probe).
    pub fn miss_ratio(&self) -> f64 {
        if self.probes == 0 {
            1.0
        } else {
            1.0 - self.hits as f64 / self.probes as f64
        }
    }
}

/// The statistics-only cache of §4.2: *"we use a simple version of the
/// lookup cache that does not cache lookup results"* — it tracks keys only,
/// to estimate what the miss ratio `R` *would be*, without memory cost or
/// time charges.
pub struct ShadowCache {
    lru: LruMap<()>,
    probes: u64,
    hits: u64,
}

impl ShadowCache {
    /// Creates a shadow cache sized like the real one.
    pub fn new(capacity: usize) -> Self {
        ShadowCache {
            lru: LruMap::new(capacity),
            probes: 0,
            hits: 0,
        }
    }

    /// Observes one key request.
    pub fn observe(&mut self, key: &Datum) {
        self.probes += 1;
        if self.lru.get(key).is_some() {
            self.hits += 1;
        } else {
            self.lru.insert(key.clone(), ());
        }
    }

    /// Keys observed.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Would-be hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Estimated miss ratio `R`.
    pub fn miss_ratio(&self) -> f64 {
        if self.probes == 0 {
            1.0
        } else {
            1.0 - self.hits as f64 / self.probes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: i64) -> Datum {
        Datum::Int(i)
    }

    #[test]
    fn hit_and_miss() {
        let mut c = LookupCache::new(4);
        assert!(c.probe(&k(1)).is_none());
        c.insert(k(1), vec![k(10)].into());
        assert_eq!(c.probe(&k(1)).as_deref(), Some(&[k(10)][..]));
        assert_eq!(c.probes(), 2);
        assert_eq!(c.hits(), 1);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = LruMap::new(3);
        for i in 0..100 {
            c.insert(k(i), i);
            assert!(c.len() <= 3);
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = LruMap::new(3);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(3), 3);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get(&k(1)), Some(&1));
        c.insert(k(4), 4);
        assert!(c.get(&k(2)).is_none(), "2 should have been evicted");
        assert!(c.get(&k(1)).is_some());
        assert!(c.get(&k(3)).is_some());
        assert!(c.get(&k(4)).is_some());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = LruMap::new(2);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(1), 10); // refresh: 2 is now LRU
        c.insert(k(3), 3);
        assert!(c.get(&k(2)).is_none());
        assert_eq!(c.get(&k(1)), Some(&10));
    }

    #[test]
    fn mru_order_tracks_access() {
        let mut c = LruMap::new(3);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(3), 3);
        c.get(&k(1));
        let order: Vec<i64> = c
            .keys_mru_order()
            .iter()
            .map(|d| d.as_int().unwrap())
            .collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn capacity_one_works() {
        let mut c = LruMap::new(1);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        assert!(c.get(&k(1)).is_none());
        assert_eq!(c.get(&k(2)), Some(&2));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let c: LruMap<i32> = LruMap::new(0);
        assert_eq!(c.capacity(), 1);
    }

    #[test]
    fn shadow_cache_estimates_same_ratio_as_real() {
        // A cyclic key stream with reuse distance under capacity: both
        // caches must agree exactly.
        let stream: Vec<Datum> = (0..1000).map(|i| k(i % 8)).collect();
        let mut real = LookupCache::new(16);
        let mut shadow = ShadowCache::new(16);
        for key in &stream {
            shadow.observe(key);
            if real.probe(key).is_none() {
                real.insert(key.clone(), Vec::new().into());
            }
        }
        assert!((real.miss_ratio() - shadow.miss_ratio()).abs() < 1e-12);
    }

    #[test]
    fn unique_stream_misses_everything() {
        let mut shadow = ShadowCache::new(4);
        for i in 0..100 {
            shadow.observe(&k(i));
        }
        assert_eq!(shadow.miss_ratio(), 1.0);
    }

    #[test]
    fn empty_cache_reports_full_miss_ratio() {
        assert_eq!(LookupCache::new(4).miss_ratio(), 1.0);
        assert_eq!(ShadowCache::new(4).miss_ratio(), 1.0);
    }
}
