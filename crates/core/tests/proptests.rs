//! Property-based tests for the EFind core: LRU cache invariants, cost
//! model monotonicity, and planner soundness.

use efind::cache::{LookupCache, LruMap, ShadowCache};
use efind::cost::{
    cost_baseline, cost_cache, cost_repartition, CostEnv, IndexStatsEstimate,
    OperatorStatsEstimate, Placement,
};
use efind::plan::{optimize_operator, Enumeration, Strategy as AccessStrategy};
use efind_common::Datum;
use proptest::prelude::*;

fn env() -> CostEnv {
    CostEnv {
        bw_bytes_per_sec: 125.0e6,
        f_per_byte: 2.0e-8,
        t_cache_secs: 1.0e-6,
        lookup_latency_secs: 1.0e-4,
        shuffle_secs_per_byte: 3.6e-8,
        job_overhead_secs: 0.0,
        reduce_parallelism: 48.0,
        parallelism: 96.0,
    }
}

fn arb_index() -> impl Strategy<Value = IndexStatsEstimate> {
    (
        0.1f64..4.0,       // nik
        1.0f64..64.0,      // sik
        0.0f64..40_000.0,  // siv
        1.0e-6f64..5.0e-3, // tj
        0.0f64..1.0,       // miss ratio
        1.0f64..100.0,     // theta
        any::<bool>(),
        any::<bool>(),
        0.0f64..0.6, // failure rate
    )
        .prop_map(
            |(nik, sik, siv, tj, miss, theta, scheme, shuffleable, fail)| IndexStatsEstimate {
                nik,
                sik,
                siv,
                tj_secs: tj,
                miss_ratio: miss,
                theta,
                has_partition_scheme: scheme,
                shuffleable,
                partitions: if scheme { 32 } else { 0 },
                failure_rate: fail,
            },
        )
}

fn arb_op(m: usize) -> impl Strategy<Value = OperatorStatsEstimate> {
    (
        1.0f64..1.0e7,
        proptest::collection::vec(arb_index(), m..=m),
        1.0f64..4096.0,
        1.0f64..4096.0,
        1.0f64..4096.0,
        1.0f64..4096.0,
    )
        .prop_map(
            |(n1, indices, s1, spre, spost, smap)| OperatorStatsEstimate {
                n1,
                s1,
                spre,
                spost,
                smap,
                indices,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lru_never_exceeds_capacity(ops in proptest::collection::vec((any::<u16>(), any::<bool>()), 0..400), cap in 1usize..64) {
        let mut lru: LruMap<u32> = LruMap::new(cap);
        for (k, is_insert) in ops {
            let key = Datum::Int(k as i64 % 96);
            if is_insert {
                lru.insert(key, k as u32);
            } else {
                let _ = lru.get(&key);
            }
            prop_assert!(lru.len() <= cap);
        }
    }

    #[test]
    fn lru_most_recent_insert_always_hits(keys in proptest::collection::vec(0i64..32, 1..200)) {
        let mut lru: LruMap<i64> = LruMap::new(4);
        for (i, k) in keys.iter().enumerate() {
            lru.insert(Datum::Int(*k), i as i64);
            prop_assert_eq!(lru.get(&Datum::Int(*k)), Some(&(i as i64)));
        }
    }

    #[test]
    fn shadow_and_real_cache_agree_on_miss_ratio(keys in proptest::collection::vec(0i64..64, 0..500)) {
        let mut real = LookupCache::new(16);
        let mut shadow = ShadowCache::new(16);
        for k in &keys {
            let key = Datum::Int(*k);
            shadow.observe(&key);
            if real.probe(&key).is_none() {
                real.insert(key, Vec::new().into());
            }
        }
        prop_assert!((real.miss_ratio() - shadow.miss_ratio()).abs() < 1e-12);
    }

    #[test]
    fn cache_cost_never_above_baseline_plus_probes(op in arb_op(1)) {
        let env = env();
        let base = cost_baseline(&env, &op, 0);
        let cached = cost_cache(&env, &op, 0);
        let probes = op.n1 * op.indices[0].nik * env.t_cache_secs;
        prop_assert!(cached <= base + probes + 1e-9);
    }

    #[test]
    fn repartition_lookup_savings_monotone_in_theta(op in arb_op(1)) {
        let env = env();
        let mut more_dup = op.clone();
        more_dup.indices[0].theta = op.indices[0].theta * 2.0;
        let carried = op.spre;
        let c1 = cost_repartition(&env, &op, 0, Placement::Body, carried);
        let c2 = cost_repartition(&env, &more_dup, 0, Placement::Body, carried);
        prop_assert!(c2 <= c1 + 1e-9);
    }

    #[test]
    fn planner_output_is_a_permutation(op in arb_op(3)) {
        let env = env();
        let plan = optimize_operator(&op, &env, Placement::Body, Enumeration::Full);
        let mut seen: Vec<usize> = plan.choices.iter().map(|c| c.index).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn planner_respects_capabilities(op in arb_op(3)) {
        let env = env();
        let plan = optimize_operator(&op, &env, Placement::Head, Enumeration::Full);
        for choice in &plan.choices {
            let idx = &op.indices[choice.index];
            if choice.strategy == AccessStrategy::IndexLocality {
                prop_assert!(idx.has_partition_scheme && idx.shuffleable);
            }
            if choice.strategy == AccessStrategy::Repartition {
                prop_assert!(idx.shuffleable);
            }
        }
    }

    #[test]
    fn planner_property4_shuffles_first(op in arb_op(4)) {
        let env = env();
        let plan = optimize_operator(&op, &env, Placement::Body, Enumeration::Full);
        let mut seen_non_shuffle = false;
        for choice in &plan.choices {
            if choice.strategy.is_shuffle() {
                prop_assert!(!seen_non_shuffle, "shuffle after non-shuffle");
            } else {
                seen_non_shuffle = true;
            }
        }
    }

    #[test]
    fn full_enumerate_never_worse_than_krepart(op in arb_op(3), k in 0usize..4) {
        let env = env();
        let full = optimize_operator(&op, &env, Placement::Body, Enumeration::Full);
        let kr = optimize_operator(&op, &env, Placement::Body, Enumeration::KRepart(k));
        prop_assert!(full.est_cost_secs <= kr.est_cost_secs + 1e-6);
    }

    // With k = m the k-Repart beam keeps every prefix, so it degenerates
    // into FullEnumerate: both must land on an equal-cost plan.
    #[test]
    fn krepart_with_full_budget_matches_full_enumerate(op in arb_op(4), m in 1usize..=4) {
        let mut op = op;
        op.indices.truncate(m);
        let env = env();
        let full = optimize_operator(&op, &env, Placement::Body, Enumeration::Full);
        let kr = optimize_operator(&op, &env, Placement::Body, Enumeration::KRepart(m));
        let scale = full.est_cost_secs.abs().max(1.0);
        prop_assert!(
            (full.est_cost_secs - kr.est_cost_secs).abs() <= 1e-9 * scale,
            "full {} vs k-repart({m}) {}",
            full.est_cost_secs,
            kr.est_cost_secs
        );
    }
}

// ---------------------------------------------------------------------------
// Analyzer soundness end-to-end: any plan the planner produces for a random
// job must be analyzer-clean, and the job must compile and run without
// panicking. Fewer cases — each spins up a simulated cluster.

mod end_to_end {
    use super::*;
    use efind::analysis;
    use efind::{
        operator_fn, BoundOperator, EFindRuntime, IndexAccessor, IndexInput, IndexJobConf,
        IndexOutput, Mode, PartitionScheme,
    };
    use efind_cluster::{Cluster, NodeId, SimDuration};
    use efind_common::Record;
    use efind_dfs::{Dfs, DfsConfig};
    use efind_mapreduce::Collector;
    use std::sync::Arc;

    struct TestScheme {
        partitions: usize,
        nodes: u16,
    }

    impl PartitionScheme for TestScheme {
        fn num_partitions(&self) -> usize {
            self.partitions
        }
        fn partition_of(&self, key: &Datum) -> usize {
            match key {
                Datum::Int(i) => (*i as usize) % self.partitions,
                _ => 0,
            }
        }
        fn hosts(&self, partition: usize) -> Vec<NodeId> {
            vec![NodeId((partition % self.nodes as usize) as u16)]
        }
    }

    struct TestIndex {
        name: String,
        distinct: i64,
        scheme: Option<Arc<dyn PartitionScheme>>,
    }

    impl IndexAccessor for TestIndex {
        fn name(&self) -> &str {
            &self.name
        }
        fn lookup(&self, key: &Datum) -> Vec<Datum> {
            match key {
                Datum::Int(i) if *i < self.distinct => vec![Datum::Int(i * 2)],
                _ => vec![],
            }
        }
        fn serve_time(&self, _key: &Datum, _result_bytes: u64) -> SimDuration {
            SimDuration::from_micros(50)
        }
        fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
            self.scheme.clone()
        }
    }

    /// A pass-through join operator: looks up the record value on every
    /// index, emits the record unchanged (so operators chain arbitrarily).
    fn passthrough_op(name: &str, num_indices: usize) -> Arc<dyn efind::IndexOperator> {
        operator_fn(
            name,
            num_indices,
            move |rec: &mut Record, keys: &mut IndexInput| {
                for slot in 0..num_indices {
                    keys.put(slot, rec.value.clone());
                }
            },
            |rec: Record, _values: &IndexOutput, out: &mut dyn Collector| {
                out.collect(rec);
            },
        )
    }

    fn build_job(shape: &[Vec<bool>], distinct: i64, nodes: u16) -> IndexJobConf {
        let mut ijob = IndexJobConf::new("prop", "in", "out").set_identity_reducer(2);
        for (i, schemes) in shape.iter().enumerate() {
            let mut bound = BoundOperator::new(passthrough_op(&format!("op{i}"), schemes.len()));
            for (j, with_scheme) in schemes.iter().enumerate() {
                bound = bound.add_index(Arc::new(TestIndex {
                    name: format!("idx{i}_{j}"),
                    distinct,
                    scheme: with_scheme.then(|| {
                        Arc::new(TestScheme {
                            partitions: 4,
                            nodes,
                        }) as Arc<dyn PartitionScheme>
                    }),
                }));
            }
            ijob = ijob.add_head_index_operator(bound);
        }
        ijob
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn planner_clean_plans_compile_and_run(
            shape in proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), 1..=2),
                1..=2,
            ),
            strategy_pick in 0usize..4,
            distinct in 2i64..12,
        ) {
            let nodes = 3u16;
            let cluster = Cluster::builder().nodes(nodes).map_slots(2).reduce_slots(2).build();
            let mut dfs = Dfs::new(
                cluster.clone(),
                DfsConfig { chunk_size_bytes: 512, replication: 2, seed: 7 },
            );
            let records: Vec<Record> = (0..120i64)
                .map(|i| Record::new(i, Datum::Int(i % distinct)))
                .collect();
            dfs.write_file("in", records);

            let ijob = build_job(&shape, distinct, nodes);
            let strategy = [
                AccessStrategy::Baseline,
                AccessStrategy::Cache,
                AccessStrategy::Repartition,
                AccessStrategy::IndexLocality,
            ][strategy_pick];
            let mode = Mode::Uniform(strategy);

            let mut rt = EFindRuntime::new(&cluster, &mut dfs);
            let plans = rt.plans_for(&ijob, &mode).unwrap();
            // Whatever the planner produced (including capability
            // fallbacks) must pass static analysis...
            prop_assert!(
                analysis::passes(&ijob, &plans),
                "planner produced an analyzer-rejected plan for shape {shape:?} / {strategy:?}"
            );
            // ...and the job must compile and run to completion.
            let res = rt.run(&ijob, mode);
            prop_assert!(res.is_ok(), "run failed: {:?}", res.err().map(|e| e.to_string()));
            let out = rt.dfs.read_file("out").unwrap();
            prop_assert!(!out.is_empty());
        }
    }
}
