//! Fast non-cryptographic hashing.
//!
//! Index lookups, shuffle partitioning, and the lookup cache all hash
//! [`Datum`] keys on hot paths, where SipHash's keyed security
//! is wasted. [`FxHasher`] is the multiply-based hasher used by rustc,
//! reimplemented here to avoid an extra dependency.

use std::hash::{BuildHasherDefault, Hash, Hasher};

use crate::Datum;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style Fx hash: a word-at-a-time multiply-xor hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail));
            self.add(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hashes a byte slice with [`FxHasher`].
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Hashes a [`Datum`] with [`FxHasher`], then applies a full-avalanche
/// finalizer.
///
/// This is the hash behind shuffle partitioning and consistent-hash index
/// partition schemes; both sides must agree, so they share this function.
/// The finalizer matters: multiplicative hashes barely mix toward the low
/// bits, and `hash % num_partitions` reads exactly those bits — short
/// similar strings like `user17`/`user18` would otherwise pile into a few
/// partitions.
pub fn fx_hash_datum(d: &Datum) -> u64 {
    let mut h = FxHasher::default();
    d.hash(&mut h);
    mix64(h.finish())
}

/// The splitmix64 finalizer: a cheap full-avalanche 64-bit mixer.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(fx_hash_bytes(b"hello"), fx_hash_bytes(b"hello"));
        assert_ne!(fx_hash_bytes(b"hello"), fx_hash_bytes(b"hellp"));
    }

    #[test]
    fn equal_datums_hash_equal() {
        let a = Datum::composite([Datum::Int(1), Datum::Text("x".into())]);
        let b = Datum::composite([Datum::Int(1), Datum::Text("x".into())]);
        assert_eq!(fx_hash_datum(&a), fx_hash_datum(&b));
    }

    #[test]
    fn distinct_ints_spread() {
        // Not a rigorous avalanche test — just a regression guard that the
        // hasher isn't collapsing small integers onto few buckets.
        let mut buckets = [0usize; 16];
        for i in 0..10_000i64 {
            buckets[(fx_hash_datum(&Datum::Int(i)) % 16) as usize] += 1;
        }
        let min = buckets.iter().min().unwrap();
        let max = buckets.iter().max().unwrap();
        assert!(*min > 400 && *max < 900, "unbalanced buckets: {buckets:?}");
    }

    #[test]
    fn text_keys_spread_under_small_moduli() {
        // Regression: short similar strings ("user0".."user1499") must not
        // pile into a few of 32 partitions — this skew broke shuffle
        // balance before the finalizer existed.
        let mut buckets = [0usize; 32];
        for u in 0..1500 {
            let k = Datum::Text(format!("user{u}"));
            buckets[(fx_hash_datum(&k) % 32) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 100, "hot partition with {max}/1500 keys: {buckets:?}");
    }

    #[test]
    fn tail_bytes_affect_hash() {
        assert_ne!(fx_hash_bytes(b"abcdefgh1"), fx_hash_bytes(b"abcdefgh2"));
        assert_ne!(fx_hash_bytes(b"a"), fx_hash_bytes(b"a\0"));
    }
}
