//! Common error type.

use std::fmt;

/// Errors shared across the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A binary decoding failure.
    Decode(String),
    /// A named entity (file, index, partition) was not found.
    NotFound(String),
    /// The caller supplied an invalid configuration.
    InvalidConfig(String),
    /// An operation is unsupported for the given operator/index combination.
    Unsupported(String),
    /// An internal invariant was violated.
    Internal(String),
    /// Data became permanently unavailable — every replica of a stored
    /// chunk was lost to node crashes and nothing can recompute it.
    DataLoss(String),
    /// Data failed checksum verification on every available copy — all
    /// replicas of a chunk are corrupt and no clean source remains.
    DataCorruption(String),
    /// A job submission was refused by admission control — the bounded
    /// admission queue is full. The submission is dropped deterministically
    /// (never queued, never hung); resubmit later or widen the queue.
    AdmissionRejected(String),
    /// A job submission exceeded its tenant's configured quota (queued or
    /// running job bound). Deterministic, per-tenant, and immediate.
    QuotaExhausted(String),
    /// A network partition that never heals has isolated every reachable
    /// copy of data the job needs. Unlike [`Error::DataLoss`] the bytes
    /// still exist — on nodes the rest of the cluster cannot reach — so
    /// the job fails fast with a partition diagnosis instead of hanging
    /// on fetches that can never complete.
    Partitioned(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Decode(msg) => write!(f, "decode error: {msg}"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
            Error::DataLoss(msg) => write!(f, "data loss: {msg}"),
            Error::DataCorruption(msg) => write!(f, "data corruption: {msg}"),
            Error::AdmissionRejected(msg) => write!(f, "admission rejected: {msg}"),
            Error::QuotaExhausted(msg) => write!(f, "quota exhausted: {msg}"),
            Error::Partitioned(msg) => write!(f, "partitioned: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias using [`Error`].
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            Error::NotFound("file x".into()).to_string(),
            "not found: file x"
        );
        assert!(Error::Decode("bad".into()).to_string().contains("decode"));
        assert_eq!(
            Error::DataLoss("chunk 3 of x".into()).to_string(),
            "data loss: chunk 3 of x"
        );
    }
}
