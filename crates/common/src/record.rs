//! The `(key, value)` pair flowing through MapReduce and EFind operators.

use crate::Datum;

/// A MapReduce record: the `(k1, v1)` / `(k2, v2)` pairs of Figure 2.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Record {
    /// The record key (grouping key in shuffles).
    pub key: Datum,
    /// The record value.
    pub value: Datum,
}

impl Record {
    /// Creates a record from anything convertible to [`Datum`].
    pub fn new(key: impl Into<Datum>, value: impl Into<Datum>) -> Self {
        Record {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Total approximate serialized size, the unit of every `S*` statistic
    /// in the paper's Table 1.
    pub fn size_bytes(&self) -> u64 {
        self.key.size_bytes() + self.value.size_bytes()
    }

    /// Encodes key then value.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_bytes() as usize);
        self.key.encode_into(&mut out);
        self.value.encode_into(&mut out);
        out
    }

    /// Decodes a record previously produced by [`Record::encode`].
    pub fn decode(buf: &[u8]) -> crate::Result<Record> {
        let (key, rest) = Datum::decode_from(buf)?;
        let value = Datum::decode(rest)?;
        Ok(Record { key, value })
    }
}

/// Sums the sizes of a slice of records.
pub fn total_size(records: &[Record]) -> u64 {
    records.iter().map(Record::size_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let r = Record::new(7i64, "payload");
        assert_eq!(Record::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn size_is_sum_of_parts() {
        let r = Record::new("k", "value");
        assert_eq!(r.size_bytes(), r.key.size_bytes() + r.value.size_bytes());
    }

    #[test]
    fn total_size_sums() {
        let rs = vec![Record::new(1i64, 2i64), Record::new(3i64, 4i64)];
        assert_eq!(total_size(&rs), rs[0].size_bytes() * 2);
    }
}
