#![warn(missing_docs)]

//! Shared building blocks for the EFind reproduction.
//!
//! This crate holds the pieces every other layer needs:
//!
//! * [`Datum`] — the dynamically typed value model that plays the role of
//!   Hadoop's `Writable` in the paper's interfaces,
//! * [`Record`] — the `(key, value)` pair flowing through MapReduce,
//! * [`FmSketch`] — the Flajolet–Martin distinct-count sketch EFind uses to
//!   estimate Θ (average duplicates per index lookup key, Table 1),
//! * [`FxHashMap`]/[`FxHasher`] — a fast non-cryptographic hasher for hot
//!   lookup paths,
//! * [`Error`] — the common error type.

pub mod crc;
pub mod datum;
pub mod det;
pub mod error;
pub mod fm;
pub mod fmtutil;
pub mod hash;
pub mod intern;
pub mod record;

pub use crc::{crc32, Crc32};
pub use datum::{Datum, KeyKind};
pub use error::{Error, Result};
pub use fm::FmSketch;
pub use hash::{fx_hash_bytes, fx_hash_datum, FxHashMap, FxHashSet, FxHasher};
pub use intern::Symbol;
pub use record::Record;
