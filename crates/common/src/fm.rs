//! Flajolet–Martin distinct-count sketch (PCSA).
//!
//! Section 4.2 of the paper estimates Θ — the average number of duplicates
//! per index lookup key — by keeping one FM bit vector per Map/Reduce task,
//! OR-ing the local vectors together, and dividing the total number of
//! lookup keys by the estimated global distinct count. This module is that
//! sketch: the classic Probabilistic Counting with Stochastic Averaging
//! variant from Flajolet & Martin, *J. Comput. Syst. Sci.* 31(2), 1985.

use crate::Datum;

/// PCSA magic constant: `E[2^R] = φ·n/m` with φ ≈ 0.77351.
const PHI: f64 = 0.773_51;

/// Number of stochastic-averaging bitmaps. 64 gives a standard error of
/// roughly `0.78/sqrt(64)` ≈ 10%, plenty for a cost-model input.
pub const DEFAULT_MAPS: usize = 64;

/// A mergeable Flajolet–Martin sketch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FmSketch {
    /// One 64-bit bitmap per stochastic-averaging bucket.
    maps: Vec<u64>,
}

impl Default for FmSketch {
    fn default() -> Self {
        Self::new(DEFAULT_MAPS)
    }
}

impl FmSketch {
    /// Creates a sketch with `maps` bitmaps (rounded up to at least 1).
    pub fn new(maps: usize) -> Self {
        FmSketch {
            maps: vec![0; maps.max(1)],
        }
    }

    /// Number of bitmaps.
    pub fn num_maps(&self) -> usize {
        self.maps.len()
    }

    /// Observes a pre-hashed key.
    pub fn insert_hash(&mut self, hash: u64) {
        // Multiplicative hashes (FxHash included) barely mix toward the low
        // bits, and the trailing-zeros geometric test reads exactly those
        // bits; a splitmix64 finalizer fixes the bias.
        let hash = splitmix64(hash);
        let m = self.maps.len() as u64;
        let bucket = (hash % m) as usize;
        let rest = hash / m;
        let bit = rest.trailing_zeros().min(63);
        self.maps[bucket] |= 1u64 << bit;
    }

    /// Observes a datum key.
    pub fn insert(&mut self, key: &Datum) {
        self.insert_hash(fx_hash_datum_bits(key));
    }

    /// ORs another sketch into this one (the cross-task merge of §4.2).
    ///
    /// # Panics
    /// Panics if the two sketches use a different number of bitmaps.
    pub fn merge(&mut self, other: &FmSketch) {
        assert_eq!(
            self.maps.len(),
            other.maps.len(),
            "cannot merge FM sketches of different widths"
        );
        for (a, b) in self.maps.iter_mut().zip(&other.maps) {
            *a |= b;
        }
    }

    /// Estimates the number of distinct keys observed.
    pub fn estimate(&self) -> f64 {
        let m = self.maps.len() as f64;
        let mean_r: f64 = self
            .maps
            .iter()
            .map(|&bits| lowest_zero_bit(bits) as f64)
            .sum::<f64>()
            / m;
        // Small-range correction: with very few insertions most bitmaps are
        // empty and the raw estimate floors at m/φ; fall back to a linear
        // count of set bits which is exact for tiny cardinalities.
        let set_bits: u32 = self.maps.iter().map(|b| b.count_ones()).sum();
        if (set_bits as f64) < 2.5 * m {
            return set_bits as f64;
        }
        m / PHI * 2f64.powf(mean_r)
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.maps.iter().all(|&b| b == 0)
    }
}

fn lowest_zero_bit(bits: u64) -> u32 {
    (!bits).trailing_zeros()
}

/// The splitmix64 finalizer: a full-avalanche 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fx_hash_datum_bits(key: &Datum) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = crate::hash::FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let s = FmSketch::default();
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut s = FmSketch::default();
        for _ in 0..10_000 {
            s.insert(&Datum::Int(42));
        }
        assert!(s.estimate() <= 3.0, "estimate {}", s.estimate());
    }

    #[test]
    fn estimate_within_error_bounds() {
        for &n in &[1_000u64, 10_000, 100_000] {
            let mut s = FmSketch::default();
            for i in 0..n {
                s.insert(&Datum::Int(i as i64));
            }
            let est = s.estimate();
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.30, "n={n} est={est:.0} err={err:.2}");
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut a = FmSketch::default();
        let mut b = FmSketch::default();
        let mut union = FmSketch::default();
        for i in 0..5_000i64 {
            a.insert(&Datum::Int(i));
            union.insert(&Datum::Int(i));
        }
        for i in 2_500..7_500i64 {
            b.insert(&Datum::Int(i));
            union.insert(&Datum::Int(i));
        }
        a.merge(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn small_cardinalities_are_near_exact() {
        let mut s = FmSketch::default();
        for i in 0..20i64 {
            s.insert(&Datum::Int(i));
        }
        let est = s.estimate();
        assert!((est - 20.0).abs() <= 5.0, "est={est}");
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_width_mismatch_panics() {
        let mut a = FmSketch::new(32);
        let b = FmSketch::new(64);
        a.merge(&b);
    }
}
