//! A global string interner for counter and sketch names.
//!
//! EFind charges every lookup, shuffle byte, and cache probe to a *named*
//! counter (§4.2). Those names are built from a small set of templates
//! (`efind.op.N.lookups`, `efind.op.N.idx.J.nik`, …), so resolving each
//! one to a dense [`Symbol`] once — and paying a `u32` hash instead of a
//! `String` allocation plus byte-wise hash per increment — removes the
//! framework's dominant real-time cost without changing any virtual-time
//! observable.
//!
//! The table is append-only and process-global: a `Symbol` never moves and
//! is valid for the life of the process, which is what lets
//! `CounterHandle`s in `efind-mapreduce` be `Copy` and lets hot paths hold
//! them across task boundaries. [`table_len`] exposes the table size so
//! tests can prove a hot path performs *zero* interner growth (and hence
//! no name allocation) at steady state.

use std::sync::{Arc, OnceLock, RwLock};

use crate::FxHashMap;

/// A dense id for an interned string. Cheap to copy, hash, and compare;
/// resolves back to its text via [`resolve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw dense index of this symbol in the global table.
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Default)]
struct InternTable {
    by_name: FxHashMap<Arc<str>, u32>,
    by_id: Vec<Arc<str>>,
}

fn table() -> &'static RwLock<InternTable> {
    static TABLE: OnceLock<RwLock<InternTable>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(InternTable::default()))
}

/// Interns `name`, returning its stable [`Symbol`]. Idempotent: the same
/// text always maps to the same symbol. Allocates only the first time a
/// given name is seen.
pub fn intern(name: &str) -> Symbol {
    let t = table();
    if let Some(&id) = t.read().expect("intern table poisoned").by_name.get(name) {
        return Symbol(id);
    }
    let mut w = t.write().expect("intern table poisoned");
    if let Some(&id) = w.by_name.get(name) {
        return Symbol(id);
    }
    let id = u32::try_from(w.by_id.len()).expect("interner overflow");
    let arc: Arc<str> = Arc::from(name);
    w.by_id.push(arc.clone());
    w.by_name.insert(arc, id);
    Symbol(id)
}

/// Returns the text of an interned symbol as a shared handle.
pub fn resolve(sym: Symbol) -> Arc<str> {
    table().read().expect("intern table poisoned").by_id[sym.0 as usize].clone()
}

/// Number of distinct strings interned so far. A hot path that is
/// allocation-free on names leaves this unchanged.
pub fn table_len() -> usize {
    table().read().expect("intern table poisoned").by_id.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let a = intern("intern.test.alpha");
        let b = intern("intern.test.beta");
        assert_ne!(a, b);
        assert_eq!(a, intern("intern.test.alpha"));
        assert_eq!(&*resolve(a), "intern.test.alpha");
        assert_eq!(&*resolve(b), "intern.test.beta");
    }

    #[test]
    fn reinterning_does_not_grow_table() {
        intern("intern.test.stable");
        let before = table_len();
        for _ in 0..1_000 {
            intern("intern.test.stable");
        }
        assert_eq!(table_len(), before);
    }
}
