//! A global string interner for counter and sketch names.
//!
//! EFind charges every lookup, shuffle byte, and cache probe to a *named*
//! counter (§4.2). Those names are built from a small set of templates
//! (`efind.op.N.lookups`, `efind.op.N.idx.J.nik`, …), so resolving each
//! one to a dense [`Symbol`] once — and paying a `u32` hash instead of a
//! `String` allocation plus byte-wise hash per increment — removes the
//! framework's dominant real-time cost without changing any virtual-time
//! observable.
//!
//! The table is append-only and process-global: a `Symbol` never moves and
//! is valid for the life of the process, which is what lets
//! `CounterHandle`s in `efind-mapreduce` be `Copy` and lets hot paths hold
//! them across task boundaries. [`table_len`] exposes the table size so
//! tests can prove a hot path performs *zero* interner growth (and hence
//! no name allocation) at steady state.

use std::sync::{Arc, OnceLock, RwLock};

use crate::FxHashMap;

/// A dense id for an interned string. Cheap to copy, hash, and compare;
/// resolves back to its text via [`resolve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw dense index of this symbol in the global table.
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Default)]
struct InternTable {
    by_name: FxHashMap<Arc<str>, u32>,
    by_id: Vec<Arc<str>>,
}

fn table() -> &'static RwLock<InternTable> {
    static TABLE: OnceLock<RwLock<InternTable>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(InternTable::default()))
}

/// Interns `name`, returning its stable [`Symbol`]. Idempotent: the same
/// text always maps to the same symbol. Allocates only the first time a
/// given name is seen.
pub fn intern(name: &str) -> Symbol {
    let t = table();
    if let Some(&id) = t.read().expect("intern table poisoned").by_name.get(name) {
        return Symbol(id);
    }
    let mut w = t.write().expect("intern table poisoned");
    if let Some(&id) = w.by_name.get(name) {
        return Symbol(id);
    }
    let id = u32::try_from(w.by_id.len()).expect("interner overflow");
    let arc: Arc<str> = Arc::from(name);
    w.by_id.push(arc.clone());
    w.by_name.insert(arc, id);
    Symbol(id)
}

/// Returns the text of an interned symbol as a shared handle.
pub fn resolve(sym: Symbol) -> Arc<str> {
    table().read().expect("intern table poisoned").by_id[sym.0 as usize].clone()
}

/// Number of distinct strings interned so far. A hot path that is
/// allocation-free on names leaves this unchanged.
pub fn table_len() -> usize {
    table().read().expect("intern table poisoned").by_id.len()
}

/// The registry of counter-name shapes — the symbol table `efind-lint`
/// rule `L004` checks counter-name string literals against.
///
/// Every counter the workspace charges is built from a small set of
/// templates (`efind.<op>.n1`, `efind.<op>.<j>.lookups`,
/// `mr.recovery.crashes`, …). A literal that matches none of them is
/// almost always a typo — the counter silently reads 0 forever — so the
/// shapes are enumerated here, next to the interner they feed, and the
/// lint refuses unregistered names. The lists are append-only: add the
/// pattern (and a leaf, for per-operator suffixes) when introducing a new
/// counter family.
pub mod registry {
    /// Full counter-name patterns. `*` matches exactly one dot-free
    /// segment (an operator name, an index slot, …).
    pub const COUNTER_PATTERNS: &[&str] = &[
        // Job-level Map output (Smap).
        "efind.mapout.records",
        "efind.mapout.bytes",
        // Operator-level sizes: efind.<op>.<what>.
        "efind.*.n1",
        "efind.*.s1.bytes",
        "efind.*.spre.bytes",
        "efind.*.spost.bytes",
        "efind.*.sidx.bytes",
        "efind.*.post.out",
        // Per-index lookup statistics: efind.<op>.<j>.<what>.
        "efind.*.*.lookups",
        "efind.*.*.misses",
        "efind.*.*.nik",
        "efind.*.*.nik.irregular",
        "efind.*.*.key.bytes",
        "efind.*.*.sik.bytes",
        "efind.*.*.siv.bytes",
        "efind.*.*.tj.nanos",
        "efind.*.*.distinct",
        "efind.*.*.cache.probes",
        "efind.*.*.cache.hits",
        "efind.*.*.shadow.probes",
        "efind.*.*.shadow.hits",
        // Fault layer: efind.<op>.<j>.fault.<what>.
        "efind.*.*.fault.failures",
        "efind.*.*.fault.timeouts",
        "efind.*.*.fault.slowdowns",
        "efind.*.*.fault.retries",
        "efind.*.*.fault.backoff.nanos",
        "efind.*.*.fault.exhausted",
        "efind.*.*.fault.degraded",
        // Integrity layer: efind.<op>.<j>.integrity.<what>.
        "efind.*.*.integrity.refetch",
        "efind.*.*.integrity.cache.invalid",
        // Hedged lookups: efind.<op>.<j>.hedge.<what>.
        "efind.*.*.hedge.fired",
        "efind.*.*.hedge.wins",
        "efind.*.*.hedge.loser.nanos",
        // Cross-job statistics store (statstore.rs): load-time rejections.
        "efind.statstore.corrupt",
        "efind.statstore.version.mismatch",
        // Multi-tenant admission control (cluster::tenancy): mix-level
        // totals, charged only when the tenancy layer is armed.
        "efind.admission.submitted",
        "efind.admission.granted",
        "efind.admission.rejected",
        "efind.admission.quota.rejected",
        // Per-tenant serving ledger: efind.tenant.<tenant>.<what>.
        "efind.tenant.*.granted",
        "efind.tenant.*.completed",
        "efind.tenant.*.rejected",
        "efind.tenant.*.quota.rejected",
        "efind.tenant.*.degraded",
        "efind.tenant.*.shed.lookups",
        "efind.tenant.*.throttle.nanos",
        "efind.tenant.*.wait.nanos",
        "efind.tenant.*.cache.evictions",
        // Plain MapReduce task counters.
        "mr.map.input.records",
        "mr.map.input.bytes",
        "mr.map.output.records",
        "mr.map.output.bytes",
        "mr.reduce.input.records",
        "mr.reduce.input.bytes",
        "mr.reduce.output.records",
        "mr.reduce.output.bytes",
        // Crash-recovery ledger (RecoveryLog::counters).
        "mr.recovery.crashes",
        "mr.recovery.crashed.attempts",
        "mr.recovery.recompute.waves",
        "mr.recovery.recompute.tasks",
        "mr.recovery.fetch.retries",
        "mr.recovery.fetch.backoff.nanos",
        "mr.recovery.rereplicated.chunks",
        "mr.recovery.rereplicated.bytes",
        "mr.recovery.rereplication.nanos",
        "mr.recovery.reused.tasks",
        // Gray-failure ledger (PartitionLog::counters).
        "mr.partition.events",
        "mr.partition.slow.links",
        "mr.partition.suspected",
        "mr.partition.refuted",
        "mr.partition.confirmed",
        "mr.partition.false.positives",
        "mr.partition.replaced.tasks",
        "mr.partition.stalled.tasks",
        "mr.partition.stall.nanos",
        "mr.partition.orphan.results",
        "mr.partition.failover.fetches",
        "mr.partition.failover.nanos",
        "mr.partition.rereplication.pending",
        "mr.partition.rereplication.cancelled",
        "mr.partition.rereplicated.chunks",
        "mr.partition.rereplicated.bytes",
        "mr.partition.rereplication.nanos",
        // Integrity ledger (IntegrityLog::counters).
        "mr.integrity.chunks.corrupt",
        "mr.integrity.replicas.quarantined",
        "mr.integrity.chunk.rereads",
        "mr.integrity.reread.nanos",
        "mr.integrity.shuffle.refetches",
        "mr.integrity.shuffle.refetch.nanos",
        "mr.integrity.cache.invalidations",
        "mr.integrity.lookup.refetches",
        "mr.integrity.repaired.chunks",
        "mr.integrity.repaired.bytes",
        "mr.integrity.repair.nanos",
    ];

    /// Registered leaf suffixes — the `<what>` literals handed to the
    /// `statsx::names::op`/`names::idx` helpers and to `ChargedLookup`'s
    /// per-index handle constructor. Checked when a counter name is built
    /// from a format template whose trailing segments are literal.
    pub const COUNTER_LEAVES: &[&str] = &[
        "n1",
        "s1.bytes",
        "spre.bytes",
        "spost.bytes",
        "sidx.bytes",
        "post.out",
        "lookups",
        "misses",
        "nik",
        "nik.irregular",
        "key.bytes",
        "sik.bytes",
        "siv.bytes",
        "tj.nanos",
        "distinct",
        "cache.probes",
        "cache.hits",
        "shadow.probes",
        "shadow.hits",
        "fault.failures",
        "fault.timeouts",
        "fault.slowdowns",
        "fault.retries",
        "fault.backoff.nanos",
        "fault.exhausted",
        "fault.degraded",
        "integrity.refetch",
        "integrity.cache.invalid",
        "hedge.fired",
        "hedge.wins",
        "hedge.loser.nanos",
        // Per-tenant serving ledger leaves (cluster::tenancy).
        "granted",
        "completed",
        "rejected",
        "quota.rejected",
        "degraded",
        "shed.lookups",
        "throttle.nanos",
        "wait.nanos",
        "cache.evictions",
    ];

    /// True when `name` matches a registered full pattern. `*` in a
    /// pattern matches exactly one dot-free segment of the name.
    pub fn counter_name_registered(name: &str) -> bool {
        COUNTER_PATTERNS.iter().any(|p| pattern_matches(p, name))
    }

    /// True when `leaf` (the trailing literal segments of a templated
    /// counter name) is a registered leaf suffix, or a dot-boundary
    /// suffix of one (`"fault.degraded"`, `"backoff.nanos"`, and the
    /// bare `"nanos"` all pass; `"okups"` does not).
    pub fn counter_leaf_registered(leaf: &str) -> bool {
        COUNTER_LEAVES.iter().any(|l| {
            *l == leaf
                || l.strip_suffix(leaf)
                    .map(|head| head.ends_with('.'))
                    .unwrap_or(false)
        })
    }

    fn pattern_matches(pattern: &str, name: &str) -> bool {
        let ps: Vec<&str> = pattern.split('.').collect();
        let ns: Vec<&str> = name.split('.').collect();
        ps.len() == ns.len()
            && ps
                .iter()
                .zip(&ns)
                .all(|(p, n)| *p == "*" || p == n && !n.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let a = intern("intern.test.alpha");
        let b = intern("intern.test.beta");
        assert_ne!(a, b);
        assert_eq!(a, intern("intern.test.alpha"));
        assert_eq!(&*resolve(a), "intern.test.alpha");
        assert_eq!(&*resolve(b), "intern.test.beta");
    }

    #[test]
    fn reinterning_does_not_grow_table() {
        intern("intern.test.stable");
        let before = table_len();
        for _ in 0..1_000 {
            intern("intern.test.stable");
        }
        assert_eq!(table_len(), before);
    }

    #[test]
    fn registry_accepts_known_counter_shapes() {
        for name in [
            "efind.mapout.bytes",
            "efind.enrich.n1",
            "efind.enrich.spost.bytes",
            "efind.synjoin.0.lookups",
            "efind.op.3.fault.backoff.nanos",
            "efind.op.0.integrity.cache.invalid",
            "mr.map.output.records",
            "mr.recovery.recompute.waves",
            "mr.integrity.shuffle.refetch.nanos",
            "efind.admission.submitted",
            "efind.admission.quota.rejected",
            "efind.tenant.alpha.granted",
            "efind.tenant.beta.shed.lookups",
            "efind.tenant.beta.throttle.nanos",
            "efind.tenant.gamma.cache.evictions",
        ] {
            assert!(registry::counter_name_registered(name), "{name}");
        }
    }

    #[test]
    fn registry_rejects_unknown_counter_shapes() {
        for name in [
            "efind.op.lookups",         // per-index leaf at operator level
            "efind.op.0.lokups",        // typo
            "efind.op.0.fault.sadness", // unknown fault leaf
            "mr.recovery.typo",         // unknown ledger entry
            "efind.op.0.extra.lookups", // too many segments
            "mr.map.input",             // too few segments
            "efind.tenant.granted",     // tenant segment missing
            "efind.tenant.a.sheds",     // unknown tenant leaf
            "efind.admission.dropped",  // unknown admission counter
        ] {
            assert!(!registry::counter_name_registered(name), "{name}");
        }
    }

    #[test]
    fn registry_leaf_suffix_matching() {
        assert!(registry::counter_leaf_registered("lookups"));
        assert!(registry::counter_leaf_registered("fault.degraded"));
        // A trailing piece of a registered leaf counts only on a dot
        // boundary.
        assert!(registry::counter_leaf_registered("backoff.nanos"));
        assert!(registry::counter_leaf_registered("nanos"));
        assert!(!registry::counter_leaf_registered("okups"));
        assert!(!registry::counter_leaf_registered("lokups"));
    }
}
